//! # arpshield
//!
//! A simulation-grade reproduction of *"An Analysis on the Schemes for
//! Detecting and Preventing ARP Cache Poisoning Attacks"* (Abad &
//! Bonilla, ICDCSW'07): a deterministic switched-LAN simulator, full
//! host ARP/IP/DHCP stacks, the complete catalogue of ARP-poisoning
//! attack variants, implementations of every defence scheme class the
//! paper surveys, and the experiment harness that scores them against
//! each other.
//!
//! This crate is the umbrella: it re-exports the workspace's public API
//! under stable module names and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! ## Layering
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`packet`] | `arpshield-packet` | Ethernet/ARP/IPv4/UDP/TCP/ICMP/DHCP codecs |
//! | [`netsim`] | `arpshield-netsim` | discrete-event LAN: switch (CAM, mirroring, port security), hub, links |
//! | [`crypto`] | `arpshield-crypto` | SHA-256, HMAC, Schnorr signatures, the S-ARP key distributor |
//! | [`host`] | `arpshield-host` | end-host stacks: ARP cache + policies, resolver, DHCP, apps, hooks |
//! | [`attacks`] | `arpshield-attacks` | poisoning variants, MITM relay, MAC flooding, DHCP starvation, rogue DHCP |
//! | [`schemes`] | `arpshield-schemes` | static ARP, arpwatch-, XArp-, Snort-, Anticap/Antidote-, S-ARP-, port-security- and DAI-style defences |
//! | [`trace`] | `arpshield-trace` | deterministic observability: sim-time events, counters/histograms, run manifests |
//! | [`analysis`] | `arpshield-core` | scenarios, metrics, the T1–T5/F1–F6 experiments, report rendering |
//!
//! ## Quickstart
//!
//! ```rust
//! use arpshield::analysis::scenario::{AttackScenario, ScenarioConfig};
//! use arpshield::analysis::metrics::score_attack_run;
//! use arpshield::attacks::PoisonVariant;
//! use arpshield::schemes::SchemeKind;
//!
//! // One cell of the coverage matrix: arpwatch vs classic arpspoof.
//! let config = ScenarioConfig::new(42).with_scheme(SchemeKind::Passive);
//! let run = AttackScenario::poisoning(config, PoisonVariant::GratuitousReply).run();
//! let outcome = score_attack_run(&run);
//! assert!(outcome.detected && !outcome.prevented);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arpshield_attacks as attacks;
pub use arpshield_core as analysis;
pub use arpshield_crypto as crypto;
pub use arpshield_host as host;
pub use arpshield_netsim as netsim;
pub use arpshield_packet as packet;
pub use arpshield_schemes as schemes;
pub use arpshield_trace as trace;
