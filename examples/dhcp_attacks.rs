//! DHCP starvation followed by a rogue DHCP server — the L2 attack pair
//! the thesis that cites this paper studies — and how DHCP snooping
//! (half of the DAI scheme) shuts the rogue down.
//!
//! ```text
//! cargo run --example dhcp_attacks
//! ```

use std::time::Duration;

use arpshield::attacks::{
    DhcpStarver, DhcpStarverConfig, GroundTruth, RogueDhcpServer, RogueDhcpServerConfig,
};
use arpshield::host::dhcp::{DhcpClientConfig, DhcpServerConfig};
use arpshield::host::{Host, HostConfig};
use arpshield::netsim::{PortId, SimTime, Simulator, Switch, SwitchConfig};
use arpshield::packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
use arpshield::schemes::{AlertLog, DaiConfig, DaiInspector};

fn build_and_run(protected: bool) {
    let gw_ip = Ipv4Addr::new(192, 168, 88, 1);
    let subnet = Ipv4Cidr::new(gw_ip, 24);
    let mut sim = Simulator::new(11);
    let alerts = AlertLog::new();

    let (mut switch, _) = Switch::new("sw", SwitchConfig { ports: 8, ..Default::default() });
    if protected {
        switch.set_inspector(Box::new(DaiInspector::new(
            DaiConfig::new([PortId(0)]),
            alerts.clone(),
        )));
    }
    let switch = sim.add_device(Box::new(switch));

    // Home router: DHCP pool of 10 on the trusted port.
    let (gateway, gw_handle) = Host::new(
        HostConfig::static_ip("gw", MacAddr::from_index(100), gw_ip, subnet).with_dhcp_server(
            DhcpServerConfig::home_router(Ipv4Addr::new(192, 168, 88, 100), 10, gw_ip),
        ),
    );
    let g = sim.add_device(Box::new(gateway));
    sim.connect(g, PortId(0), switch, PortId(0), Duration::from_micros(5)).unwrap();

    // The starver and the rogue server, both on untrusted ports.
    let truth = GroundTruth::new();
    let starver = DhcpStarver::new(
        DhcpStarverConfig {
            attacker_mac: MacAddr::from_index(66),
            start_delay: Duration::from_millis(200),
            rate_per_sec: 40,
            complete_handshake: true,
            total: Some(60),
        },
        truth.clone(),
    );
    let s = sim.add_device(Box::new(starver));
    sim.connect(s, PortId(0), switch, PortId(1), Duration::from_micros(5)).unwrap();

    let rogue = RogueDhcpServer::new(
        RogueDhcpServerConfig {
            attacker_mac: MacAddr::from_index(67),
            server_ip: Ipv4Addr::new(192, 168, 88, 250),
            pool_start: Ipv4Addr::new(192, 168, 88, 200),
            pool_size: 8,
            evil_gateway: Ipv4Addr::new(192, 168, 88, 250),
            start_delay: Duration::from_secs(4),
        },
        truth.clone(),
    );
    let r = sim.add_device(Box::new(rogue));
    sim.connect(r, PortId(0), switch, PortId(2), Duration::from_micros(5)).unwrap();

    // A legitimate laptop arrives after the pool is drained.
    let (laptop, laptop_handle) = Host::new(HostConfig::dhcp(
        "laptop",
        MacAddr::from_index(7),
        DhcpClientConfig { start_delay: Duration::from_secs(5), ..Default::default() },
    ));
    let l = sim.add_device(Box::new(laptop));
    sim.connect(l, PortId(0), switch, PortId(3), Duration::from_micros(5)).unwrap();

    sim.run_until(SimTime::from_secs(20));

    let server = gw_handle.dhcp_server.as_ref().unwrap().borrow();
    println!(
        "  legitimate pool: {}/{} leases stolen, {} exhaustion events",
        server.by_ip.len(),
        10,
        server.exhaustion_events
    );
    match laptop_handle.ip() {
        Some(ip) => {
            let evil = laptop_handle.iface().gateway() == Some(Ipv4Addr::new(192, 168, 88, 250));
            println!(
                "  late laptop bound to {ip} via {} gateway {:?}",
                if evil { "the ROGUE's" } else { "the legitimate" },
                laptop_handle.iface().gateway().unwrap()
            );
        }
        None => println!("  late laptop failed to obtain any address"),
    }
    if protected {
        println!("  DAI/snooping drops logged: {}", alerts.len());
    }
}

fn main() {
    println!("== DHCP starvation + rogue server ==\n");
    println!("--- unprotected switch ---");
    build_and_run(false);
    println!("\n--- with DHCP snooping (DAI) on the switch ---");
    build_and_run(true);
    println!("\nThe starvation itself succeeds either way (the discovers are");
    println!("well-formed client traffic), but snooping stops the follow-on");
    println!("rogue server, which is where the actual interception came from.");
}
