//! Regenerates the two headline matrices (T2 susceptibility, T3
//! coverage) and prints them — the paper's analysis at a glance.
//!
//! ```text
//! cargo run --release --example scheme_matrix
//! ```

use arpshield::analysis::experiment::{t2_susceptibility, t3_coverage};
use arpshield::analysis::taxonomy;

fn main() {
    println!("{}", taxonomy::table().render());
    println!("{}", t2_susceptibility(42).render());
    println!("{}", t3_coverage(42).render());
    println!("legend: P = prevented (cache never poisoned), D(x) = detected x after");
    println!("the first forged frame, P+D = both, '-' = the attack went unnoticed.");
}
