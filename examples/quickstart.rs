//! Quickstart: build a small switched LAN, poison a victim's ARP cache,
//! watch an arpwatch-style monitor catch it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use arpshield::analysis::metrics::score_attack_run;
use arpshield::analysis::scenario::{AttackScenario, ScenarioConfig};
use arpshield::attacks::PoisonVariant;
use arpshield::schemes::SchemeKind;

fn main() {
    println!("== arpshield quickstart ==\n");
    println!("Scenario: 8 hosts ping their gateway through one switch.");
    println!("At t=3s an attacker broadcasts a forged ARP reply binding the");
    println!("gateway's IP to its own MAC (classic arpspoof).\n");

    for scheme in [SchemeKind::None, SchemeKind::Passive, SchemeKind::SArp] {
        let config =
            ScenarioConfig::new(42).with_scheme(scheme).with_duration(Duration::from_secs(12));
        let run = AttackScenario::poisoning(config, PoisonVariant::GratuitousReply).run();
        let outcome = score_attack_run(&run);

        println!("--- defence: {scheme} ---");
        println!("  victim poisoned at any point: {}", !outcome.prevented);
        println!(
            "  fraction of post-attack time poisoned: {:.0}%",
            outcome.poisoned_fraction * 100.0
        );
        match outcome.detection_latency {
            Some(lat) => println!("  detected {:?} after the first forged frame", lat),
            None if outcome.prevented => println!("  nothing to detect: the forgery never landed"),
            None => println!("  NOT detected"),
        }
        println!("  victim ping delivery through the run: {:.1}%", outcome.victim_delivery * 100.0);
        let wire = run.lan.sim.wire_stats();
        println!("  wire traffic: {} frames, {} bytes\n", wire.frames, wire.bytes);
    }

    println!("The pattern of the whole analysis in miniature:");
    println!("  none    -> poisoned, nobody noticed;");
    println!("  passive -> poisoned, but an alarm fired within milliseconds;");
    println!("  s-arp   -> the forged reply was rejected outright (prevention).");
    println!("\nRun `cargo run --release -p arpshield-bench --bin reproduce` for");
    println!("the full table/figure suite (T1-T5, F1-F6).");
}
