//! A full man-in-the-middle interception, built by hand from the
//! substrate APIs (no scenario helpers): victim ⇄ gateway traffic is
//! steered through the attacker, relayed covertly, and counted.
//!
//! ```text
//! cargo run --example mitm_interception
//! ```

use std::time::Duration;

use arpshield::attacks::{GroundTruth, MitmRelay, MitmRelayConfig};
use arpshield::host::apps::PingApp;
use arpshield::host::{ArpPolicy, Host, HostConfig};
use arpshield::netsim::{PortId, SimTime, Simulator, Switch, SwitchConfig};
use arpshield::packet::{Ipv4Addr, Ipv4Cidr, MacAddr};

fn main() {
    let subnet = Ipv4Cidr::new(Ipv4Addr::new(192, 168, 88, 0), 24);
    let gw_ip = Ipv4Addr::new(192, 168, 88, 1);
    let victim_ip = Ipv4Addr::new(192, 168, 88, 250);
    let gw_mac = MacAddr::from_index(100);
    let victim_mac = MacAddr::from_index(2);
    let attacker_mac = MacAddr::from_index(66);

    let mut sim = Simulator::new(1);
    let (switch, switch_handle) =
        Switch::new("sw", SwitchConfig { ports: 8, ..Default::default() });
    let switch = sim.add_device(Box::new(switch));

    // The gateway.
    let (gateway, gw_handle) = Host::new(
        HostConfig::static_ip("gw", gw_mac, gw_ip, subnet).with_policy(ArpPolicy::Promiscuous),
    );
    let g = sim.add_device(Box::new(gateway));
    sim.connect(g, PortId(0), switch, PortId(0), Duration::from_micros(5)).unwrap();

    // The victim, pinging the gateway ten times a second.
    let (mut victim, victim_handle) = Host::new(
        HostConfig::static_ip("victim", victim_mac, victim_ip, subnet)
            .with_policy(ArpPolicy::Promiscuous),
    );
    let (ping, ping_stats) = PingApp::new(gw_ip, Duration::from_millis(100));
    victim.add_app(Box::new(ping));
    let v = sim.add_device(Box::new(victim));
    sim.connect(v, PortId(0), switch, PortId(1), Duration::from_micros(5)).unwrap();

    // The attacker: poisons both directions, then relays.
    let truth = GroundTruth::new();
    let relay = MitmRelay::new(
        MitmRelayConfig {
            attacker_mac,
            side_a: (gw_ip, gw_mac),
            side_b: (victim_ip, victim_mac),
            start_delay: Duration::from_secs(2),
            repeat: Duration::from_secs(5),
        },
        truth.clone(),
    );
    let a = sim.add_device(Box::new(relay));
    sim.connect(a, PortId(0), switch, PortId(2), Duration::from_micros(2)).unwrap();

    println!("== MITM interception demo ==\n");
    println!("t=0s   victim starts pinging the gateway");
    sim.run_until(SimTime::from_secs(2));
    println!(
        "t=2s   victim's cache: gateway {} -> {:?} (genuine)",
        gw_ip,
        victim_handle.cache.borrow().lookup(sim.now(), gw_ip).unwrap()
    );

    sim.run_until(SimTime::from_secs(20));
    let now = sim.now();
    println!("t=2s   attacker poisons both caches and begins relaying...");
    println!("\n== after 20 simulated seconds ==");
    println!(
        "victim's cache:  gateway {} -> {:?}  (attacker!)",
        gw_ip,
        victim_handle.cache.borrow().lookup(now, gw_ip).unwrap()
    );
    println!(
        "gateway's cache: victim  {} -> {:?}  (attacker!)",
        victim_ip,
        gw_handle.cache.borrow().lookup(now, victim_ip).unwrap()
    );
    let stats = ping_stats.borrow();
    println!(
        "\nand yet the victim noticed nothing: {}/{} pings answered ({:.1}%)",
        stats.received,
        stats.sent,
        stats.received as f64 / stats.sent as f64 * 100.0
    );
    println!(
        "mean RTT {:?} — doubled by the extra attacker hop, the only observable tell",
        stats.mean_rtt().unwrap()
    );
    println!("\nattacker ground truth: {} poisoning frames emitted", truth.len());
    println!(
        "switch CAM table holds {} stations; nothing looked wrong at L2",
        switch_handle.cam.borrow().occupancy()
    );
}
