//! An S-ARP deployment from first principles: keypairs, the AKD host,
//! per-host agents, signed resolution, and an attacker whose forgeries
//! bounce off.
//!
//! ```text
//! cargo run --example sarp_network
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield::attacks::{ArpPoisoner, GroundTruth, PoisonConfig, PoisonVariant};
use arpshield::crypto::{Akd, KeyPair};
use arpshield::host::apps::PingApp;
use arpshield::host::{ArpPolicy, Host, HostConfig};
use arpshield::netsim::{PortId, SimTime, Simulator, Switch, SwitchConfig};
use arpshield::packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
use arpshield::schemes::{AkdApp, AlertLog, SArpConfig, SArpHook};

fn main() {
    let subnet = Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24);
    let akd_ip = Ipv4Addr::new(10, 0, 0, 250);
    let akd_mac = MacAddr::from_index(250);

    // --- Enrolment (out of band, at provisioning time) ---
    let akd_keypair = KeyPair::from_seed(0xA4D);
    let registry = Rc::new(RefCell::new(Akd::new()));
    let stations: Vec<(&str, Ipv4Addr, MacAddr, KeyPair)> = vec![
        ("gw", Ipv4Addr::new(10, 0, 0, 1), MacAddr::from_index(100), KeyPair::from_seed(1)),
        ("alice", Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_index(2), KeyPair::from_seed(2)),
        ("bob", Ipv4Addr::new(10, 0, 0, 3), MacAddr::from_index(3), KeyPair::from_seed(3)),
        ("akd", akd_ip, akd_mac, KeyPair::from_seed(250)),
    ];
    for (_, ip, _, kp) in &stations {
        registry.borrow_mut().register(ip.to_u32(), kp.public_key());
    }
    println!("== S-ARP network ==");
    println!("enrolled {} principals with the AKD\n", registry.borrow().len());

    // --- The LAN ---
    let mut sim = Simulator::new(7);
    let (switch, _) = Switch::new("sw", SwitchConfig { ports: 8, ..Default::default() });
    let switch = sim.add_device(Box::new(switch));
    let alerts = AlertLog::new();

    let mut ping_stats = None;
    let mut host_handles = Vec::new();
    for (port, (name, ip, mac, keypair)) in stations.iter().enumerate() {
        let (mut host, handle) = Host::new(
            HostConfig::static_ip(*name, *mac, *ip, subnet).with_policy(ArpPolicy::StaticOnly),
        );
        host.add_hook(Box::new(SArpHook::new(
            SArpConfig {
                keypair: keypair.clone(),
                akd_ip,
                akd_mac,
                akd_key: akd_keypair.public_key(),
                max_age: Duration::from_secs(5),
                local_akd: (*name == "akd").then(|| Rc::clone(&registry)),
                unit_cost: arpshield::schemes::sarp::DEFAULT_UNIT_COST,
                key_fetch_retries: 0,
                key_fetch_timeout: std::time::Duration::from_millis(200),
            },
            alerts.clone(),
        )));
        if *name == "akd" {
            host.add_app(Box::new(AkdApp::new(
                Rc::clone(&registry),
                akd_keypair.clone(),
                alerts.clone(),
            )));
        }
        if *name == "alice" {
            let (ping, stats) =
                PingApp::new(Ipv4Addr::new(10, 0, 0, 1), Duration::from_millis(200));
            host.add_app(Box::new(ping));
            ping_stats = Some(stats);
        }
        let id = sim.add_device(Box::new(host));
        sim.connect(id, PortId(0), switch, PortId(port as u16), Duration::from_micros(5)).unwrap();
        host_handles.push(handle);
    }

    // --- The attacker: tries the classic and the race ---
    let truth = GroundTruth::new();
    for (i, variant) in
        [PoisonVariant::GratuitousReply, PoisonVariant::ReplyToRequestRace].into_iter().enumerate()
    {
        let poisoner = ArpPoisoner::new(
            PoisonConfig {
                attacker_mac: MacAddr::from_index(66),
                variant,
                victim_ip: Ipv4Addr::new(10, 0, 0, 1),
                claimed_mac: MacAddr::from_index(66),
                target: Some((Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_index(2))),
                start_delay: Duration::from_secs(2 + i as u64),
                repeat: Some(Duration::from_secs(3)),
            },
            truth.clone(),
        );
        let id = sim.add_device(Box::new(poisoner));
        sim.connect(id, PortId(0), switch, PortId(4 + i as u16), Duration::from_micros(1)).unwrap();
    }

    sim.run_until(SimTime::from_secs(15));

    let stats = ping_stats.unwrap();
    let stats = stats.borrow();
    println!("alice pinged the gateway through signed resolution:");
    println!(
        "  {}/{} answered ({:.1}%), mean RTT {:?}",
        stats.received,
        stats.sent,
        stats.received as f64 / stats.sent as f64 * 100.0,
        stats.mean_rtt().unwrap()
    );
    println!(
        "\nattacker emitted {} forged frames; S-ARP raised {} alerts:",
        truth.len(),
        alerts.len()
    );
    let mut counts = std::collections::BTreeMap::new();
    for a in alerts.alerts() {
        *counts.entry(format!("{:?}", a.kind)).or_insert(0u32) += 1;
    }
    for (kind, n) in counts {
        println!("  {kind}: {n}");
    }
    let crypto_work: u64 = host_handles.iter().map(|h| h.stats.borrow().work_units).sum::<u64>()
        + alerts.work_of("sarp");
    println!("\ntotal S-ARP work: {crypto_work} units (signatures dominate; one unit ≈ one header inspection)");
    println!("the victim's cache never held the attacker's MAC — prevention, not detection.");
}
