//! The Authoritative Key Distributor (AKD) from S-ARP.
//!
//! S-ARP assumes one trusted host per LAN that maps protocol addresses to
//! public keys. This module is the registry itself; the *networked* AKD
//! host (answering lookups over UDP, with caching on the clients) lives in
//! `arpshield-schemes::sarp`, layered on top of this.
//!
//! Principals are identified by an opaque `u32` so this crate stays free
//! of packet-format dependencies; the S-ARP scheme uses the IPv4 address
//! in big-endian form.

use std::collections::HashMap;

use crate::error::CryptoError;
use crate::schnorr::PublicKey;

/// A registry mapping principal ids (IPv4 addresses as `u32`) to public
/// keys.
#[derive(Debug, Default, Clone)]
pub struct Akd {
    keys: HashMap<u32, PublicKey>,
    /// Lookups served, for overhead accounting.
    pub lookups: u64,
}

impl Akd {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Akd::default()
    }

    /// Registers (or replaces) the key for a principal. Returns the
    /// previous key if one was registered.
    ///
    /// In S-ARP, enrolment happens out of band at host-provisioning time —
    /// which is exactly the management cost the paper's analysis charges
    /// the scheme with.
    pub fn register(&mut self, principal: u32, key: PublicKey) -> Option<PublicKey> {
        self.keys.insert(principal, key)
    }

    /// Removes a principal's key.
    pub fn revoke(&mut self, principal: u32) -> Option<PublicKey> {
        self.keys.remove(&principal)
    }

    /// Looks up the key for a principal.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownPrincipal`] when no key is registered.
    pub fn lookup(&mut self, principal: u32) -> Result<PublicKey, CryptoError> {
        self.lookups += 1;
        self.keys.get(&principal).copied().ok_or(CryptoError::UnknownPrincipal(principal))
    }

    /// Number of enrolled principals.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no principals are enrolled.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;

    #[test]
    fn register_lookup_revoke() {
        let mut akd = Akd::new();
        assert!(akd.is_empty());
        let kp = KeyPair::from_seed(1);
        assert_eq!(akd.register(10, kp.public_key()), None);
        assert_eq!(akd.len(), 1);
        assert_eq!(akd.lookup(10), Ok(kp.public_key()));
        assert_eq!(akd.lookup(11), Err(CryptoError::UnknownPrincipal(11)));
        assert_eq!(akd.revoke(10), Some(kp.public_key()));
        assert_eq!(akd.lookup(10), Err(CryptoError::UnknownPrincipal(10)));
        assert_eq!(akd.lookups, 3);
    }

    #[test]
    fn re_registration_returns_old_key() {
        let mut akd = Akd::new();
        let old = KeyPair::from_seed(1);
        let new = KeyPair::from_seed(2);
        akd.register(7, old.public_key());
        assert_eq!(akd.register(7, new.public_key()), Some(old.public_key()));
        assert_eq!(akd.lookup(7), Ok(new.public_key()));
    }

    #[test]
    fn attacker_key_does_not_verify_as_victim() {
        // The property S-ARP's prevention rests on: the AKD binds the IP to
        // the victim's key, so the attacker's signature over a forged
        // binding fails verification.
        let mut akd = Akd::new();
        let victim = KeyPair::from_seed(1);
        let attacker = KeyPair::from_seed(2);
        akd.register(0x0a00_0001, victim.public_key());
        let forged = attacker.sign(b"0a000001 is-at attacker-mac");
        let key = akd.lookup(0x0a00_0001).unwrap();
        assert!(key.verify(b"0a000001 is-at attacker-mac", &forged).is_err());
    }
}
