//! Crypto errors.

use std::error::Error;
use std::fmt;

/// Errors from signature verification and key distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// The signature did not verify against the message and public key.
    InvalidSignature,
    /// The signature bytes are not a well-formed signature.
    MalformedSignature,
    /// The AKD has no key registered for the requested principal.
    UnknownPrincipal(u32),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::MalformedSignature => write!(f, "malformed signature encoding"),
            CryptoError::UnknownPrincipal(id) => {
                write!(f, "no key registered for principal {id:#010x}")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CryptoError::InvalidSignature.to_string().contains("failed"));
        assert!(CryptoError::UnknownPrincipal(0x0a000001).to_string().contains("0x0a000001"));
        assert!(CryptoError::MalformedSignature.to_string().contains("malformed"));
    }
}
