//! Educational cryptography substrate for the S-ARP scheme.
//!
//! S-ARP (Bruschi, Ornaghi & Rosti, 2003) authenticates ARP replies with
//! digital signatures whose public keys are served by an Authoritative Key
//! Distributor (AKD). Reproducing that scheme needs a hash, a signature,
//! and a key registry — and the reproduction rules allow only the
//! offline-available crates, none of which provide cryptography. So this
//! crate implements, from scratch:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (passes the standard test vectors),
//! * [`hmac_sha256`] — RFC 2104 HMAC (passes the RFC 4231 vectors),
//! * [`field`] — arithmetic modulo the Mersenne prime `2^127 - 1`,
//! * Schnorr signatures ([`KeyPair`]) with deterministic (RFC 6979-style)
//!   nonces,
//! * [`Akd`] — the key distributor.
//!
//! # Security disclaimer
//!
//! A 127-bit discrete-log group is **not** a secure parameter choice; it is
//! sized to exercise the exact S-ARP code path (sign → attach → verify →
//! key fetch) with honest asymmetric-crypto cost *shape*, inside a
//! simulator. Do not reuse this crate for real security purposes.
//!
//! # Example
//!
//! ```rust
//! use arpshield_crypto::{KeyPair, Akd};
//!
//! let alice = KeyPair::from_seed(1);
//! let mut akd = Akd::new();
//! akd.register(0x0a000001, alice.public_key());
//!
//! let sig = alice.sign(b"10.0.0.1 is-at 02:00:00:00:00:01");
//! let key = akd.lookup(0x0a000001).unwrap();
//! assert!(key.verify(b"10.0.0.1 is-at 02:00:00:00:00:01", &sig).is_ok());
//! assert!(key.verify(b"10.0.0.1 is-at 02:00:00:00:00:99", &sig).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod akd;
mod error;
pub mod field;
mod hmac;
mod schnorr;
mod sha256;

pub use akd::Akd;
pub use error::CryptoError;
pub use hmac::hmac_sha256;
pub use schnorr::{KeyPair, PublicKey, Signature, SIGNATURE_LEN};
pub use sha256::{sha256, Sha256};
