//! Arithmetic modulo the Mersenne prime `p = 2^127 - 1`.
//!
//! The Schnorr group lives in `GF(p)*`. A Mersenne modulus makes reduction
//! a pair of shift-adds, which keeps the simulated S-ARP hosts fast enough
//! to run thousands of signed resolutions per experiment while still doing
//! *real* modular exponentiation (so the latency asymmetry between sign
//! and verify is genuine, not a constant pulled from a table).

/// The field modulus, `2^127 - 1` (a Mersenne prime).
pub const P: u128 = (1u128 << 127) - 1;

/// The exponent modulus used for Schnorr arithmetic: the group order of
/// `GF(p)*`, i.e. `p - 1`.
pub const N: u128 = P - 1;

/// Reduces an arbitrary `u128` modulo `P` using Mersenne folding.
pub const fn reduce(x: u128) -> u128 {
    // x = hi * 2^127 + lo, and 2^127 ≡ 1 (mod P).
    let folded = (x >> 127) + (x & P);
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// Adds two field elements.
pub const fn add(a: u128, b: u128) -> u128 {
    // a, b < P < 2^127, so the sum cannot overflow u128.
    reduce(a + b)
}

/// Multiplies two field elements via 64-bit limbs and Mersenne folding.
pub fn mul(a: u128, b: u128) -> u128 {
    debug_assert!(a < P && b < P);
    let (a_hi, a_lo) = ((a >> 64) as u64, a as u64);
    let (b_hi, b_lo) = ((b >> 64) as u64, b as u64);

    let ll = u128::from(a_lo) * u128::from(b_lo);
    let lh = u128::from(a_lo) * u128::from(b_hi);
    let hl = u128::from(a_hi) * u128::from(b_lo);
    let hh = u128::from(a_hi) * u128::from(b_hi);

    // 256-bit product = hh·2^128 + (lh + hl)·2^64 + ll, accumulated into
    // (hi, lo) 128-bit halves.
    let mid = lh + hl; // ≤ 2^128 - 2^65 + ... fits: each ≤ (2^64-1)^2 < 2^128/2
    let (lo1, carry1) = ll.overflowing_add(mid << 64);
    let hi = hh + (mid >> 64) + u128::from(carry1);

    // value = hi·2^128 + lo1; 2^128 ≡ 2 (mod P) because 2^127 ≡ 1.
    // hi < 2^126 (since the product of two 127-bit numbers is < 2^254),
    // so 2·hi cannot overflow.
    reduce(reduce(hi << 1) + reduce(lo1))
}

/// Raises `base` to `exp` in the field (square-and-multiply).
pub fn pow(base: u128, mut exp: u128) -> u128 {
    let mut base = reduce(base);
    let mut acc: u128 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplies `a * b (mod m)` for an arbitrary modulus `m < 2^127`, using
/// shift-and-add. Used for exponent arithmetic modulo [`N`], which is not
/// Mersenne. Slower than [`mul`], but only invoked a handful of times per
/// signature.
pub fn mulmod(mut a: u128, mut b: u128, m: u128) -> u128 {
    debug_assert!(m > 0 && m < (1u128 << 127));
    a %= m;
    let mut acc: u128 = 0;
    while b > 0 {
        if b & 1 == 1 {
            acc += a;
            if acc >= m {
                acc -= m;
            }
        }
        a <<= 1;
        if a >= m {
            a -= m;
        }
        b >>= 1;
    }
    acc
}

/// Computes `a - b (mod m)`.
pub const fn submod(a: u128, b: u128, m: u128) -> u128 {
    let a = a % m;
    let b = b % m;
    if a >= b {
        a - b
    } else {
        m - b + a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_mersenne_127() {
        assert_eq!(P, 170141183460469231731687303715884105727);
        assert_eq!(N, P - 1);
    }

    #[test]
    fn reduce_fixed_points() {
        assert_eq!(reduce(0), 0);
        assert_eq!(reduce(P), 0);
        assert_eq!(reduce(P - 1), P - 1);
        assert_eq!(reduce(P + 5), 5);
        assert_eq!(reduce(u128::MAX), reduce((u128::MAX >> 127) + (u128::MAX & P)));
    }

    #[test]
    fn mul_matches_mulmod_reference() {
        // Cross-check the fast Mersenne multiply against the slow generic
        // shift-add multiply on structured and pseudo-random inputs.
        let mut x: u128 = 0x0123_4567_89ab_cdef;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = x % P;
            let b = (x >> 13 ^ x << 7) % P;
            assert_eq!(mul(a, b), mulmod(a, b, P), "a={a} b={b}");
        }
        assert_eq!(mul(P - 1, P - 1), mulmod(P - 1, P - 1, P));
        assert_eq!(mul(0, 12345), 0);
        assert_eq!(mul(1, P - 1), P - 1);
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 (mod p) for a ≠ 0 — strong evidence the whole
        // exponentiation pipeline is correct.
        for a in [2u128, 3, 65537, 0xdead_beef] {
            assert_eq!(pow(a, N), 1, "a={a}");
        }
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow(2, 0), 1);
        assert_eq!(pow(2, 10), 1024);
        assert_eq!(pow(3, 4), 81);
        assert_eq!(pow(2, 127), 1); // 2^127 = P + 1 ≡ 1
    }

    #[test]
    fn submod_wraps() {
        assert_eq!(submod(5, 3, 100), 2);
        assert_eq!(submod(3, 5, 100), 98);
        assert_eq!(submod(0, 1, N), N - 1);
    }

    #[test]
    fn mulmod_agrees_with_small_modulus() {
        assert_eq!(mulmod(7, 9, 10), 3);
        assert_eq!(mulmod(u128::from(u64::MAX), u128::from(u64::MAX), 97), {
            let m = (u64::MAX as u128 % 97) * (u64::MAX as u128 % 97) % 97;
            m
        });
    }

    #[test]
    fn add_wraps_at_p() {
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(add(P - 1, 2), 1);
        assert_eq!(add(3, 4), 7);
    }
}
