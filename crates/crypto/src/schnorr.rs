//! Schnorr signatures over `GF(2^127 - 1)*` with deterministic nonces.
//!
//! The scheme is the textbook one: for keypair `(x, y = g^x)`,
//! a signature on `m` is `(e, s)` where `r = g^k`, `e = H(r ‖ m)`,
//! `s = k - x·e (mod n)`. Verification recomputes `r' = g^s · y^e` and
//! accepts iff `H(r' ‖ m) = e`. Nonces are derived RFC 6979-style as
//! `k = HMAC(x, m)`, so signing needs no RNG and can never reuse a nonce
//! across distinct messages.

use crate::error::CryptoError;
use crate::field::{self, mulmod, pow, submod, N, P};
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// Group generator. Its exact order is a large divisor of `p - 1`; since
/// exponents are reduced modulo `p - 1`, correctness holds by Fermat's
/// little theorem regardless.
pub const G: u128 = 3;

/// Serialized signature length in bytes (`e` ‖ `s`, 16 bytes each).
pub const SIGNATURE_LEN: usize = 32;

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The hash challenge.
    pub e: u128,
    /// The response scalar.
    pub s: u128,
}

impl Signature {
    /// Serializes to 32 bytes (`e` then `s`, big-endian).
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..16].copy_from_slice(&self.e.to_be_bytes());
        out[16..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses from bytes produced by [`Signature::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedSignature`] if `bytes` is not exactly
    /// [`SIGNATURE_LEN`] long or encodes out-of-range scalars.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != SIGNATURE_LEN {
            return Err(CryptoError::MalformedSignature);
        }
        let mut e = [0u8; 16];
        let mut s = [0u8; 16];
        e.copy_from_slice(&bytes[..16]);
        s.copy_from_slice(&bytes[16..]);
        let e = u128::from_be_bytes(e);
        let s = u128::from_be_bytes(s);
        if e >= N || s >= N {
            return Err(CryptoError::MalformedSignature);
        }
        Ok(Signature { e, s })
    }
}

/// A public verification key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    y: u128,
}

impl PublicKey {
    /// Builds a public key from its group element.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedSignature`] for out-of-group values.
    pub fn from_element(y: u128) -> Result<Self, CryptoError> {
        if y == 0 || y >= P {
            return Err(CryptoError::MalformedSignature);
        }
        Ok(PublicKey { y })
    }

    /// The raw group element.
    pub fn element(&self) -> u128 {
        self.y
    }

    /// Serializes to 16 bytes.
    pub fn to_bytes(&self) -> [u8; 16] {
        self.y.to_be_bytes()
    }

    /// Parses 16 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedSignature`] for truncated or
    /// out-of-group encodings.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let arr: [u8; 16] = bytes.try_into().map_err(|_| CryptoError::MalformedSignature)?;
        PublicKey::from_element(u128::from_be_bytes(arr))
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] if the signature does not
    /// verify.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        // r' = g^s · y^e
        let r = field::mul(pow(G, signature.s), pow(self.y, signature.e));
        let e = challenge(r, message);
        if e == signature.e {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

/// A signing keypair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    x: u128,
    public: PublicKey,
}

impl KeyPair {
    /// Deterministically derives a keypair from a seed (hosts in the
    /// simulator key themselves off their device index).
    pub fn from_seed(seed: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"arpshield-keygen");
        h.update(&seed.to_be_bytes());
        let digest = h.finalize();
        let mut x_bytes = [0u8; 16];
        x_bytes.copy_from_slice(&digest[..16]);
        // x in [1, N)
        let x = (u128::from_be_bytes(x_bytes) % (N - 1)) + 1;
        let y = pow(G, x);
        KeyPair { x, public: PublicKey { y } }
    }

    /// The verification half.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let k_tag = hmac_sha256(&self.x.to_be_bytes(), message);
        let mut k_bytes = [0u8; 16];
        k_bytes.copy_from_slice(&k_tag[..16]);
        let k = (u128::from_be_bytes(k_bytes) % (N - 1)) + 1;
        let r = pow(G, k);
        let e = challenge(r, message);
        // s = k - x·e (mod n)
        let s = submod(k, mulmod(self.x, e, N), N);
        Signature { e, s }
    }
}

fn challenge(r: u128, message: &[u8]) -> u128 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(message);
    let digest = h.finalize();
    let mut e_bytes = [0u8; 16];
    e_bytes.copy_from_slice(&digest[..16]);
    u128::from_be_bytes(e_bytes) % N
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(42);
        let sig = kp.sign(b"10.0.0.1 is-at 02:00:00:00:00:2a");
        assert!(kp.public_key().verify(b"10.0.0.1 is-at 02:00:00:00:00:2a", &sig).is_ok());
    }

    #[test]
    fn rejects_tampered_message() {
        let kp = KeyPair::from_seed(1);
        let sig = kp.sign(b"binding A");
        assert_eq!(kp.public_key().verify(b"binding B", &sig), Err(CryptoError::InvalidSignature));
    }

    #[test]
    fn rejects_wrong_key() {
        let alice = KeyPair::from_seed(1);
        let mallory = KeyPair::from_seed(666);
        let sig = mallory.sign(b"forged claim");
        assert!(alice.public_key().verify(b"forged claim", &sig).is_err());
    }

    #[test]
    fn rejects_tampered_signature() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(b"msg");
        let bad_e = Signature { e: sig.e ^ 1, s: sig.s };
        let bad_s = Signature { e: sig.e, s: (sig.s + 1) % N };
        assert!(kp.public_key().verify(b"msg", &bad_e).is_err());
        assert!(kp.public_key().verify(b"msg", &bad_s).is_err());
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = KeyPair::from_seed(9);
        let sig = kp.sign(b"serialize me");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        assert!(kp.public_key().verify(b"serialize me", &parsed).is_ok());
    }

    #[test]
    fn malformed_signature_bytes_rejected() {
        assert_eq!(Signature::from_bytes(&[0; 31]), Err(CryptoError::MalformedSignature));
        assert_eq!(Signature::from_bytes(&[0xff; 32]), Err(CryptoError::MalformedSignature));
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let kp = KeyPair::from_seed(3);
        let pk = PublicKey::from_bytes(&kp.public_key().to_bytes()).unwrap();
        assert_eq!(pk, kp.public_key());
        assert!(PublicKey::from_bytes(&[0u8; 16]).is_err()); // zero not in group
        assert!(PublicKey::from_bytes(&[0u8; 15]).is_err());
    }

    #[test]
    fn deterministic_signing() {
        let kp = KeyPair::from_seed(5);
        assert_eq!(kp.sign(b"same message"), kp.sign(b"same message"));
        assert_ne!(kp.sign(b"message 1"), kp.sign(b"message 2"));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = KeyPair::from_seed(1);
        let b = KeyPair::from_seed(2);
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn many_roundtrips() {
        for seed in 0..20u64 {
            let kp = KeyPair::from_seed(seed);
            let msg = seed.to_be_bytes();
            let sig = kp.sign(&msg);
            assert!(kp.public_key().verify(&msg, &sig).is_ok(), "seed {seed}");
        }
    }
}
