//! End-station behaviours under less-happy paths: DHCP contention and
//! renewal, resolution under cache expiry, policy differences observed
//! at the stack level.

use std::time::Duration;

use arpshield_host::apps::PingApp;
use arpshield_host::dhcp::{DhcpClientConfig, DhcpServerConfig};
use arpshield_host::{ArpPolicy, Host, HostConfig, HostHandle};
use arpshield_netsim::{DeviceId, PortId, SimTime, Simulator, Switch, SwitchConfig};
use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};

fn cidr() -> Ipv4Cidr {
    Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

struct Net {
    sim: Simulator,
    switch: DeviceId,
    next_port: u16,
}

impl Net {
    fn new(seed: u64) -> Self {
        let mut sim = Simulator::new(seed);
        let (sw, _) = Switch::new("sw", SwitchConfig { ports: 16, ..Default::default() });
        let switch = sim.add_device(Box::new(sw));
        Net { sim, switch, next_port: 0 }
    }

    fn add(&mut self, host: Host) -> u16 {
        let id = self.sim.add_device(Box::new(host));
        let port = self.next_port;
        self.next_port += 1;
        self.sim
            .connect(id, PortId(0), self.switch, PortId(port), Duration::from_micros(5))
            .unwrap();
        port
    }
}

fn dhcp_gateway(pool: u32) -> (Host, HostHandle) {
    let gw_ip = ip(1);
    Host::new(
        HostConfig::static_ip("gw", MacAddr::from_index(100), gw_ip, cidr()).with_dhcp_server(
            DhcpServerConfig {
                pool_start: ip(100),
                pool_size: pool,
                lease: Duration::from_secs(8),
                mask: Ipv4Addr::new(255, 255, 255, 0),
                router: gw_ip,
                offer_hold: Duration::from_secs(4),
            },
        ),
    )
}

#[test]
fn dhcp_renewal_keeps_the_same_address() {
    let mut net = Net::new(1);
    let (gw, gw_h) = dhcp_gateway(4);
    net.add(gw);
    let (client, client_h) =
        Host::new(HostConfig::dhcp("laptop", MacAddr::from_index(1), DhcpClientConfig::default()));
    net.add(client);
    // Lease is 8 s; run 30 s → at least three renewals.
    net.sim.run_until(SimTime::from_secs(30));
    let info = client_h.dhcp_client.as_ref().unwrap().borrow().clone();
    assert!(info.acquisitions >= 3, "expected renewals, got {}", info.acquisitions);
    assert_eq!(client_h.ip(), Some(ip(100)), "sticky allocation must hold across renewals");
    assert_eq!(info.naks, 0);
    let server = gw_h.dhcp_server.as_ref().unwrap().borrow();
    assert_eq!(server.by_ip.len(), 1, "one client, one lease");
}

#[test]
fn two_clients_never_share_an_address() {
    let mut net = Net::new(2);
    let (gw, _) = dhcp_gateway(4);
    net.add(gw);
    let mut handles = Vec::new();
    for i in 0..2u32 {
        let cfg = DhcpClientConfig {
            start_delay: Duration::from_millis(100 + 40 * u64::from(i)),
            ..Default::default()
        };
        let (client, h) =
            Host::new(HostConfig::dhcp(format!("c{i}"), MacAddr::from_index(10 + i), cfg));
        net.add(client);
        handles.push(h);
    }
    net.sim.run_until(SimTime::from_secs(10));
    let a = handles[0].ip().expect("c0 bound");
    let b = handles[1].ip().expect("c1 bound");
    assert_ne!(a, b, "offer reservation must prevent double allocation");
}

#[test]
fn resolution_survives_cache_expiry_and_repeats() {
    let mut net = Net::new(3);
    let (gw, _) = Host::new(HostConfig::static_ip("gw", MacAddr::from_index(100), ip(1), cidr()));
    net.add(gw);
    let (mut h, handle) = Host::new(
        HostConfig::static_ip("h", MacAddr::from_index(2), ip(2), cidr())
            .with_arp_timeout(Duration::from_secs(3)),
    );
    let (ping, stats) = PingApp::new(ip(1), Duration::from_millis(200));
    h.add_app(Box::new(ping));
    net.add(h);
    net.sim.run_until(SimTime::from_secs(15));
    let s = handle.stats.borrow();
    // With a 3 s timeout over 15 s, several re-resolutions happen…
    assert!(s.resolutions_completed >= 3, "got {}", s.resolutions_completed);
    // …yet no ping is lost: expiry happens between transmissions and the
    // queue holds the packet through the one-hop re-resolution.
    let p = stats.borrow();
    assert_eq!(p.sent, p.received, "{}/{}", p.received, p.sent);
    drop(p);
    drop(s);
}

#[test]
fn policies_differ_observably_at_the_stack_level() {
    // One gratuitous announcement crosses the LAN; who learns from it?
    for (policy, should_learn) in [
        (ArpPolicy::Promiscuous, true),
        (ArpPolicy::Standard, false), // no prior entry, not addressed to us
        (ArpPolicy::NoUnsolicited, false),
        (ArpPolicy::StaticOnly, false),
    ] {
        let mut net = Net::new(4);
        let (announcer, _) = Host::new(
            HostConfig::static_ip("ann", MacAddr::from_index(9), ip(9), cidr())
                .with_gratuitous_announce(),
        );
        net.add(announcer);
        let (listener, handle) = Host::new(
            HostConfig::static_ip("lis", MacAddr::from_index(2), ip(2), cidr()).with_policy(policy),
        );
        net.add(listener);
        net.sim.run_until(SimTime::from_secs(1));
        let learned = handle.cache.borrow().lookup(net.sim.now(), ip(9)).is_some();
        assert_eq!(learned, should_learn, "{policy}: learned={learned}");
    }
}

#[test]
fn icmp_echo_ignored_when_disabled() {
    let mut net = Net::new(5);
    let mut cfg = HostConfig::static_ip("quiet", MacAddr::from_index(1), ip(1), cidr());
    cfg.respond_to_ping = false;
    let (quiet, quiet_h) = Host::new(cfg);
    net.add(quiet);
    let (mut pinger, _) =
        Host::new(HostConfig::static_ip("pinger", MacAddr::from_index(2), ip(2), cidr()));
    let (ping, stats) = PingApp::new(ip(1), Duration::from_millis(200));
    pinger.add_app(Box::new(ping));
    net.add(pinger);
    net.sim.run_until(SimTime::from_secs(3));
    let p = stats.borrow();
    assert!(p.sent > 5);
    assert_eq!(p.received, 0, "quiet host must not answer echo");
    // But it still answers ARP (it is not firewalled at L2).
    assert!(quiet_h.stats.borrow().arp_replies_sent >= 1);
}

#[test]
fn broadcast_ipv4_reaches_every_station() {
    use arpshield_host::apps::App;
    use arpshield_host::HostApi;

    struct Shouter;
    impl App for Shouter {
        fn name(&self) -> &str {
            "shouter"
        }
        fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
            api.schedule(Duration::from_millis(50), 0);
        }
        fn on_timer(&mut self, api: &mut HostApi<'_, '_>, _p: u32) {
            api.send_udp(Ipv4Addr::BROADCAST, 7777, 7777, b"hello all".to_vec());
        }
    }
    let mut net = Net::new(6);
    let (mut shouter, _) =
        Host::new(HostConfig::static_ip("s", MacAddr::from_index(1), ip(1), cidr()));
    shouter.add_app(Box::new(Shouter));
    net.add(shouter);
    let mut handles = Vec::new();
    for i in 2..=4u32 {
        let (h, handle) = Host::new(HostConfig::static_ip(
            format!("h{i}"),
            MacAddr::from_index(i),
            ip(i as u8),
            cidr(),
        ));
        net.add(h);
        handles.push(handle);
    }
    net.sim.run_until(SimTime::from_secs(1));
    for (i, h) in handles.iter().enumerate() {
        assert_eq!(h.stats.borrow().udp_delivered, 1, "station {i} missed the broadcast");
    }
}
