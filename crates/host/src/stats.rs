//! Per-host counters shared with experiments.

use std::time::Duration;

/// Counters a [`Host`](crate::Host) maintains while running.
///
/// Shared through [`HostHandle`](crate::HostHandle) so experiments can
/// read them during and after a run.
#[derive(Debug, Default, Clone)]
pub struct HostStats {
    /// ARP requests transmitted.
    pub arp_requests_sent: u64,
    /// ARP replies transmitted.
    pub arp_replies_sent: u64,
    /// ARP packets received (pre-policy).
    pub arp_received: u64,
    /// Cache writes performed (creations + updates).
    pub cache_writes: u64,
    /// ARP packets whose binding the policy refused.
    pub policy_rejections: u64,
    /// ARP packets dropped by a host hook (scheme agent).
    pub hook_drops: u64,
    /// Resolutions completed (reply matched an outstanding request).
    pub resolutions_completed: u64,
    /// Sum of resolution latencies, for averaging.
    pub resolution_latency_total: Duration,
    /// Resolutions abandoned after retry exhaustion (give-ups).
    pub resolutions_failed: u64,
    /// ARP requests retransmitted by the resolver's retry policy.
    pub arp_retransmissions: u64,
    /// IPv4 packets sent (including queued-then-flushed).
    pub ipv4_sent: u64,
    /// IPv4 packets received and parsed.
    pub ipv4_received: u64,
    /// IPv4 packets that could not be sent (no next hop / resolution
    /// failure).
    pub ipv4_send_failures: u64,
    /// UDP datagrams delivered to applications.
    pub udp_delivered: u64,
    /// ICMP echo requests answered.
    pub icmp_echoes_answered: u64,
    /// ICMP echo replies received by the ping client path.
    pub icmp_replies_received: u64,
    /// DHCP messages sent (client and server combined).
    pub dhcp_sent: u64,
    /// DHCP messages received.
    pub dhcp_received: u64,
    /// Abstract work units consumed by scheme agents on this host
    /// (signature verifications, database lookups…), the paper's
    /// CPU-cost proxy.
    pub work_units: u64,
}

impl HostStats {
    /// Mean ARP resolution latency, if any resolution completed.
    pub fn mean_resolution_latency(&self) -> Option<Duration> {
        if self.resolutions_completed == 0 {
            None
        } else {
            Some(self.resolution_latency_total / self.resolutions_completed as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency() {
        let mut s = HostStats::default();
        assert_eq!(s.mean_resolution_latency(), None);
        s.resolutions_completed = 4;
        s.resolution_latency_total = Duration::from_millis(20);
        assert_eq!(s.mean_resolution_latency(), Some(Duration::from_millis(5)));
    }
}
