//! ARP cache, acceptance policies, and the pending-resolution queue.

mod cache;
mod policy;
mod resolver;
mod retry;

pub use cache::{ArpCache, ArpEntry, EntryOrigin};
pub use policy::{AdmitContext, ArpPolicy, CacheVerdict};
pub(crate) use resolver::{PendingPacket, Resolver, RetryTick};
pub use retry::RetryPolicy;
