//! ARP acceptance policies — the axis of the susceptibility matrix.
//!
//! Operating systems differ in *which* ARP packets may create or update
//! cache entries, and those differences decide which poisoning variants
//! succeed against an unprotected host. The four policies below span the
//! space the literature distinguishes, from fully promiscuous learning to
//! static-only.

use arpshield_packet::ArpPacket;

/// Facts about an incoming ARP packet relative to the receiving host,
/// gathered by the stack and handed to the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitContext {
    /// A (live or expired) cache entry for the sender IP already exists.
    pub have_entry: bool,
    /// This host has an outstanding request for the sender IP.
    pub outstanding_request: bool,
    /// The packet is addressed to this host (request for our IP, or reply
    /// whose target protocol address is ours).
    pub addressed_to_us: bool,
    /// The packet is a reply (`false` = request).
    pub is_reply: bool,
}

/// What the policy allows the cache to do with the packet's sender
/// binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheVerdict {
    /// Create a new entry or update an existing one.
    CreateOrUpdate,
    /// Update the binding only if an entry already exists.
    UpdateOnly,
    /// Do not touch the cache.
    Ignore,
}

/// The acceptance policy of a host's ARP implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArpPolicy {
    /// Learn from *everything*: any sniffed request or reply creates or
    /// updates an entry. The most permissive behaviour (and the easiest
    /// to poison); some embedded stacks behave this way.
    Promiscuous,
    /// The classic BSD/Linux-style behaviour: any ARP *updates* an
    /// existing entry, but new entries are created only from packets
    /// addressed to us or replies we solicited.
    #[default]
    Standard,
    /// Anticap-style hardened kernel: replies are accepted only when this
    /// host has an outstanding request for that IP ("no unsolicited
    /// replies"), and requests may only refresh existing entries when
    /// addressed to us.
    NoUnsolicited,
    /// Never learn dynamically; only static entries resolve. (The
    /// prevention scheme with unbounded management cost.)
    StaticOnly,
}

impl ArpPolicy {
    /// Decides what the cache may do with the sender binding of `arp`.
    pub fn admit(&self, arp: &ArpPacket, ctx: AdmitContext) -> CacheVerdict {
        // RFC 5227 probes carry a zero sender IP and must never create
        // bindings under any policy.
        if arp.sender_ip.is_unspecified() {
            return CacheVerdict::Ignore;
        }
        match self {
            ArpPolicy::Promiscuous => CacheVerdict::CreateOrUpdate,
            ArpPolicy::Standard => {
                if ctx.addressed_to_us || (ctx.is_reply && ctx.outstanding_request) {
                    CacheVerdict::CreateOrUpdate
                } else if ctx.have_entry {
                    CacheVerdict::UpdateOnly
                } else {
                    CacheVerdict::Ignore
                }
            }
            ArpPolicy::NoUnsolicited => {
                if ctx.is_reply {
                    if ctx.outstanding_request {
                        CacheVerdict::CreateOrUpdate
                    } else {
                        CacheVerdict::Ignore
                    }
                } else if ctx.addressed_to_us && ctx.have_entry {
                    CacheVerdict::UpdateOnly
                } else {
                    CacheVerdict::Ignore
                }
            }
            ArpPolicy::StaticOnly => CacheVerdict::Ignore,
        }
    }

    /// All policies, in susceptibility order, for matrix experiments.
    pub fn all() -> [ArpPolicy; 4] {
        [
            ArpPolicy::Promiscuous,
            ArpPolicy::Standard,
            ArpPolicy::NoUnsolicited,
            ArpPolicy::StaticOnly,
        ]
    }

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArpPolicy::Promiscuous => "promiscuous",
            ArpPolicy::Standard => "standard",
            ArpPolicy::NoUnsolicited => "no-unsolicited",
            ArpPolicy::StaticOnly => "static-only",
        }
    }
}

impl std::fmt::Display for ArpPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_packet::{ArpOp, Ipv4Addr, MacAddr};

    fn reply() -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::from_index(9),
            sender_ip: Ipv4Addr::new(10, 0, 0, 9),
            target_mac: MacAddr::from_index(1),
            target_ip: Ipv4Addr::new(10, 0, 0, 1),
        }
    }

    fn request() -> ArpPacket {
        ArpPacket::request(
            MacAddr::from_index(9),
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(10, 0, 0, 1),
        )
    }

    fn ctx(have: bool, outstanding: bool, to_us: bool, is_reply: bool) -> AdmitContext {
        AdmitContext {
            have_entry: have,
            outstanding_request: outstanding,
            addressed_to_us: to_us,
            is_reply,
        }
    }

    #[test]
    fn promiscuous_accepts_everything() {
        let p = ArpPolicy::Promiscuous;
        assert_eq!(p.admit(&reply(), ctx(false, false, false, true)), CacheVerdict::CreateOrUpdate);
        assert_eq!(
            p.admit(&request(), ctx(false, false, false, false)),
            CacheVerdict::CreateOrUpdate
        );
    }

    #[test]
    fn standard_creates_only_when_addressed_or_solicited() {
        let p = ArpPolicy::Standard;
        // Unsolicited reply to someone else, no entry: ignored.
        assert_eq!(p.admit(&reply(), ctx(false, false, false, true)), CacheVerdict::Ignore);
        // Same but an entry exists: update allowed (the classic weakness).
        assert_eq!(p.admit(&reply(), ctx(true, false, false, true)), CacheVerdict::UpdateOnly);
        // Solicited reply: create.
        assert_eq!(p.admit(&reply(), ctx(false, true, true, true)), CacheVerdict::CreateOrUpdate);
        // Request addressed to us: create (we'll likely answer it anyway).
        assert_eq!(
            p.admit(&request(), ctx(false, false, true, false)),
            CacheVerdict::CreateOrUpdate
        );
        // Request for someone else, no entry: ignore.
        assert_eq!(p.admit(&request(), ctx(false, false, false, false)), CacheVerdict::Ignore);
    }

    #[test]
    fn no_unsolicited_requires_outstanding_request() {
        let p = ArpPolicy::NoUnsolicited;
        assert_eq!(p.admit(&reply(), ctx(true, false, true, true)), CacheVerdict::Ignore);
        assert_eq!(p.admit(&reply(), ctx(false, true, true, true)), CacheVerdict::CreateOrUpdate);
        // Requests can refresh but never create.
        assert_eq!(p.admit(&request(), ctx(true, false, true, false)), CacheVerdict::UpdateOnly);
        assert_eq!(p.admit(&request(), ctx(false, false, true, false)), CacheVerdict::Ignore);
    }

    #[test]
    fn static_only_ignores_all() {
        let p = ArpPolicy::StaticOnly;
        assert_eq!(p.admit(&reply(), ctx(true, true, true, true)), CacheVerdict::Ignore);
        assert_eq!(p.admit(&request(), ctx(true, true, true, false)), CacheVerdict::Ignore);
    }

    #[test]
    fn probes_never_create_bindings() {
        let probe = ArpPacket::request(
            MacAddr::from_index(9),
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::new(10, 0, 0, 1),
        );
        for p in ArpPolicy::all() {
            assert_eq!(p.admit(&probe, ctx(true, true, true, false)), CacheVerdict::Ignore);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ArpPolicy::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
        assert_eq!(ArpPolicy::Standard.to_string(), "standard");
    }
}
