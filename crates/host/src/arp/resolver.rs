//! The pending-resolution queue: packets waiting for an ARP answer.

use std::collections::HashMap;
use std::time::Duration;

use arpshield_netsim::SimTime;
use arpshield_packet::{IpProtocol, Ipv4Addr};

use crate::arp::RetryPolicy;

/// An L3 payload parked until its next hop resolves.
#[derive(Debug, Clone)]
pub(crate) struct PendingPacket {
    pub dst_ip: Ipv4Addr,
    pub protocol: IpProtocol,
    pub payload: Vec<u8>,
}

#[derive(Debug)]
struct Pending {
    packets: Vec<PendingPacket>,
    /// Retransmissions already sent for this resolution.
    attempts: u32,
    first_requested: SimTime,
}

/// What to do when a resolution's retransmit timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RetryTick {
    /// Retransmit the request and re-arm the timer after `next_delay`.
    Retransmit { next_delay: Duration },
    /// The resolution was abandoned; `dropped` packets were queued
    /// behind it.
    Exhausted { dropped: usize },
}

/// Tracks outstanding ARP requests and the packets queued behind them.
#[derive(Debug)]
pub(crate) struct Resolver {
    pending: HashMap<Ipv4Addr, Pending>,
    pub policy: RetryPolicy,
    pub max_queue_per_ip: usize,
}

impl Resolver {
    pub fn new(policy: RetryPolicy) -> Self {
        Resolver { pending: HashMap::new(), policy, max_queue_per_ip: 16 }
    }

    /// The delay before the first retransmission, armed alongside the
    /// initial request.
    pub fn first_delay(&self) -> Duration {
        self.policy.interval_for(0)
    }

    /// True when a request for `ip` is outstanding.
    pub fn is_outstanding(&self, ip: Ipv4Addr) -> bool {
        self.pending.contains_key(&ip)
    }

    /// Queues a packet behind the resolution of `next_hop`. Returns `true`
    /// if this is a *new* resolution (caller must transmit the first ARP
    /// request and arm the retransmit timer).
    pub fn enqueue(&mut self, now: SimTime, next_hop: Ipv4Addr, packet: PendingPacket) -> bool {
        match self.pending.get_mut(&next_hop) {
            Some(p) => {
                if p.packets.len() < self.max_queue_per_ip {
                    p.packets.push(packet);
                }
                false
            }
            None => {
                self.pending.insert(
                    next_hop,
                    Pending { packets: vec![packet], attempts: 0, first_requested: now },
                );
                true
            }
        }
    }

    /// Registers an outstanding request with nothing queued behind it
    /// (used by gratuitous refreshes and probing schemes). Returns `true`
    /// when newly registered.
    pub fn register_probe(&mut self, now: SimTime, ip: Ipv4Addr) -> bool {
        if self.pending.contains_key(&ip) {
            return false;
        }
        self.pending.insert(ip, Pending { packets: Vec::new(), attempts: 0, first_requested: now });
        true
    }

    /// Completes a resolution, returning the queued packets and the time
    /// the first request went out (for latency accounting).
    pub fn complete(&mut self, ip: Ipv4Addr) -> Option<(Vec<PendingPacket>, SimTime)> {
        self.pending.remove(&ip).map(|p| (p.packets, p.first_requested))
    }

    /// Burns one retry for `ip`. Returns `None` if nothing was
    /// outstanding; otherwise whether to retransmit (and after what
    /// backoff) or give up (the queue has been dropped).
    pub fn tick_retry(&mut self, ip: Ipv4Addr) -> Option<RetryTick> {
        let p = self.pending.get_mut(&ip)?;
        if p.attempts >= self.policy.max_retries {
            let dropped = self.pending.remove(&ip).map(|p| p.packets.len()).unwrap_or(0);
            return Some(RetryTick::Exhausted { dropped });
        }
        p.attempts += 1;
        // The timer that just fired waited `interval_for(attempts - 1)`;
        // the next one waits the next step of the backoff curve.
        Some(RetryTick::Retransmit { next_delay: self.policy.interval_for(p.attempts) })
    }

    /// Number of in-flight resolutions.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);

    fn pkt(n: u8) -> PendingPacket {
        PendingPacket { dst_ip: IP, protocol: IpProtocol::Udp, payload: vec![n] }
    }

    fn resolver() -> Resolver {
        Resolver::new(RetryPolicy::default())
    }

    #[test]
    fn first_enqueue_triggers_request() {
        let mut r = resolver();
        assert!(r.enqueue(SimTime::ZERO, IP, pkt(1)));
        assert!(!r.enqueue(SimTime::ZERO, IP, pkt(2)));
        assert!(r.is_outstanding(IP));
        let (packets, first) = r.complete(IP).unwrap();
        assert_eq!(packets.len(), 2);
        assert_eq!(first, SimTime::ZERO);
        assert!(!r.is_outstanding(IP));
    }

    #[test]
    fn queue_is_bounded() {
        let mut r = resolver();
        for n in 0..40 {
            r.enqueue(SimTime::ZERO, IP, pkt(n));
        }
        let (packets, _) = r.complete(IP).unwrap();
        assert_eq!(packets.len(), r.max_queue_per_ip);
    }

    #[test]
    fn retries_exhaust() {
        let mut r = resolver();
        r.enqueue(SimTime::ZERO, IP, pkt(1));
        r.enqueue(SimTime::ZERO, IP, pkt(2));
        let fixed = RetryTick::Retransmit { next_delay: Duration::from_secs(1) };
        assert_eq!(r.tick_retry(IP), Some(fixed));
        assert_eq!(r.tick_retry(IP), Some(fixed));
        assert_eq!(r.tick_retry(IP), Some(fixed));
        // Exhausted: the give-up reports how many packets it stranded.
        assert_eq!(r.tick_retry(IP), Some(RetryTick::Exhausted { dropped: 2 }));
        assert_eq!(r.tick_retry(IP), None);
        assert!(!r.is_outstanding(IP));
    }

    #[test]
    fn exponential_policy_schedules_growing_backoff() {
        let mut r = Resolver::new(RetryPolicy::exponential(
            Duration::from_millis(500),
            4,
            Duration::from_secs(2),
        ));
        assert_eq!(r.first_delay(), Duration::from_millis(500));
        r.enqueue(SimTime::ZERO, IP, pkt(1));
        let delays: Vec<Duration> = std::iter::from_fn(|| match r.tick_retry(IP) {
            Some(RetryTick::Retransmit { next_delay }) => Some(next_delay),
            _ => None,
        })
        .collect();
        assert_eq!(
            delays,
            vec![
                Duration::from_secs(1),
                Duration::from_secs(2),
                Duration::from_secs(2),
                Duration::from_secs(2),
            ]
        );
        assert_eq!(r.tick_retry(IP), None, "give-up dropped the entry");
    }

    #[test]
    fn probe_registration() {
        let mut r = resolver();
        assert!(r.register_probe(SimTime::ZERO, IP));
        assert!(!r.register_probe(SimTime::ZERO, IP));
        assert_eq!(r.outstanding(), 1);
        let (packets, _) = r.complete(IP).unwrap();
        assert!(packets.is_empty());
    }
}
