//! The pending-resolution queue: packets waiting for an ARP answer.

use std::collections::HashMap;
use std::time::Duration;

use arpshield_netsim::SimTime;
use arpshield_packet::{IpProtocol, Ipv4Addr};

/// An L3 payload parked until its next hop resolves.
#[derive(Debug, Clone)]
pub(crate) struct PendingPacket {
    pub dst_ip: Ipv4Addr,
    pub protocol: IpProtocol,
    pub payload: Vec<u8>,
}

#[derive(Debug)]
struct Pending {
    packets: Vec<PendingPacket>,
    retries_left: u32,
    first_requested: SimTime,
}

/// Tracks outstanding ARP requests and the packets queued behind them.
#[derive(Debug)]
pub(crate) struct Resolver {
    pending: HashMap<Ipv4Addr, Pending>,
    pub retransmit_interval: Duration,
    pub max_retries: u32,
    pub max_queue_per_ip: usize,
}

impl Resolver {
    pub fn new() -> Self {
        Resolver {
            pending: HashMap::new(),
            retransmit_interval: Duration::from_secs(1),
            max_retries: 3,
            max_queue_per_ip: 16,
        }
    }

    /// True when a request for `ip` is outstanding.
    pub fn is_outstanding(&self, ip: Ipv4Addr) -> bool {
        self.pending.contains_key(&ip)
    }

    /// Queues a packet behind the resolution of `next_hop`. Returns `true`
    /// if this is a *new* resolution (caller must transmit the first ARP
    /// request and arm the retransmit timer).
    pub fn enqueue(&mut self, now: SimTime, next_hop: Ipv4Addr, packet: PendingPacket) -> bool {
        match self.pending.get_mut(&next_hop) {
            Some(p) => {
                if p.packets.len() < self.max_queue_per_ip {
                    p.packets.push(packet);
                }
                false
            }
            None => {
                self.pending.insert(
                    next_hop,
                    Pending {
                        packets: vec![packet],
                        retries_left: self.max_retries,
                        first_requested: now,
                    },
                );
                true
            }
        }
    }

    /// Registers an outstanding request with nothing queued behind it
    /// (used by gratuitous refreshes and probing schemes). Returns `true`
    /// when newly registered.
    pub fn register_probe(&mut self, now: SimTime, ip: Ipv4Addr) -> bool {
        if self.pending.contains_key(&ip) {
            return false;
        }
        self.pending.insert(
            ip,
            Pending { packets: Vec::new(), retries_left: self.max_retries, first_requested: now },
        );
        true
    }

    /// Completes a resolution, returning the queued packets and the time
    /// the first request went out (for latency accounting).
    pub fn complete(&mut self, ip: Ipv4Addr) -> Option<(Vec<PendingPacket>, SimTime)> {
        self.pending.remove(&ip).map(|p| (p.packets, p.first_requested))
    }

    /// Burns one retry for `ip`. Returns `Some(true)` if a retransmission
    /// should be sent, `Some(false)` if the resolution is exhausted (and
    /// has been dropped), `None` if nothing was outstanding.
    pub fn tick_retry(&mut self, ip: Ipv4Addr) -> Option<bool> {
        let p = self.pending.get_mut(&ip)?;
        if p.retries_left == 0 {
            self.pending.remove(&ip);
            return Some(false);
        }
        p.retries_left -= 1;
        Some(true)
    }

    /// Number of in-flight resolutions.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Packets currently queued behind the resolution of `ip`.
    pub fn queued_len(&self, ip: Ipv4Addr) -> usize {
        self.pending.get(&ip).map(|p| p.packets.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);

    fn pkt(n: u8) -> PendingPacket {
        PendingPacket { dst_ip: IP, protocol: IpProtocol::Udp, payload: vec![n] }
    }

    #[test]
    fn first_enqueue_triggers_request() {
        let mut r = Resolver::new();
        assert!(r.enqueue(SimTime::ZERO, IP, pkt(1)));
        assert!(!r.enqueue(SimTime::ZERO, IP, pkt(2)));
        assert!(r.is_outstanding(IP));
        let (packets, first) = r.complete(IP).unwrap();
        assert_eq!(packets.len(), 2);
        assert_eq!(first, SimTime::ZERO);
        assert!(!r.is_outstanding(IP));
    }

    #[test]
    fn queue_is_bounded() {
        let mut r = Resolver::new();
        for n in 0..40 {
            r.enqueue(SimTime::ZERO, IP, pkt(n));
        }
        let (packets, _) = r.complete(IP).unwrap();
        assert_eq!(packets.len(), r.max_queue_per_ip);
    }

    #[test]
    fn retries_exhaust() {
        let mut r = Resolver::new();
        r.enqueue(SimTime::ZERO, IP, pkt(1));
        assert_eq!(r.tick_retry(IP), Some(true));
        assert_eq!(r.tick_retry(IP), Some(true));
        assert_eq!(r.tick_retry(IP), Some(true));
        assert_eq!(r.tick_retry(IP), Some(false)); // exhausted, dropped
        assert_eq!(r.tick_retry(IP), None);
        assert!(!r.is_outstanding(IP));
    }

    #[test]
    fn probe_registration() {
        let mut r = Resolver::new();
        assert!(r.register_probe(SimTime::ZERO, IP));
        assert!(!r.register_probe(SimTime::ZERO, IP));
        assert_eq!(r.outstanding(), 1);
        let (packets, _) = r.complete(IP).unwrap();
        assert!(packets.is_empty());
    }
}
