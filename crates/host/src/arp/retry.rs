//! Retransmit policy for outstanding ARP resolutions.

use std::time::Duration;

/// How a host retransmits unanswered ARP requests.
///
/// The default reproduces the classic fixed-interval behaviour (1 s
/// between retransmissions, three retries, then give up) that every
/// pre-impairment experiment was calibrated against. Lossy topologies
/// opt into [`RetryPolicy::exponential`], which backs off between
/// attempts and keeps retrying longer before abandoning the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay between the initial request and the first retransmission.
    pub initial_interval: Duration,
    /// Retransmissions attempted before the resolution is abandoned.
    pub max_retries: u32,
    /// Interval multiplier applied per retransmission (1 = fixed).
    pub backoff_factor: u32,
    /// Ceiling on any single inter-attempt interval.
    pub max_interval: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::fixed(Duration::from_secs(1), 3)
    }
}

impl RetryPolicy {
    /// A fixed-interval policy: `max_retries` retransmissions spaced
    /// `interval` apart.
    pub fn fixed(interval: Duration, max_retries: u32) -> Self {
        RetryPolicy {
            initial_interval: interval,
            max_retries,
            backoff_factor: 1,
            max_interval: interval,
        }
    }

    /// A bounded exponential policy: intervals double per attempt,
    /// capped at `max_interval`.
    pub fn exponential(initial: Duration, max_retries: u32, max_interval: Duration) -> Self {
        RetryPolicy { initial_interval: initial, max_retries, backoff_factor: 2, max_interval }
    }

    /// The delay scheduled before retransmission number `attempt`
    /// (attempt 0 is the wait after the initial request).
    pub fn interval_for(&self, attempt: u32) -> Duration {
        let factor = self.backoff_factor.saturating_pow(attempt.min(30)).max(1);
        self.initial_interval.saturating_mul(factor).min(self.max_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_legacy_fixed_schedule() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 3);
        for attempt in 0..4 {
            assert_eq!(p.interval_for(attempt), Duration::from_secs(1));
        }
    }

    #[test]
    fn exponential_doubles_then_caps() {
        let p = RetryPolicy::exponential(Duration::from_millis(250), 6, Duration::from_secs(2));
        assert_eq!(p.interval_for(0), Duration::from_millis(250));
        assert_eq!(p.interval_for(1), Duration::from_millis(500));
        assert_eq!(p.interval_for(2), Duration::from_secs(1));
        assert_eq!(p.interval_for(3), Duration::from_secs(2));
        assert_eq!(p.interval_for(4), Duration::from_secs(2), "capped");
        assert_eq!(p.interval_for(30), Duration::from_secs(2), "no overflow");
    }
}
