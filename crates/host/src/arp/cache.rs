//! The ARP cache: the data structure the whole paper is about poisoning.

use std::collections::HashMap;
use std::time::Duration;

use arpshield_netsim::SimTime;
use arpshield_packet::{Ipv4Addr, MacAddr};

/// How an entry got into the cache, for forensics and ground-truth checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryOrigin {
    /// Statically configured by the administrator (never expires, never
    /// overwritten dynamically).
    Static,
    /// Learned from a reply to a request this host sent.
    SolicitedReply,
    /// Learned from an unsolicited reply (including gratuitous replies).
    UnsolicitedReply,
    /// Learned from a sniffed or received request's sender fields.
    Request,
    /// Installed by a verification scheme (S-ARP, active probe) after it
    /// authenticated the binding.
    Verified,
}

/// One IP-to-MAC binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpEntry {
    /// The hardware address the IP currently maps to.
    pub mac: MacAddr,
    /// When the binding was last written.
    pub updated_at: SimTime,
    /// Provenance of the current binding.
    pub origin: EntryOrigin,
}

impl ArpEntry {
    /// True for statically configured entries.
    pub fn is_static(&self) -> bool {
        self.origin == EntryOrigin::Static
    }
}

/// A per-host ARP cache with entry timeout.
///
/// The cache itself is policy-free: *whether* a given ARP packet may
/// create or overwrite an entry is decided by
/// [`ArpPolicy`](crate::ArpPolicy); the cache only enforces the one
/// invariant every implementation shares — static entries are never
/// displaced dynamically.
#[derive(Debug, Clone)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, ArpEntry>,
    timeout: Duration,
}

impl ArpCache {
    /// Creates a cache whose dynamic entries expire after `timeout`.
    pub fn new(timeout: Duration) -> Self {
        ArpCache { entries: HashMap::new(), timeout }
    }

    /// The configured entry timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Looks up a live binding. Expired dynamic entries return `None`.
    pub fn lookup(&self, now: SimTime, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries.get(&ip).and_then(|e| {
            if e.is_static() || now.saturating_since(e.updated_at) < self.timeout {
                Some(e.mac)
            } else {
                None
            }
        })
    }

    /// Returns the full entry (including expired ones), for inspection.
    pub fn entry(&self, ip: Ipv4Addr) -> Option<&ArpEntry> {
        self.entries.get(&ip)
    }

    /// Inserts or overwrites a dynamic binding. Static entries win: the
    /// write is refused (returns `false`) if a static entry exists.
    pub fn insert_dynamic(
        &mut self,
        now: SimTime,
        ip: Ipv4Addr,
        mac: MacAddr,
        origin: EntryOrigin,
    ) -> bool {
        debug_assert!(origin != EntryOrigin::Static, "use insert_static");
        match self.entries.get(&ip) {
            Some(e) if e.is_static() => false,
            _ => {
                self.entries.insert(ip, ArpEntry { mac, updated_at: now, origin });
                true
            }
        }
    }

    /// Installs a static binding, displacing anything dynamic.
    pub fn insert_static(&mut self, now: SimTime, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(ip, ArpEntry { mac, updated_at: now, origin: EntryOrigin::Static });
    }

    /// Removes a binding (static or not). Returns the removed entry.
    pub fn remove(&mut self, ip: Ipv4Addr) -> Option<ArpEntry> {
        self.entries.remove(&ip)
    }

    /// Drops expired dynamic entries; returns how many were evicted.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let timeout = self.timeout;
        let before = self.entries.len();
        self.entries.retain(|_, e| e.is_static() || now.saturating_since(e.updated_at) < timeout);
        before - self.entries.len()
    }

    /// Number of entries, including expired-but-unswept ones.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(ip, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Addr, &ArpEntry)> {
        self.entries.iter()
    }

    /// Ground-truth helper for experiments: is `ip` currently bound to a
    /// MAC *other* than `legitimate` (i.e. poisoned)?
    pub fn is_poisoned(&self, now: SimTime, ip: Ipv4Addr, legitimate: MacAddr) -> bool {
        matches!(self.lookup(now, ip), Some(mac) if mac != legitimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const MAC_A: MacAddr = MacAddr::new([2, 0, 0, 0, 0, 1]);
    const MAC_B: MacAddr = MacAddr::new([2, 0, 0, 0, 0, 2]);

    fn cache() -> ArpCache {
        ArpCache::new(Duration::from_secs(60))
    }

    #[test]
    fn dynamic_entries_expire() {
        let mut c = cache();
        c.insert_dynamic(SimTime::ZERO, IP, MAC_A, EntryOrigin::SolicitedReply);
        assert_eq!(c.lookup(SimTime::from_secs(59), IP), Some(MAC_A));
        assert_eq!(c.lookup(SimTime::from_secs(60), IP), None);
    }

    #[test]
    fn static_entries_never_expire() {
        let mut c = cache();
        c.insert_static(SimTime::ZERO, IP, MAC_A);
        assert_eq!(c.lookup(SimTime::from_secs(1_000_000), IP), Some(MAC_A));
    }

    #[test]
    fn static_entries_resist_dynamic_overwrite() {
        let mut c = cache();
        c.insert_static(SimTime::ZERO, IP, MAC_A);
        assert!(!c.insert_dynamic(SimTime::ZERO, IP, MAC_B, EntryOrigin::UnsolicitedReply));
        assert_eq!(c.lookup(SimTime::ZERO, IP), Some(MAC_A));
    }

    #[test]
    fn dynamic_overwrite_updates_origin() {
        let mut c = cache();
        c.insert_dynamic(SimTime::ZERO, IP, MAC_A, EntryOrigin::Request);
        assert!(c.insert_dynamic(SimTime::from_secs(1), IP, MAC_B, EntryOrigin::UnsolicitedReply));
        let e = c.entry(IP).unwrap();
        assert_eq!(e.mac, MAC_B);
        assert_eq!(e.origin, EntryOrigin::UnsolicitedReply);
        assert_eq!(e.updated_at, SimTime::from_secs(1));
    }

    #[test]
    fn sweep_removes_only_expired_dynamics() {
        let mut c = cache();
        c.insert_static(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 1), MAC_A);
        c.insert_dynamic(SimTime::ZERO, IP, MAC_A, EntryOrigin::Request);
        c.insert_dynamic(
            SimTime::from_secs(30),
            Ipv4Addr::new(10, 0, 0, 3),
            MAC_B,
            EntryOrigin::Request,
        );
        assert_eq!(c.sweep(SimTime::from_secs(61)), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn poisoned_detection() {
        let mut c = cache();
        assert!(!c.is_poisoned(SimTime::ZERO, IP, MAC_A)); // no entry = not poisoned
        c.insert_dynamic(SimTime::ZERO, IP, MAC_A, EntryOrigin::SolicitedReply);
        assert!(!c.is_poisoned(SimTime::ZERO, IP, MAC_A));
        c.insert_dynamic(SimTime::ZERO, IP, MAC_B, EntryOrigin::UnsolicitedReply);
        assert!(c.is_poisoned(SimTime::ZERO, IP, MAC_A));
    }

    #[test]
    fn remove_returns_entry() {
        let mut c = cache();
        c.insert_dynamic(SimTime::ZERO, IP, MAC_A, EntryOrigin::Request);
        let removed = c.remove(IP).unwrap();
        assert_eq!(removed.mac, MAC_A);
        assert!(c.is_empty());
        assert!(c.remove(IP).is_none());
    }
}
