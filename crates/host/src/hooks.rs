//! Hook points through which host-resident defence schemes participate in
//! the stack, and the [`HostApi`] facade they (and applications) use.

use std::time::Duration;

use arpshield_netsim::{eth_frame, DeviceCtx, PortId};
use arpshield_packet::{
    ArpPacket, EtherType, EthernetFrame, IcmpMessage, Ipv4Addr, Ipv4Cidr, MacAddr, UdpDatagram,
};

use crate::arp::EntryOrigin;
use crate::stack::{tokens, HostCore};

/// Hook decision about an incoming ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpVerdict {
    /// Let normal stack processing continue (other hooks, then policy).
    Continue,
    /// Suppress the packet entirely: no cache write, no auto-reply.
    Drop,
}

/// Hook decision about an arbitrary incoming frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVerdict {
    /// Let normal stack processing continue.
    Continue,
    /// The hook consumed the frame (e.g. an S-ARP signed reply).
    Consumed,
}

/// A host-resident agent: kernel ARP hardening, the S-ARP daemon, etc.
///
/// Hooks run *before* the host's own ARP processing, in installation
/// order. A hook that returns [`ArpVerdict::Drop`] short-circuits the
/// rest.
pub trait HostHook {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// Called once at simulation start.
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        let _ = api;
    }

    /// Called for every received ARP packet before normal processing.
    fn on_arp_rx(
        &mut self,
        api: &mut HostApi<'_, '_>,
        eth: &EthernetFrame,
        arp: &ArpPacket,
    ) -> ArpVerdict {
        let _ = (api, eth, arp);
        ArpVerdict::Continue
    }

    /// Called for every received frame of *any* ethertype (before ARP/IP
    /// dispatch). Lets schemes define their own wire formats.
    fn on_frame_rx(&mut self, api: &mut HostApi<'_, '_>, eth: &EthernetFrame) -> FrameVerdict {
        let _ = (api, eth);
        FrameVerdict::Continue
    }

    /// Called when a timer scheduled via [`HostApi::schedule`] fires.
    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, payload: u32) {
        let _ = (api, payload);
    }
}

/// Which subsystem a [`HostApi`] is currently serving; determines how its
/// timers are routed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerClass {
    App(u16),
    Hook(u16),
    DhcpClient,
    DhcpServer,
}

/// The facade through which hooks and applications drive the host.
///
/// It wraps the host core and the simulator context for the duration of
/// one callback.
#[derive(Debug)]
pub struct HostApi<'a, 'b> {
    pub(crate) core: &'a mut HostCore,
    pub(crate) ctx: &'a mut DeviceCtx<'b>,
    pub(crate) class: TimerClass,
}

impl HostApi<'_, '_> {
    /// Current simulation time.
    pub fn now(&self) -> arpshield_netsim::SimTime {
        self.ctx.now()
    }

    /// This host's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.core.iface.borrow().mac()
    }

    /// This host's IP, if configured.
    pub fn ip(&self) -> Option<Ipv4Addr> {
        self.core.iface.borrow().ip()
    }

    /// This host's subnet, if configured.
    pub fn subnet(&self) -> Option<Ipv4Cidr> {
        self.core.iface.borrow().subnet()
    }

    /// Host name.
    pub fn host_name(&self) -> &str {
        &self.core.name
    }

    /// A deterministic random draw.
    pub fn rand_u64(&mut self) -> u64 {
        self.ctx.rng().next_u64()
    }

    /// Sends a raw Ethernet frame.
    pub fn send_frame(&mut self, frame: &EthernetFrame) {
        self.core.send_frame(self.ctx, frame);
    }

    /// Broadcasts an ARP request for `target_ip` from this host.
    pub fn send_arp_request(&mut self, target_ip: Ipv4Addr) {
        self.core.send_arp_request(self.ctx, target_ip);
    }

    /// Sends an ARP probe (RFC 5227 style: zero sender IP) for
    /// `target_ip`. Probes never pollute caches, which is why active
    /// verification schemes use them.
    pub fn send_arp_probe(&mut self, target_ip: Ipv4Addr) {
        let mac = self.mac();
        let probe = ArpPacket::request(mac, Ipv4Addr::UNSPECIFIED, target_ip);
        self.ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, mac, EtherType::ARP, &probe));
        self.core.stats.borrow_mut().arp_requests_sent += 1;
    }

    /// Sends a unicast ICMP echo request to `dst` (resolving it first if
    /// needed).
    pub fn send_ping(&mut self, dst: Ipv4Addr, identifier: u16, sequence: u16) {
        let msg = IcmpMessage::echo_request(identifier, sequence, vec![0x61; 16]);
        self.core.send_ipv4(self.ctx, dst, arpshield_packet::IpProtocol::Icmp, msg.encode());
    }

    /// Sends a UDP datagram to `dst` (resolving it first if needed).
    pub fn send_udp(&mut self, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: Vec<u8>) {
        let src_ip = self.ip().unwrap_or(Ipv4Addr::UNSPECIFIED);
        let dgram = UdpDatagram::new(src_port, dst_port, payload).encode(src_ip, dst);
        self.core.send_ipv4(self.ctx, dst, arpshield_packet::IpProtocol::Udp, dgram);
    }

    /// Schedules a callback to this hook/app after `delay`, with an opaque
    /// payload.
    pub fn schedule(&mut self, delay: Duration, payload: u32) {
        let token = match self.class {
            TimerClass::App(i) => tokens::app(i, payload),
            TimerClass::Hook(i) => tokens::hook(i, payload),
            TimerClass::DhcpClient => tokens::encode(tokens::CLASS_DHCP_CLIENT, 0, payload),
            TimerClass::DhcpServer => tokens::encode(tokens::CLASS_DHCP_SERVER, 0, payload),
        };
        self.ctx.schedule_in(delay, token);
    }

    /// Looks up a live cache binding.
    pub fn cache_lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.core.cache.borrow().lookup(self.ctx.now(), ip)
    }

    /// Installs a *verified* binding (used by S-ARP / probing schemes
    /// after authentication) and flushes any packets queued behind it.
    pub fn install_verified_binding(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        let now = self.ctx.now();
        self.core.cache.borrow_mut().insert_dynamic(now, ip, mac, EntryOrigin::Verified);
        self.core.stats.borrow_mut().cache_writes += 1;
        self.core.flush_pending(self.ctx, ip, mac);
    }

    /// Installs a static binding.
    pub fn install_static_binding(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        let now = self.ctx.now();
        self.core.cache.borrow_mut().insert_static(now, ip, mac);
    }

    /// Removes a binding.
    pub fn remove_binding(&mut self, ip: Ipv4Addr) {
        self.core.cache.borrow_mut().remove(ip);
    }

    /// True when this host has an outstanding ARP request for `ip`.
    pub fn is_resolving(&self, ip: Ipv4Addr) -> bool {
        self.core.resolver.is_outstanding(ip)
    }

    /// Registers an outstanding-resolution marker for `ip` without
    /// queueing traffic behind it, so a subsequent reply reads as
    /// solicited. Probing hooks use this before emitting their own
    /// requests. Returns `false` when a resolution is already in flight.
    pub fn register_probe_resolution(&mut self, ip: Ipv4Addr) -> bool {
        let now = self.ctx.now();
        self.core.resolver.register_probe(now, ip)
    }

    /// Number of resolutions currently in flight on this host.
    pub fn resolutions_in_flight(&self) -> usize {
        self.core.resolver.outstanding()
    }

    /// Charges abstract work units to this host (the CPU-cost proxy used
    /// by the evaluation: e.g. one unit per inspected packet, hundreds
    /// per signature operation).
    pub fn add_work(&mut self, units: u64) {
        self.core.stats.borrow_mut().work_units += units;
    }

    /// Counts a hook-level drop in the host stats.
    pub fn count_hook_drop(&mut self) {
        self.core.stats.borrow_mut().hook_drops += 1;
    }
}
