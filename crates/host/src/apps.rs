//! Application workloads that generate the traffic schemes must not
//! misclassify.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_netsim::SimTime;
use arpshield_packet::Ipv4Addr;

use crate::hooks::HostApi;

/// An application running on a [`Host`](crate::Host).
///
/// Applications see UDP datagrams delivered to the host, ICMP echo
/// replies, and their own timers; they transmit through the [`HostApi`].
pub trait App {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// Called once at simulation start.
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        let _ = api;
    }

    /// Called when a timer scheduled via [`HostApi::schedule`] fires.
    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, payload: u32) {
        let _ = (api, payload);
    }

    /// Called for every UDP datagram delivered to this host (all apps see
    /// all datagrams; filter on `dst_port`).
    fn on_udp(
        &mut self,
        api: &mut HostApi<'_, '_>,
        src: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) {
        let _ = (api, src, src_port, dst_port, payload);
    }

    /// Called when an ICMP echo reply arrives.
    fn on_icmp_reply(&mut self, api: &mut HostApi<'_, '_>, src: Ipv4Addr, sequence: u16) {
        let _ = (api, src, sequence);
    }
}

/// Observable results of a [`PingApp`].
#[derive(Debug, Default, Clone)]
pub struct PingStats {
    /// Echo requests sent.
    pub sent: u64,
    /// Echo replies received.
    pub received: u64,
    /// Sum of round-trip times for averaging.
    pub rtt_total: Duration,
}

impl PingStats {
    /// Fraction of pings answered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.received as f64 / self.sent as f64
        }
    }

    /// Mean round-trip time over answered pings.
    pub fn mean_rtt(&self) -> Option<Duration> {
        if self.received == 0 {
            None
        } else {
            Some(self.rtt_total / self.received as u32)
        }
    }
}

/// Periodically pings a target and records delivery and RTT — the
/// workload used to measure what a victim experiences while poisoned.
#[derive(Debug)]
pub struct PingApp {
    target: Ipv4Addr,
    interval: Duration,
    identifier: u16,
    next_seq: u16,
    in_flight: Vec<(u16, SimTime)>,
    stats: Rc<RefCell<PingStats>>,
}

impl PingApp {
    /// Creates a pinger and a shared handle onto its statistics.
    pub fn new(target: Ipv4Addr, interval: Duration) -> (Self, Rc<RefCell<PingStats>>) {
        let stats = Rc::new(RefCell::new(PingStats::default()));
        (
            PingApp {
                target,
                interval,
                identifier: 0x5049, // "PI"
                next_seq: 0,
                in_flight: Vec::new(),
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl App for PingApp {
    fn name(&self) -> &str {
        "ping"
    }

    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        // Stagger starts so a fleet of pingers does not synchronize.
        let jitter = Duration::from_micros(api.rand_u64() % 50_000);
        api.schedule(self.interval / 2 + jitter, 0);
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, _payload: u32) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.in_flight.push((seq, api.now()));
        if self.in_flight.len() > 64 {
            self.in_flight.remove(0);
        }
        self.stats.borrow_mut().sent += 1;
        api.send_ping(self.target, self.identifier, seq);
        api.schedule(self.interval, 0);
    }

    fn on_icmp_reply(&mut self, api: &mut HostApi<'_, '_>, src: Ipv4Addr, sequence: u16) {
        if src != self.target {
            return;
        }
        if let Some(pos) = self.in_flight.iter().position(|(s, _)| *s == sequence) {
            let (_, sent_at) = self.in_flight.remove(pos);
            let mut stats = self.stats.borrow_mut();
            stats.received += 1;
            stats.rtt_total += api.now().saturating_since(sent_at);
        }
    }
}

/// Echoes every UDP datagram arriving on its port back to the sender.
#[derive(Debug)]
pub struct UdpEchoServer {
    port: u16,
    /// Datagrams echoed.
    pub echoed: u64,
}

impl UdpEchoServer {
    /// Creates an echo server on `port`.
    pub fn new(port: u16) -> Self {
        UdpEchoServer { port, echoed: 0 }
    }
}

impl App for UdpEchoServer {
    fn name(&self) -> &str {
        "udp-echo"
    }

    fn on_udp(
        &mut self,
        api: &mut HostApi<'_, '_>,
        src: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) {
        if dst_port == self.port {
            self.echoed += 1;
            api.send_udp(src, self.port, src_port, payload.to_vec());
        }
    }
}

/// Sends UDP datagrams to a target with exponential (Poisson-process)
/// inter-arrival times — realistic background load for overhead and
/// false-positive experiments.
#[derive(Debug)]
pub struct UdpPulseApp {
    target: Ipv4Addr,
    dst_port: u16,
    mean_interval: Duration,
    size: usize,
    /// Datagrams transmitted.
    pub transmitted: u64,
}

impl UdpPulseApp {
    /// Creates a pulse generator.
    pub fn new(target: Ipv4Addr, dst_port: u16, mean_interval: Duration, size: usize) -> Self {
        UdpPulseApp { target, dst_port, mean_interval, size, transmitted: 0 }
    }

    fn arm(&self, api: &mut HostApi<'_, '_>) {
        let mean = self.mean_interval.as_nanos().min(u128::from(u64::MAX)) as u64;
        let wait = {
            let rng_draw = api.rand_u64();
            // Inverse-CDF exponential sample from a uniform draw.
            let u = ((rng_draw >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
            Duration::from_nanos((-(u.ln()) * mean as f64).min(1e18) as u64)
        };
        api.schedule(wait, 0);
    }
}

impl App for UdpPulseApp {
    fn name(&self) -> &str {
        "udp-pulse"
    }

    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        self.arm(api);
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, _payload: u32) {
        self.transmitted += 1;
        api.send_udp(self.target, 40_000, self.dst_port, vec![0xab; self.size]);
        self.arm(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_stats_math() {
        let mut s = PingStats::default();
        assert_eq!(s.delivery_ratio(), 0.0);
        assert_eq!(s.mean_rtt(), None);
        s.sent = 10;
        s.received = 5;
        s.rtt_total = Duration::from_millis(50);
        assert!((s.delivery_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(s.mean_rtt(), Some(Duration::from_millis(10)));
    }

    // Behavioural tests for the apps live in `stack.rs`, where a full
    // simulated LAN is available.
}
