//! The [`Host`] device: a full end-station stack on one simulated NIC.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, Frame, PortId};
use arpshield_packet::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, IcmpMessage, IcmpType, IpProtocol, Ipv4Addr,
    Ipv4Cidr, Ipv4Emit, Ipv4Packet, MacAddr, UdpDatagram, UdpEmit, WireEmit,
};
use arpshield_trace::Tracer;

use crate::apps::App;
use crate::arp::{
    AdmitContext, ArpCache, ArpPolicy, CacheVerdict, EntryOrigin, PendingPacket, Resolver,
    RetryPolicy, RetryTick,
};
use crate::dhcp::{
    DhcpClient, DhcpClientConfig, DhcpClientInfo, DhcpServer, DhcpServerConfig, DhcpServerState,
};
use crate::hooks::{ArpVerdict, FrameVerdict, HostApi, HostHook, TimerClass};
use crate::iface::Interface;
use crate::stats::HostStats;

/// Timer-token encoding shared by all host subsystems.
///
/// A token packs `class << 56 | index << 32 | payload`, letting one
/// `on_timer` entry point demultiplex resolver retransmits, cache sweeps,
/// DHCP ticks, and per-app/per-hook timers.
pub mod tokens {
    /// Resolver retransmit; payload is the IPv4 address being resolved.
    pub const CLASS_RESOLVER: u8 = 1;
    /// Periodic ARP-cache sweep.
    pub const CLASS_CACHE_SWEEP: u8 = 2;
    /// DHCP client tick.
    pub const CLASS_DHCP_CLIENT: u8 = 3;
    /// DHCP server tick.
    pub const CLASS_DHCP_SERVER: u8 = 4;
    /// Application timer; index selects the app.
    pub const CLASS_APP: u8 = 5;
    /// Hook timer; index selects the hook.
    pub const CLASS_HOOK: u8 = 6;

    /// Builds a token.
    pub fn encode(class: u8, index: u16, payload: u32) -> u64 {
        (u64::from(class) << 56) | (u64::from(index) << 32) | u64::from(payload)
    }

    /// Splits a token into `(class, index, payload)`.
    pub fn decode(token: u64) -> (u8, u16, u32) {
        ((token >> 56) as u8, (token >> 32) as u16, token as u32)
    }

    /// Application timer token.
    pub fn app(index: u16, payload: u32) -> u64 {
        encode(CLASS_APP, index, payload)
    }

    /// Hook timer token.
    pub fn hook(index: u16, payload: u32) -> u64 {
        encode(CLASS_HOOK, index, payload)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip() {
            let t = encode(CLASS_APP, 7, 0xdead_beef);
            assert_eq!(decode(t), (CLASS_APP, 7, 0xdead_beef));
            assert_eq!(decode(app(3, 9)), (CLASS_APP, 3, 9));
            assert_eq!(decode(hook(2, 1)), (CLASS_HOOK, 2, 1));
        }
    }
}

/// Construction parameters for a [`Host`].
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host name (diagnostics and reports).
    pub name: String,
    /// NIC hardware address.
    pub mac: MacAddr,
    /// Static IP configuration, if not DHCP-managed.
    pub static_ip: Option<(Ipv4Addr, Ipv4Cidr)>,
    /// Default gateway.
    pub gateway: Option<Ipv4Addr>,
    /// ARP acceptance policy.
    pub policy: ArpPolicy,
    /// Dynamic ARP entry lifetime.
    pub arp_timeout: Duration,
    /// DHCP client, for unconfigured hosts.
    pub dhcp_client: Option<DhcpClientConfig>,
    /// DHCP server (typically on the gateway).
    pub dhcp_server: Option<DhcpServerConfig>,
    /// Whether the host answers ICMP echo.
    pub respond_to_ping: bool,
    /// Whether the host announces itself with gratuitous ARP on
    /// configuration (boot or DHCP bind) — benign traffic monitors must
    /// not misread.
    pub announce_gratuitous: bool,
    /// ARP retransmit policy (defaults to the classic fixed schedule).
    pub resolver_retry: RetryPolicy,
}

impl HostConfig {
    /// A statically addressed host.
    pub fn static_ip(
        name: impl Into<String>,
        mac: MacAddr,
        ip: Ipv4Addr,
        subnet: Ipv4Cidr,
    ) -> Self {
        HostConfig {
            name: name.into(),
            mac,
            static_ip: Some((ip, subnet)),
            gateway: None,
            policy: ArpPolicy::default(),
            arp_timeout: Duration::from_secs(60),
            dhcp_client: None,
            dhcp_server: None,
            respond_to_ping: true,
            announce_gratuitous: false,
            resolver_retry: RetryPolicy::default(),
        }
    }

    /// A DHCP-managed host.
    pub fn dhcp(name: impl Into<String>, mac: MacAddr, client: DhcpClientConfig) -> Self {
        HostConfig {
            name: name.into(),
            mac,
            static_ip: None,
            gateway: None,
            policy: ArpPolicy::default(),
            arp_timeout: Duration::from_secs(60),
            dhcp_client: Some(client),
            dhcp_server: None,
            respond_to_ping: true,
            announce_gratuitous: false,
            resolver_retry: RetryPolicy::default(),
        }
    }

    /// Sets the ARP acceptance policy.
    pub fn with_policy(mut self, policy: ArpPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the default gateway.
    pub fn with_gateway(mut self, gateway: Ipv4Addr) -> Self {
        self.gateway = Some(gateway);
        self
    }

    /// Sets the dynamic ARP entry lifetime.
    pub fn with_arp_timeout(mut self, timeout: Duration) -> Self {
        self.arp_timeout = timeout;
        self
    }

    /// Attaches a DHCP server.
    pub fn with_dhcp_server(mut self, server: DhcpServerConfig) -> Self {
        self.dhcp_server = Some(server);
        self
    }

    /// Enables gratuitous-ARP self-announcement.
    pub fn with_gratuitous_announce(mut self) -> Self {
        self.announce_gratuitous = true;
        self
    }

    /// Sets the ARP retransmit policy.
    pub fn with_resolver_retry(mut self, policy: RetryPolicy) -> Self {
        self.resolver_retry = policy;
        self
    }
}

/// The mutable core every subsystem operates through.
#[derive(Debug)]
pub struct HostCore {
    pub(crate) name: String,
    pub(crate) iface: Rc<RefCell<Interface>>,
    pub(crate) policy: ArpPolicy,
    pub(crate) cache: Rc<RefCell<ArpCache>>,
    pub(crate) resolver: Resolver,
    pub(crate) stats: Rc<RefCell<HostStats>>,
    pub(crate) respond_to_ping: bool,
    pub(crate) announce_gratuitous: bool,
    pub(crate) tracer: Tracer,
}

impl HostCore {
    pub(crate) fn send_frame(&mut self, ctx: &mut DeviceCtx<'_>, frame: &EthernetFrame) {
        // The owned header fields and payload are emitted straight into a
        // recycled pool buffer: one in-place encode, zero intermediate Vecs.
        ctx.send(PortId(0), Frame::from_wire(frame));
    }

    pub(crate) fn send_arp_request(&mut self, ctx: &mut DeviceCtx<'_>, target_ip: Ipv4Addr) {
        let (mac, ip) = {
            let iface = self.iface.borrow();
            (iface.mac(), iface.ip().unwrap_or(Ipv4Addr::UNSPECIFIED))
        };
        let arp = ArpPacket::request(mac, ip, target_ip);
        self.stats.borrow_mut().arp_requests_sent += 1;
        ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, mac, EtherType::ARP, &arp));
    }

    pub(crate) fn maybe_announce(&mut self, ctx: &mut DeviceCtx<'_>) {
        if !self.announce_gratuitous {
            return;
        }
        let (mac, ip) = {
            let iface = self.iface.borrow();
            (iface.mac(), iface.ip())
        };
        if let Some(ip) = ip {
            let arp = ArpPacket::gratuitous(ArpOp::Request, mac, ip);
            self.stats.borrow_mut().arp_requests_sent += 1;
            ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, mac, EtherType::ARP, &arp));
        }
    }

    fn transmit_ipv4<P: WireEmit + ?Sized>(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        protocol: IpProtocol,
        payload: &P,
    ) {
        let (mac, src_ip) = {
            let iface = self.iface.borrow();
            (iface.mac(), iface.ip().unwrap_or(Ipv4Addr::UNSPECIFIED))
        };
        let pkt = Ipv4Emit::new(src_ip, dst_ip, protocol, payload);
        self.stats.borrow_mut().ipv4_sent += 1;
        ctx.send(PortId(0), eth_frame(dst_mac, mac, EtherType::Ipv4, &pkt));
    }

    /// Sends an IPv4 payload toward `dst`, resolving the next hop through
    /// ARP (queuing behind an outstanding resolution when necessary).
    pub(crate) fn send_ipv4(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        payload: Vec<u8>,
    ) {
        if dst.is_limited_broadcast() {
            self.transmit_ipv4(ctx, MacAddr::BROADCAST, dst, protocol, &payload[..]);
            return;
        }
        let next_hop = self.iface.borrow().next_hop(dst);
        let Some(next_hop) = next_hop else {
            self.stats.borrow_mut().ipv4_send_failures += 1;
            return;
        };
        let cached = self.cache.borrow().lookup(ctx.now(), next_hop);
        match cached {
            Some(mac) => self.transmit_ipv4(ctx, mac, dst, protocol, &payload[..]),
            None => {
                let fresh = self.resolver.enqueue(
                    ctx.now(),
                    next_hop,
                    PendingPacket { dst_ip: dst, protocol, payload },
                );
                if fresh {
                    self.send_arp_request(ctx, next_hop);
                    ctx.schedule_in(
                        self.resolver.first_delay(),
                        tokens::encode(tokens::CLASS_RESOLVER, 0, next_hop.to_u32()),
                    );
                }
            }
        }
    }

    pub(crate) fn send_udp_broadcast<P: WireEmit + ?Sized>(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        src_port: u16,
        dst_port: u16,
        payload: &P,
    ) {
        let src_ip = self.iface.borrow().ip().unwrap_or(Ipv4Addr::UNSPECIFIED);
        let dgram = UdpEmit::new(src_port, dst_port, src_ip, Ipv4Addr::BROADCAST, payload);
        self.transmit_ipv4(ctx, MacAddr::BROADCAST, Ipv4Addr::BROADCAST, IpProtocol::Udp, &dgram);
    }

    pub(crate) fn send_udp_to_mac<P: WireEmit + ?Sized>(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &P,
    ) {
        let src_ip = self.iface.borrow().ip().unwrap_or(Ipv4Addr::UNSPECIFIED);
        let dgram = UdpEmit::new(src_port, dst_port, src_ip, dst_ip, payload);
        self.transmit_ipv4(ctx, dst_mac, dst_ip, IpProtocol::Udp, &dgram);
    }

    /// Flushes packets queued behind the now-resolved `ip`.
    pub(crate) fn flush_pending(&mut self, ctx: &mut DeviceCtx<'_>, ip: Ipv4Addr, mac: MacAddr) {
        if let Some((packets, first_requested)) = self.resolver.complete(ip) {
            {
                let mut stats = self.stats.borrow_mut();
                stats.resolutions_completed += 1;
                stats.resolution_latency_total += ctx.now().saturating_since(first_requested);
            }
            self.tracer.observe(
                "host.resolution_latency_ns",
                ctx.now().saturating_since(first_requested).as_nanos() as u64,
            );
            for p in packets {
                self.transmit_ipv4(ctx, mac, p.dst_ip, p.protocol, &p.payload[..]);
            }
        }
    }
}

/// Shared inspection handle for a [`Host`].
#[derive(Debug, Clone)]
pub struct HostHandle {
    name: String,
    /// The live ARP cache.
    pub cache: Rc<RefCell<ArpCache>>,
    /// Live counters.
    pub stats: Rc<RefCell<HostStats>>,
    /// The live interface configuration.
    pub iface_ref: Rc<RefCell<Interface>>,
    /// DHCP client state, when the host runs one.
    pub dhcp_client: Option<Rc<RefCell<DhcpClientInfo>>>,
    /// DHCP server state, when the host runs one.
    pub dhcp_server: Option<Rc<RefCell<DhcpServerState>>>,
}

impl HostHandle {
    /// Host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A snapshot of the interface configuration.
    pub fn iface(&self) -> Interface {
        *self.iface_ref.borrow()
    }

    /// The hardware address.
    pub fn mac(&self) -> MacAddr {
        self.iface_ref.borrow().mac()
    }

    /// The current IP, if configured.
    pub fn ip(&self) -> Option<Ipv4Addr> {
        self.iface_ref.borrow().ip()
    }
}

/// A simulated end host.
pub struct Host {
    core: HostCore,
    hooks: Vec<Box<dyn HostHook>>,
    apps: Vec<Box<dyn App>>,
    dhcp_client: Option<DhcpClient>,
    dhcp_server: Option<DhcpServer>,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("name", &self.core.name)
            .field("hooks", &self.hooks.len())
            .field("apps", &self.apps.len())
            .finish()
    }
}

impl Host {
    /// Builds a host from its configuration; returns the device and a
    /// shared inspection handle.
    pub fn new(config: HostConfig) -> (Self, HostHandle) {
        let mut iface = Interface::unconfigured(config.mac);
        if let Some((ip, subnet)) = config.static_ip {
            iface.configure(ip, subnet, config.gateway);
        }
        let iface = Rc::new(RefCell::new(iface));
        let cache = Rc::new(RefCell::new(ArpCache::new(config.arp_timeout)));
        let stats = Rc::new(RefCell::new(HostStats::default()));
        let (dhcp_client, client_info) = match config.dhcp_client {
            Some(cfg) => {
                let (c, info) = DhcpClient::new(cfg);
                (Some(c), Some(info))
            }
            None => (None, None),
        };
        let (dhcp_server, server_state) = match config.dhcp_server {
            Some(cfg) => {
                let (s, state) = DhcpServer::new(cfg);
                (Some(s), Some(state))
            }
            None => (None, None),
        };
        let handle = HostHandle {
            name: config.name.clone(),
            cache: Rc::clone(&cache),
            stats: Rc::clone(&stats),
            iface_ref: Rc::clone(&iface),
            dhcp_client: client_info,
            dhcp_server: server_state,
        };
        (
            Host {
                core: HostCore {
                    name: config.name,
                    iface,
                    policy: config.policy,
                    cache,
                    resolver: Resolver::new(config.resolver_retry),
                    stats,
                    respond_to_ping: config.respond_to_ping,
                    announce_gratuitous: config.announce_gratuitous,
                    tracer: Tracer::disabled(),
                },
                hooks: Vec::new(),
                apps: Vec::new(),
                dhcp_client,
                dhcp_server,
            },
            handle,
        )
    }

    /// Installs an application workload.
    pub fn add_app(&mut self, app: Box<dyn App>) {
        self.apps.push(app);
    }

    /// Installs a host hook (scheme agent). Hooks run in installation
    /// order.
    pub fn add_hook(&mut self, hook: Box<dyn HostHook>) {
        self.hooks.push(hook);
    }

    /// Routes this host's resolver and ARP-cache transitions into
    /// `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.tracer = tracer;
    }

    /// The host's ARP policy.
    pub fn policy(&self) -> ArpPolicy {
        self.core.policy
    }

    fn handle_arp(
        core: &mut HostCore,
        apps: &mut [Box<dyn App>],
        ctx: &mut DeviceCtx<'_>,
        arp: &ArpPacket,
    ) {
        let _ = apps;
        let (my_mac, my_ip) = {
            let iface = core.iface.borrow();
            (iface.mac(), iface.ip())
        };
        if arp.sender_mac == my_mac {
            return; // our own chatter reflected by a hub
        }
        let is_reply = arp.op == ArpOp::Reply;
        let addressed_to_us = if is_reply {
            arp.target_mac == my_mac || (my_ip.is_some() && Some(arp.target_ip) == my_ip)
        } else {
            my_ip.is_some() && Some(arp.target_ip) == my_ip
        };
        let admit_ctx = AdmitContext {
            have_entry: core.cache.borrow().entry(arp.sender_ip).is_some(),
            outstanding_request: core.resolver.is_outstanding(arp.sender_ip),
            addressed_to_us,
            is_reply,
        };
        let verdict = core.policy.admit(arp, admit_ctx);
        let origin = if is_reply {
            if admit_ctx.outstanding_request {
                EntryOrigin::SolicitedReply
            } else {
                EntryOrigin::UnsolicitedReply
            }
        } else {
            EntryOrigin::Request
        };
        let learned = match verdict {
            CacheVerdict::CreateOrUpdate => core.cache.borrow_mut().insert_dynamic(
                ctx.now(),
                arp.sender_ip,
                arp.sender_mac,
                origin,
            ),
            CacheVerdict::UpdateOnly => {
                admit_ctx.have_entry
                    && core.cache.borrow_mut().insert_dynamic(
                        ctx.now(),
                        arp.sender_ip,
                        arp.sender_mac,
                        origin,
                    )
            }
            CacheVerdict::Ignore => false,
        };
        if learned {
            core.stats.borrow_mut().cache_writes += 1;
            let category =
                if admit_ctx.have_entry { "host.cache.update" } else { "host.cache.create" };
            // A frame that rewrote an ARP cache is forensic evidence
            // whether or not a scheme ever alerts on it: pin it so a
            // capture's timeline can always show the octets behind
            // every cache mutation.
            core.tracer.pin_current();
            core.tracer.count(category, 1);
            core.tracer.event(ctx.now().as_nanos(), category, || {
                (
                    core.name.clone(),
                    format!("ip={} mac={} origin={:?}", arp.sender_ip, arp.sender_mac, origin),
                )
            });
        } else if is_reply || addressed_to_us {
            core.stats.borrow_mut().policy_rejections += 1;
            core.tracer.count("host.policy.reject", 1);
            core.tracer.event(ctx.now().as_nanos(), "host.policy.reject", || {
                (
                    core.name.clone(),
                    format!(
                        "ip={} mac={} origin={:?} policy={:?}",
                        arp.sender_ip, arp.sender_mac, origin, core.policy
                    ),
                )
            });
        }
        if admit_ctx.outstanding_request && learned {
            core.flush_pending(ctx, arp.sender_ip, arp.sender_mac);
        }
        // Answer requests (including RFC 5227 probes) for our address.
        if !is_reply && my_ip.is_some() && Some(arp.target_ip) == my_ip {
            let reply = ArpPacket::reply_to(arp, my_mac);
            core.stats.borrow_mut().arp_replies_sent += 1;
            ctx.send(PortId(0), eth_frame(arp.sender_mac, my_mac, EtherType::ARP, &reply));
        }
    }

    fn handle_ipv4(
        core: &mut HostCore,
        apps: &mut [Box<dyn App>],
        dhcp_client: &mut Option<DhcpClient>,
        dhcp_server: &mut Option<DhcpServer>,
        ctx: &mut DeviceCtx<'_>,
        eth: &EthernetFrame,
    ) {
        let Ok(pkt) = Ipv4Packet::parse(&eth.payload) else {
            return;
        };
        let (my_mac, my_ip, subnet) = {
            let iface = core.iface.borrow();
            (iface.mac(), iface.ip(), iface.subnet())
        };
        let for_me = Some(pkt.dst) == my_ip;
        let broadcast = pkt.dst.is_limited_broadcast()
            || subnet.map(|s| s.broadcast() == pkt.dst).unwrap_or(false);
        if !for_me && !broadcast {
            return; // hosts are not routers
        }
        core.stats.borrow_mut().ipv4_received += 1;
        match pkt.protocol {
            IpProtocol::Icmp => {
                let Ok(icmp) = IcmpMessage::parse(&pkt.payload) else {
                    return;
                };
                match icmp.icmp_type {
                    IcmpType::EchoRequest if for_me && core.respond_to_ping => {
                        let reply = IcmpMessage::reply_to(&icmp);
                        // Reply along the reverse L2 path the request took.
                        let ip_reply =
                            Ipv4Emit::new(my_ip.unwrap(), pkt.src, IpProtocol::Icmp, &reply);
                        core.stats.borrow_mut().icmp_echoes_answered += 1;
                        core.stats.borrow_mut().ipv4_sent += 1;
                        ctx.send(PortId(0), eth_frame(eth.src, my_mac, EtherType::Ipv4, &ip_reply));
                    }
                    IcmpType::EchoReply if for_me => {
                        core.stats.borrow_mut().icmp_replies_received += 1;
                        for (i, app) in apps.iter_mut().enumerate() {
                            let mut api = HostApi { core, ctx, class: TimerClass::App(i as u16) };
                            app.on_icmp_reply(&mut api, pkt.src, icmp.sequence);
                        }
                    }
                    _ => {}
                }
            }
            IpProtocol::Udp => {
                let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) else {
                    return;
                };
                core.stats.borrow_mut().udp_delivered += 1;
                if let Some(client) = dhcp_client {
                    let mut api = HostApi { core, ctx, class: TimerClass::DhcpClient };
                    client.on_udp(&mut api, dgram.dst_port, &dgram.payload);
                }
                if let Some(server) = dhcp_server {
                    let mut api = HostApi { core, ctx, class: TimerClass::DhcpServer };
                    server.on_udp(&mut api, dgram.dst_port, &dgram.payload);
                }
                for (i, app) in apps.iter_mut().enumerate() {
                    let mut api = HostApi { core, ctx, class: TimerClass::App(i as u16) };
                    app.on_udp(&mut api, pkt.src, dgram.src_port, dgram.dst_port, &dgram.payload);
                }
            }
            _ => {}
        }
    }
}

impl Device for Host {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let Host { core, hooks, apps, dhcp_client, dhcp_server } = self;
        let sweep = (core.cache.borrow().timeout() / 2).max(Duration::from_secs(1));
        ctx.schedule_in(sweep, tokens::encode(tokens::CLASS_CACHE_SWEEP, 0, 0));
        core.maybe_announce(ctx);
        for (i, hook) in hooks.iter_mut().enumerate() {
            let mut api = HostApi { core, ctx, class: TimerClass::Hook(i as u16) };
            hook.on_start(&mut api);
        }
        for (i, app) in apps.iter_mut().enumerate() {
            let mut api = HostApi { core, ctx, class: TimerClass::App(i as u16) };
            app.on_start(&mut api);
        }
        if let Some(client) = dhcp_client {
            let mut api = HostApi { core, ctx, class: TimerClass::DhcpClient };
            client.on_start(&mut api);
        }
        if let Some(server) = dhcp_server {
            let mut api = HostApi { core, ctx, class: TimerClass::DhcpServer };
            server.on_start(&mut api);
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        let Host { core, hooks, apps, dhcp_client, dhcp_server } = self;
        let (class, index, payload) = tokens::decode(token);
        match class {
            tokens::CLASS_RESOLVER => {
                let ip = Ipv4Addr::from_u32(payload);
                match core.resolver.tick_retry(ip) {
                    Some(RetryTick::Retransmit { next_delay }) => {
                        core.stats.borrow_mut().arp_retransmissions += 1;
                        core.tracer.count("host.resolver.retransmit", 1);
                        core.tracer.event(ctx.now().as_nanos(), "host.resolver.retransmit", || {
                            (
                                core.name.clone(),
                                format!("ip={ip} next_delay_ns={}", next_delay.as_nanos()),
                            )
                        });
                        core.send_arp_request(ctx, ip);
                        ctx.schedule_in(next_delay, token);
                    }
                    Some(RetryTick::Exhausted { dropped }) => {
                        let mut stats = core.stats.borrow_mut();
                        stats.resolutions_failed += 1;
                        stats.ipv4_send_failures += dropped as u64;
                        drop(stats);
                        core.tracer.count("host.resolver.giveup", 1);
                        core.tracer.event(ctx.now().as_nanos(), "host.resolver.giveup", || {
                            (core.name.clone(), format!("ip={ip} dropped_packets={dropped}"))
                        });
                    }
                    None => {}
                }
            }
            tokens::CLASS_CACHE_SWEEP => {
                core.cache.borrow_mut().sweep(ctx.now());
                let sweep = (core.cache.borrow().timeout() / 2).max(Duration::from_secs(1));
                ctx.schedule_in(sweep, token);
            }
            tokens::CLASS_DHCP_CLIENT => {
                if let Some(client) = dhcp_client {
                    let mut api = HostApi { core, ctx, class: TimerClass::DhcpClient };
                    client.on_timer(&mut api, payload);
                }
            }
            tokens::CLASS_DHCP_SERVER => {
                if let Some(server) = dhcp_server {
                    let mut api = HostApi { core, ctx, class: TimerClass::DhcpServer };
                    server.on_timer(&mut api, payload);
                }
            }
            tokens::CLASS_APP => {
                if let Some(app) = apps.get_mut(usize::from(index)) {
                    let mut api = HostApi { core, ctx, class: TimerClass::App(index) };
                    app.on_timer(&mut api, payload);
                }
            }
            tokens::CLASS_HOOK => {
                if let Some(hook) = hooks.get_mut(usize::from(index)) {
                    let mut api = HostApi { core, ctx, class: TimerClass::Hook(index) };
                    hook.on_timer(&mut api, payload);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        let Host { core, hooks, apps, dhcp_client, dhcp_server } = self;
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return;
        };
        let my_mac = core.iface.borrow().mac();
        if eth.dst != my_mac && !eth.dst.is_broadcast() && !eth.dst.is_multicast() {
            return; // NIC filter: not for us
        }
        for (i, hook) in hooks.iter_mut().enumerate() {
            let mut api = HostApi { core, ctx, class: TimerClass::Hook(i as u16) };
            if hook.on_frame_rx(&mut api, &eth) == FrameVerdict::Consumed {
                return;
            }
        }
        match eth.ethertype {
            EtherType::ARP => {
                let Ok(arp) = ArpPacket::parse(&eth.payload) else {
                    return;
                };
                core.stats.borrow_mut().arp_received += 1;
                for (i, hook) in hooks.iter_mut().enumerate() {
                    let mut api = HostApi { core, ctx, class: TimerClass::Hook(i as u16) };
                    if hook.on_arp_rx(&mut api, &eth, &arp) == ArpVerdict::Drop {
                        core.stats.borrow_mut().hook_drops += 1;
                        return;
                    }
                }
                Host::handle_arp(core, apps, ctx, &arp);
            }
            EtherType::Ipv4 => {
                Host::handle_ipv4(core, apps, dhcp_client, dhcp_server, ctx, &eth);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{PingApp, UdpEchoServer};
    use arpshield_netsim::{SimTime, Simulator, Switch, SwitchConfig};

    fn cidr() -> Ipv4Cidr {
        Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)
    }

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    /// Builds a switched LAN with `n` static hosts 10.0.0.1..=n; returns
    /// (sim, handles). Host i is on switch port i-1.
    fn lan(n: u8, build: impl Fn(u8, HostConfig) -> HostConfig) -> (Simulator, Vec<HostHandle>) {
        let mut sim = Simulator::new(7);
        let (sw, _) =
            Switch::new("sw", SwitchConfig { ports: usize::from(n) + 2, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let mut handles = Vec::new();
        for i in 1..=n {
            let config = build(
                i,
                HostConfig::static_ip(
                    format!("h{i}"),
                    MacAddr::from_index(u32::from(i)),
                    ip(i),
                    cidr(),
                ),
            );
            let (host, handle) = Host::new(config);
            let id = sim.add_device(Box::new(host));
            sim.connect(id, PortId(0), sw, PortId(u16::from(i) - 1), Duration::from_micros(5))
                .unwrap();
            handles.push(handle);
        }
        (sim, handles)
    }

    fn lan_with_hosts(
        n: u8,
        mut mutate: impl FnMut(u8, &mut Host),
    ) -> (Simulator, Vec<HostHandle>) {
        let mut sim = Simulator::new(7);
        let (sw, _) =
            Switch::new("sw", SwitchConfig { ports: usize::from(n) + 2, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let mut handles = Vec::new();
        for i in 1..=n {
            let config = HostConfig::static_ip(
                format!("h{i}"),
                MacAddr::from_index(u32::from(i)),
                ip(i),
                cidr(),
            );
            let (mut host, handle) = Host::new(config);
            mutate(i, &mut host);
            let id = sim.add_device(Box::new(host));
            sim.connect(id, PortId(0), sw, PortId(u16::from(i) - 1), Duration::from_micros(5))
                .unwrap();
            handles.push(handle);
        }
        (sim, handles)
    }

    #[test]
    fn ping_resolves_and_round_trips() {
        let mut sim = Simulator::new(1);
        let (sw, _) = Switch::new("sw", SwitchConfig::default());
        let sw = sim.add_device(Box::new(sw));
        let (mut alice, alice_h) =
            Host::new(HostConfig::static_ip("alice", MacAddr::from_index(1), ip(1), cidr()));
        let (ping, ping_stats) = PingApp::new(ip(2), Duration::from_millis(100));
        alice.add_app(Box::new(ping));
        let (bob, bob_h) =
            Host::new(HostConfig::static_ip("bob", MacAddr::from_index(2), ip(2), cidr()));
        let a = sim.add_device(Box::new(alice));
        let b = sim.add_device(Box::new(bob));
        sim.connect(a, PortId(0), sw, PortId(0), Duration::from_micros(5)).unwrap();
        sim.connect(b, PortId(0), sw, PortId(1), Duration::from_micros(5)).unwrap();
        sim.run_until(SimTime::from_secs(2));

        let stats = ping_stats.borrow();
        assert!(stats.sent >= 15, "sent {}", stats.sent);
        assert_eq!(stats.sent, stats.received, "all pings should be answered");
        assert!(stats.mean_rtt().unwrap() < Duration::from_millis(1));
        // ARP resolved once, cached thereafter.
        assert_eq!(alice_h.stats.borrow().resolutions_completed, 1);
        assert_eq!(
            alice_h.cache.borrow().lookup(SimTime::from_secs(2), ip(2)),
            Some(MacAddr::from_index(2))
        );
        // Bob learned alice from her request (addressed to him).
        assert_eq!(
            bob_h.cache.borrow().lookup(SimTime::from_secs(2), ip(1)),
            Some(MacAddr::from_index(1))
        );
        assert!(bob_h.stats.borrow().icmp_echoes_answered >= 15);
    }

    #[test]
    fn resolution_failure_gives_up_after_retries() {
        // Ping a dead address: requests retransmit, then the queue drops.
        let (mut sim, handles) = lan_with_hosts(1, |_, host| {
            let (ping, _) = PingApp::new(ip(99), Duration::from_millis(500));
            host.add_app(Box::new(ping));
        });
        sim.run_until(SimTime::from_secs(10));
        let stats = handles[0].stats.borrow();
        assert!(stats.resolutions_failed >= 1);
        assert!(stats.ipv4_send_failures >= 1);
        assert!(
            stats.arp_requests_sent >= 4,
            "initial + 3 retries, got {}",
            stats.arp_requests_sent
        );
        assert_eq!(stats.resolutions_completed, 0);
    }

    #[test]
    fn exponential_backoff_spaces_retransmissions_and_counts_give_up() {
        // One datagram toward a dead address at t = 100 ms under an
        // exponential policy: the request goes out at 100 ms, retries
        // follow after 0.5 s, 1 s, 2 s, 2 s (capped), then give-up at
        // 7.6 s. Five requests on the wire, four of them retries, one
        // abandoned resolution.
        struct OneShot;
        impl App for OneShot {
            fn name(&self) -> &str {
                "one-shot"
            }
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.schedule(Duration::from_millis(100), 0);
            }
            fn on_timer(&mut self, api: &mut HostApi<'_, '_>, _: u32) {
                api.send_udp(Ipv4Addr::new(10, 0, 0, 99), 5555, 7000, b"void".to_vec());
            }
        }
        let policy =
            RetryPolicy::exponential(Duration::from_millis(500), 4, Duration::from_secs(2));
        let mut sim = Simulator::new(9);
        let (sw, _) = Switch::new("sw", SwitchConfig::default());
        let sw = sim.add_device(Box::new(sw));
        let (mut host, handle) = Host::new(
            HostConfig::static_ip("h", MacAddr::from_index(1), ip(1), cidr())
                .with_resolver_retry(policy),
        );
        host.add_app(Box::new(OneShot));
        let id = sim.add_device(Box::new(host));
        sim.connect(id, PortId(0), sw, PortId(0), Duration::from_micros(5)).unwrap();

        // Before the first backoff interval only the initial request is out.
        sim.run_until(SimTime::from_millis(550));
        assert_eq!(handle.stats.borrow().arp_requests_sent, 1);
        // 0.6 s and 1.6 s marks: first and second retransmissions.
        sim.run_until(SimTime::from_millis(1100));
        assert_eq!(handle.stats.borrow().arp_retransmissions, 1);
        sim.run_until(SimTime::from_millis(2100));
        assert_eq!(handle.stats.borrow().arp_retransmissions, 2);
        // Run out the schedule: 3.6 s and 5.6 s retries, 7.6 s give-up.
        sim.run_until(SimTime::from_secs(10));
        let stats = handle.stats.borrow();
        assert_eq!(stats.arp_retransmissions, 4);
        assert_eq!(stats.arp_requests_sent, 5);
        assert_eq!(stats.resolutions_failed, 1, "give-up must be counted once");
        assert_eq!(stats.ipv4_send_failures, 1, "the queued datagram was dropped");
    }

    #[test]
    fn udp_echo_round_trip() {
        let (mut sim, handles) = lan_with_hosts(2, |i, host| {
            if i == 2 {
                host.add_app(Box::new(UdpEchoServer::new(7000)));
            } else {
                let (ping, _) = PingApp::new(ip(2), Duration::from_secs(10)); // keep cache warm
                host.add_app(Box::new(ping));
                struct Sender {
                    got: u64,
                }
                impl App for Sender {
                    fn name(&self) -> &str {
                        "sender"
                    }
                    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                        api.schedule(Duration::from_millis(50), 0);
                    }
                    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, _: u32) {
                        api.send_udp(Ipv4Addr::new(10, 0, 0, 2), 5555, 7000, b"hello".to_vec());
                    }
                    fn on_udp(
                        &mut self,
                        _api: &mut HostApi<'_, '_>,
                        _src: Ipv4Addr,
                        _sp: u16,
                        dp: u16,
                        payload: &[u8],
                    ) {
                        if dp == 5555 && payload == b"hello" {
                            self.got += 1;
                        }
                    }
                }
                host.add_app(Box::new(Sender { got: 0 }));
            }
        });
        sim.run_until(SimTime::from_secs(1));
        // Echo delivered back: sender host received one UDP datagram.
        assert!(handles[0].stats.borrow().udp_delivered >= 1);
        assert!(handles[1].stats.borrow().udp_delivered >= 1);
    }

    #[test]
    fn static_only_policy_never_learns() {
        let (mut sim, handles) =
            lan(3, |i, cfg| if i == 1 { cfg.with_policy(ArpPolicy::StaticOnly) } else { cfg });
        // Host 2 pings host 1; host 1 (static-only) must not learn 2's
        // binding even though the request is addressed to it.
        drop(handles[1].cache.borrow_mut()); // sanity: handle works
        let (mut sim2, handles2) = lan_with_hosts(3, |i, host| {
            if i == 2 {
                let (ping, _) = PingApp::new(ip(1), Duration::from_millis(200));
                host.add_app(Box::new(ping));
            }
            let _ = i;
        });
        // Apply static-only policy by rebuilding: simpler — host 1 policy
        // default Standard here; use first lan() for the actual assertion.
        sim2.run_until(SimTime::from_millis(1));
        drop(handles2);
        sim.run_until(SimTime::from_secs(1));
        assert!(handles[0].cache.borrow().is_empty());
    }

    #[test]
    fn static_entry_enables_resolution_without_arp() {
        let (mut sim, handles) = lan_with_hosts(2, |i, host| {
            if i == 1 {
                let (ping, _) = PingApp::new(ip(2), Duration::from_millis(100));
                host.add_app(Box::new(ping));
            }
        });
        // Seed a static entry before the run.
        handles[0].cache.borrow_mut().insert_static(SimTime::ZERO, ip(2), MacAddr::from_index(2));
        sim.run_until(SimTime::from_secs(1));
        let stats = handles[0].stats.borrow();
        assert_eq!(stats.arp_requests_sent, 0, "static entry must suppress ARP");
        assert!(stats.icmp_replies_received > 0);
    }

    #[test]
    fn gratuitous_announce_updates_peers_with_entries() {
        // h2 knows h1; h1 re-announces with gratuitous ARP after its NIC
        // "changes" — peers holding an entry update it (Standard policy).
        let (mut sim, handles) = lan_with_hosts(2, |i, host| {
            if i == 2 {
                let (ping, _) = PingApp::new(ip(1), Duration::from_millis(100));
                host.add_app(Box::new(ping));
            }
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            handles[1].cache.borrow().lookup(SimTime::from_secs(1), ip(1)),
            Some(MacAddr::from_index(1))
        );
        let origin = handles[1].cache.borrow().entry(ip(1)).unwrap().origin;
        assert_eq!(origin, EntryOrigin::SolicitedReply);
    }

    #[test]
    fn dhcp_full_acquisition() {
        let mut sim = Simulator::new(3);
        let (sw, _) = Switch::new("sw", SwitchConfig::default());
        let sw = sim.add_device(Box::new(sw));
        let gw_ip = Ipv4Addr::new(192, 168, 88, 1);
        let server_cfg = DhcpServerConfig::home_router(Ipv4Addr::new(192, 168, 88, 100), 8, gw_ip);
        let (gateway, gw_h) = Host::new(
            HostConfig::static_ip("gw", MacAddr::from_index(100), gw_ip, Ipv4Cidr::new(gw_ip, 24))
                .with_dhcp_server(server_cfg),
        );
        let (client, client_h) = Host::new(HostConfig::dhcp(
            "laptop",
            MacAddr::from_index(1),
            DhcpClientConfig::default(),
        ));
        let g = sim.add_device(Box::new(gateway));
        let c = sim.add_device(Box::new(client));
        sim.connect(g, PortId(0), sw, PortId(0), Duration::from_micros(5)).unwrap();
        sim.connect(c, PortId(0), sw, PortId(1), Duration::from_micros(5)).unwrap();
        sim.run_until(SimTime::from_secs(5));

        let info = client_h.dhcp_client.as_ref().unwrap().borrow().clone();
        assert_eq!(info.acquisitions, 1);
        let (bound_ip, _) = info.bound.unwrap();
        assert_eq!(bound_ip, Ipv4Addr::new(192, 168, 88, 100));
        assert_eq!(client_h.ip(), Some(bound_ip));
        assert_eq!(client_h.iface().gateway(), Some(gw_ip));
        let server = gw_h.dhcp_server.as_ref().unwrap().borrow().offers_sent;
        assert_eq!(server, 1);
    }

    #[test]
    fn dhcp_pool_exhaustion() {
        let mut sim = Simulator::new(4);
        let (sw, _) = Switch::new("sw", SwitchConfig { ports: 8, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let gw_ip = Ipv4Addr::new(192, 168, 88, 1);
        // Pool of 2 addresses, 3 clients: one starves.
        let server_cfg = DhcpServerConfig::home_router(Ipv4Addr::new(192, 168, 88, 100), 2, gw_ip);
        let (gateway, gw_h) = Host::new(
            HostConfig::static_ip("gw", MacAddr::from_index(100), gw_ip, Ipv4Cidr::new(gw_ip, 24))
                .with_dhcp_server(server_cfg),
        );
        let g = sim.add_device(Box::new(gateway));
        sim.connect(g, PortId(0), sw, PortId(0), Duration::from_micros(5)).unwrap();
        let mut client_handles = Vec::new();
        for i in 1..=3u16 {
            let (client, h) = Host::new(HostConfig::dhcp(
                format!("c{i}"),
                MacAddr::from_index(u32::from(i)),
                DhcpClientConfig::default(),
            ));
            let c = sim.add_device(Box::new(client));
            sim.connect(c, PortId(0), sw, PortId(i), Duration::from_micros(5)).unwrap();
            client_handles.push(h);
        }
        sim.run_until(SimTime::from_secs(10));
        let bound = client_handles
            .iter()
            .filter(|h| h.dhcp_client.as_ref().unwrap().borrow().bound.is_some())
            .count();
        assert_eq!(bound, 2, "only pool_size clients can bind");
        assert!(gw_h.dhcp_server.as_ref().unwrap().borrow().exhaustion_events > 0);
    }

    #[test]
    fn dhcp_lease_churn_releases_and_reacquires() {
        let mut sim = Simulator::new(5);
        let (sw, _) = Switch::new("sw", SwitchConfig::default());
        let sw = sim.add_device(Box::new(sw));
        let gw_ip = Ipv4Addr::new(192, 168, 88, 1);
        let server_cfg = DhcpServerConfig::home_router(Ipv4Addr::new(192, 168, 88, 100), 4, gw_ip);
        let (gateway, _gw_h) = Host::new(
            HostConfig::static_ip("gw", MacAddr::from_index(100), gw_ip, Ipv4Cidr::new(gw_ip, 24))
                .with_dhcp_server(server_cfg),
        );
        let client_cfg = DhcpClientConfig {
            lease_hold: Some(Duration::from_secs(5)),
            ..DhcpClientConfig::default()
        };
        let (client, client_h) =
            Host::new(HostConfig::dhcp("roamer", MacAddr::from_index(1), client_cfg));
        let g = sim.add_device(Box::new(gateway));
        let c = sim.add_device(Box::new(client));
        sim.connect(g, PortId(0), sw, PortId(0), Duration::from_micros(5)).unwrap();
        sim.connect(c, PortId(0), sw, PortId(1), Duration::from_micros(5)).unwrap();
        sim.run_until(SimTime::from_secs(30));
        let info = client_h.dhcp_client.as_ref().unwrap().borrow().clone();
        assert!(info.acquisitions >= 3, "expected churn, got {} acquisitions", info.acquisitions);
    }

    #[test]
    fn hook_can_drop_arp() {
        struct DropAllArp;
        impl HostHook for DropAllArp {
            fn name(&self) -> &str {
                "drop-all"
            }
            fn on_arp_rx(
                &mut self,
                _api: &mut HostApi<'_, '_>,
                _eth: &EthernetFrame,
                _arp: &ArpPacket,
            ) -> ArpVerdict {
                ArpVerdict::Drop
            }
        }
        let (mut sim, handles) = lan_with_hosts(2, |i, host| {
            if i == 1 {
                host.add_hook(Box::new(DropAllArp));
            } else {
                let (ping, _) = PingApp::new(ip(1), Duration::from_millis(100));
                host.add_app(Box::new(ping));
            }
        });
        sim.run_until(SimTime::from_secs(2));
        // Host 1 never learned or answered: host 2's pings all failed.
        assert!(handles[0].cache.borrow().is_empty());
        assert!(handles[0].stats.borrow().hook_drops > 0);
        assert_eq!(handles[0].stats.borrow().arp_replies_sent, 0);
        assert_eq!(handles[1].stats.borrow().icmp_replies_received, 0);
    }

    #[test]
    fn per_host_counters_track_arp_traffic() {
        let (mut sim, handles) = lan_with_hosts(2, |i, host| {
            if i == 1 {
                let (ping, _) = PingApp::new(ip(2), Duration::from_millis(250));
                host.add_app(Box::new(ping));
            }
        });
        sim.run_until(SimTime::from_secs(2));
        let h1 = handles[0].stats.borrow();
        let h2 = handles[1].stats.borrow();
        assert_eq!(h1.arp_requests_sent, 1);
        assert_eq!(h2.arp_replies_sent, 1);
        assert!(h1.mean_resolution_latency().unwrap() > Duration::ZERO);
    }
}
