//! Simulated end-host network stacks.
//!
//! A [`Host`] is a single-NIC station attached to the simulated LAN. It
//! owns an ARP cache with a pluggable acceptance [`ArpPolicy`] (the axis of
//! the paper's attack-susceptibility matrix), an IPv4 send/receive path
//! with a pending-resolution queue, a built-in ICMP echo responder, a DHCP
//! client and server, application workloads ([`apps`]), and hook points
//! ([`HostHook`]) through which host-resident defence schemes (kernel
//! policies, S-ARP agents) intercept ARP processing.
//!
//! All mutable state that experiments need to observe afterwards — the ARP
//! cache, counters — is shared through a [`HostHandle`], since the
//! simulator owns devices as trait objects.
//!
//! # Example
//!
//! ```rust
//! use arpshield_host::{Host, HostConfig, ArpPolicy};
//! use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
//!
//! let config = HostConfig::static_ip(
//!     "alice",
//!     MacAddr::from_index(1),
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24),
//! ).with_policy(ArpPolicy::Standard);
//! let (host, handle) = Host::new(config);
//! assert_eq!(handle.iface().ip(), Some(Ipv4Addr::new(10, 0, 0, 1)));
//! # let _ = host;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod arp;
pub mod dhcp;
mod hooks;
mod iface;
mod stack;
mod stats;

pub use arp::{ArpCache, ArpEntry, ArpPolicy, CacheVerdict, EntryOrigin, RetryPolicy};
pub use hooks::{ArpVerdict, FrameVerdict, HostApi, HostHook};
pub use iface::Interface;
pub use stack::{tokens, Host, HostConfig, HostCore, HostHandle};
pub use stats::HostStats;
