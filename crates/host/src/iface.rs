//! The host's single network interface.

use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};

/// Layer-2/3 configuration of a host NIC.
///
/// The IP configuration is optional because DHCP-managed hosts boot
/// unconfigured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interface {
    mac: MacAddr,
    ip: Option<Ipv4Addr>,
    subnet: Option<Ipv4Cidr>,
    gateway: Option<Ipv4Addr>,
}

impl Interface {
    /// Creates an unconfigured interface (MAC only).
    pub fn unconfigured(mac: MacAddr) -> Self {
        Interface { mac, ip: None, subnet: None, gateway: None }
    }

    /// Creates a statically configured interface.
    pub fn with_static(mac: MacAddr, ip: Ipv4Addr, subnet: Ipv4Cidr) -> Self {
        Interface { mac, ip: Some(ip), subnet: Some(subnet), gateway: None }
    }

    /// The hardware address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The configured IP, if any.
    pub fn ip(&self) -> Option<Ipv4Addr> {
        self.ip
    }

    /// The configured subnet, if any.
    pub fn subnet(&self) -> Option<Ipv4Cidr> {
        self.subnet
    }

    /// The default gateway, if any.
    pub fn gateway(&self) -> Option<Ipv4Addr> {
        self.gateway
    }

    /// Applies an IP configuration (static setup or DHCP bind).
    pub fn configure(&mut self, ip: Ipv4Addr, subnet: Ipv4Cidr, gateway: Option<Ipv4Addr>) {
        self.ip = Some(ip);
        self.subnet = Some(subnet);
        self.gateway = gateway;
    }

    /// Drops the IP configuration (DHCP release / link reset).
    pub fn deconfigure(&mut self) {
        self.ip = None;
        self.subnet = None;
        self.gateway = None;
    }

    /// Changes the hardware address (NIC replacement scenarios).
    pub fn set_mac(&mut self, mac: MacAddr) {
        self.mac = mac;
    }

    /// True when `dst` is directly reachable on the local subnet (or we
    /// have no subnet information, in which case we must try locally).
    pub fn is_local(&self, dst: Ipv4Addr) -> bool {
        match self.subnet {
            Some(net) => net.contains(dst),
            None => true,
        }
    }

    /// The next hop toward `dst`: `dst` itself when local, else the
    /// gateway (if configured).
    pub fn next_hop(&self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        if self.is_local(dst) {
            Some(dst)
        } else {
            self.gateway
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface() -> Interface {
        Interface::with_static(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24),
        )
    }

    #[test]
    fn static_configuration() {
        let i = iface();
        assert_eq!(i.ip(), Some(Ipv4Addr::new(10, 0, 0, 5)));
        assert!(i.is_local(Ipv4Addr::new(10, 0, 0, 200)));
        assert!(!i.is_local(Ipv4Addr::new(10, 0, 1, 1)));
    }

    #[test]
    fn next_hop_routes_via_gateway() {
        let mut i = iface();
        assert_eq!(i.next_hop(Ipv4Addr::new(10, 0, 0, 9)), Some(Ipv4Addr::new(10, 0, 0, 9)));
        assert_eq!(i.next_hop(Ipv4Addr::new(8, 8, 8, 8)), None); // no gateway
        i.configure(
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24),
            Some(Ipv4Addr::new(10, 0, 0, 1)),
        );
        assert_eq!(i.next_hop(Ipv4Addr::new(8, 8, 8, 8)), Some(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn deconfigure_clears_l3() {
        let mut i = iface();
        i.deconfigure();
        assert_eq!(i.ip(), None);
        assert_eq!(i.subnet(), None);
        // With no subnet info, everything is attempted locally.
        assert!(i.is_local(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn unconfigured_boot_state() {
        let i = Interface::unconfigured(MacAddr::from_index(7));
        assert_eq!(i.mac(), MacAddr::from_index(7));
        assert_eq!(i.ip(), None);
    }

    #[test]
    fn mac_can_change() {
        let mut i = iface();
        i.set_mac(MacAddr::from_index(42));
        assert_eq!(i.mac(), MacAddr::from_index(42));
    }
}
