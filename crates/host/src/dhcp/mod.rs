//! DHCP client and server subsystems.

mod client;
mod server;

pub use client::{DhcpClient, DhcpClientConfig, DhcpClientInfo};
pub use server::{DhcpServer, DhcpServerConfig, DhcpServerState, Lease};
