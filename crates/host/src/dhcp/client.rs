//! The DHCP client state machine.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_netsim::SimTime;
use arpshield_packet::{
    DhcpMessage, DhcpMessageType, Ipv4Addr, Ipv4Cidr, DHCP_CLIENT_PORT, DHCP_SERVER_PORT,
};

use crate::hooks::HostApi;

/// DHCP client behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct DhcpClientConfig {
    /// Delay before the first DISCOVER (staggers fleet boots).
    pub start_delay: Duration,
    /// Retry interval while discovering/requesting.
    pub retry_interval: Duration,
    /// If set, the client voluntarily RELEASEs its lease after holding it
    /// this long and re-acquires from scratch — the lease-churn workload
    /// behind the false-positive experiments.
    pub lease_hold: Option<Duration>,
}

impl Default for DhcpClientConfig {
    fn default() -> Self {
        DhcpClientConfig {
            start_delay: Duration::from_millis(100),
            retry_interval: Duration::from_secs(2),
            lease_hold: None,
        }
    }
}

/// Observable client state, shared with experiments.
#[derive(Debug, Default, Clone)]
pub struct DhcpClientInfo {
    /// Currently bound address and when it was acquired.
    pub bound: Option<(Ipv4Addr, SimTime)>,
    /// Leases successfully acquired over the run.
    pub acquisitions: u64,
    /// NAKs received.
    pub naks: u64,
    /// Discovers sent (including retries).
    pub discovers_sent: u64,
    /// Times an acquisition attempt timed out with no usable offer.
    pub timeouts: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Init,
    Selecting { xid: u32 },
    Requesting { xid: u32, offered: Ipv4Addr, server: Ipv4Addr },
    Bound { server: Ipv4Addr, addr: Ipv4Addr },
}

// Timer payloads.
const TICK_START: u32 = 0;
const TICK_RETRY: u32 = 1;
const TICK_RENEW: u32 = 2;
const TICK_CHURN: u32 = 3;

/// A DHCP client bound to one host.
#[derive(Debug)]
pub struct DhcpClient {
    config: DhcpClientConfig,
    state: State,
    info: Rc<RefCell<DhcpClientInfo>>,
}

impl DhcpClient {
    /// Creates a client and a shared handle onto its observable state.
    pub fn new(config: DhcpClientConfig) -> (Self, Rc<RefCell<DhcpClientInfo>>) {
        let info = Rc::new(RefCell::new(DhcpClientInfo::default()));
        (DhcpClient { config, state: State::Init, info: Rc::clone(&info) }, info)
    }

    pub(crate) fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.schedule(self.config.start_delay, TICK_START);
    }

    fn send_discover(&mut self, api: &mut HostApi<'_, '_>) {
        let xid = api.rand_u64() as u32;
        self.state = State::Selecting { xid };
        let msg = DhcpMessage::discover(xid, api.mac());
        self.info.borrow_mut().discovers_sent += 1;
        self.broadcast(api, &msg);
        api.schedule(self.config.retry_interval, TICK_RETRY);
    }

    fn broadcast(&self, api: &mut HostApi<'_, '_>, msg: &DhcpMessage) {
        api.core.stats.borrow_mut().dhcp_sent += 1;
        api.core.send_udp_broadcast(api.ctx, DHCP_CLIENT_PORT, DHCP_SERVER_PORT, msg);
    }

    pub(crate) fn on_timer(&mut self, api: &mut HostApi<'_, '_>, payload: u32) {
        match (payload, self.state) {
            (TICK_START, State::Init) => self.send_discover(api),
            (TICK_RETRY, State::Selecting { .. }) => {
                self.info.borrow_mut().timeouts += 1;
                self.send_discover(api);
            }
            (TICK_RETRY, State::Requesting { .. }) => {
                // Offer went stale; start over.
                self.info.borrow_mut().timeouts += 1;
                self.state = State::Init;
                self.send_discover(api);
            }
            (TICK_RENEW, State::Bound { server, addr }) => {
                let msg = DhcpMessage::request(api.rand_u64() as u32, api.mac(), addr, server);
                self.broadcast(api, &msg);
                api.schedule(self.config.retry_interval, TICK_RETRY);
                self.state = State::Requesting { xid: msg.xid, offered: addr, server };
            }
            (TICK_CHURN, State::Bound { server, addr }) => {
                let msg = DhcpMessage::release(api.rand_u64() as u32, api.mac(), addr, server);
                self.broadcast(api, &msg);
                api.core.iface.borrow_mut().deconfigure();
                self.info.borrow_mut().bound = None;
                self.state = State::Init;
                // Rest briefly, then rejoin — as a laptop leaving and
                // re-entering the office would.
                api.schedule(Duration::from_secs(1), TICK_START);
            }
            _ => {} // stale timer for a state we already left
        }
    }

    pub(crate) fn on_udp(&mut self, api: &mut HostApi<'_, '_>, dst_port: u16, payload: &[u8]) {
        if dst_port != DHCP_CLIENT_PORT {
            return;
        }
        let Ok(msg) = DhcpMessage::parse(payload) else {
            return;
        };
        if msg.chaddr != api.mac() {
            return; // broadcast replies addressed to another client
        }
        api.core.stats.borrow_mut().dhcp_received += 1;
        match (msg.message_type(), self.state) {
            (Some(DhcpMessageType::Offer), State::Selecting { xid }) if msg.xid == xid => {
                let Some(server) = msg.server_id() else { return };
                let offered = msg.yiaddr;
                let req = DhcpMessage::request(xid, api.mac(), offered, server);
                self.broadcast(api, &req);
                self.state = State::Requesting { xid, offered, server };
            }
            (Some(DhcpMessageType::Ack), State::Requesting { xid, offered, server })
                if msg.xid == xid =>
            {
                let addr = if msg.yiaddr.is_unspecified() { offered } else { msg.yiaddr };
                let mask = msg
                    .options
                    .iter()
                    .find_map(|o| match o {
                        arpshield_packet::DhcpOption::SubnetMask(m) => Some(*m),
                        _ => None,
                    })
                    .unwrap_or(Ipv4Addr::new(255, 255, 255, 0));
                let prefix = mask.to_u32().count_ones() as u8;
                api.core.iface.borrow_mut().configure(
                    addr,
                    Ipv4Cidr::new(addr, prefix),
                    msg.router(),
                );
                let lease = Duration::from_secs(u64::from(msg.lease_time().unwrap_or(600)));
                {
                    let mut info = self.info.borrow_mut();
                    info.bound = Some((addr, api.now()));
                    info.acquisitions += 1;
                }
                // Real clients announce the fresh binding with gratuitous
                // ARP (when the host enables announcements).
                api.core.maybe_announce(api.ctx);
                self.state = State::Bound { server, addr };
                api.schedule(lease / 2, TICK_RENEW);
                if let Some(hold) = self.config.lease_hold {
                    api.schedule(hold, TICK_CHURN);
                }
            }
            (Some(DhcpMessageType::Nak), State::Requesting { xid, .. }) if msg.xid == xid => {
                self.info.borrow_mut().naks += 1;
                self.state = State::Init;
                api.schedule(self.config.retry_interval, TICK_START);
            }
            _ => {}
        }
    }
}

// Behavioural tests for the client live in `stack.rs` and the dhcp
// integration tests, where a server and a LAN exist.
