//! The DHCP server subsystem: pool allocation, leases, expiry — and the
//! exhaustibility DHCP starvation attacks.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use arpshield_netsim::SimTime;
use arpshield_packet::{
    DhcpMessage, DhcpMessageType, Ipv4Addr, MacAddr, DHCP_CLIENT_PORT, DHCP_SERVER_PORT,
};

use crate::hooks::HostApi;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct DhcpServerConfig {
    /// First address of the pool.
    pub pool_start: Ipv4Addr,
    /// Number of addresses in the pool.
    pub pool_size: u32,
    /// Lease duration handed to clients.
    pub lease: Duration,
    /// Subnet mask for replies.
    pub mask: Ipv4Addr,
    /// Default router offered (typically the server/gateway itself).
    pub router: Ipv4Addr,
    /// How long an un-acked OFFER reserves its address.
    pub offer_hold: Duration,
}

impl DhcpServerConfig {
    /// A typical home-router setup: pool of `size` addresses starting at
    /// `start`, 10-minute leases.
    pub fn home_router(start: Ipv4Addr, size: u32, router: Ipv4Addr) -> Self {
        DhcpServerConfig {
            pool_start: start,
            pool_size: size,
            lease: Duration::from_secs(600),
            mask: Ipv4Addr::new(255, 255, 255, 0),
            router,
            offer_hold: Duration::from_secs(10),
        }
    }
}

/// One active lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The leased address.
    pub ip: Ipv4Addr,
    /// When the lease lapses.
    pub expires: SimTime,
}

/// Observable server state shared with experiments (pool pressure is the
/// DHCP-starvation metric).
#[derive(Debug, Default)]
pub struct DhcpServerState {
    /// Active leases by client hardware address.
    pub leases: HashMap<MacAddr, Lease>,
    /// Reverse index of leased addresses.
    pub by_ip: HashMap<Ipv4Addr, MacAddr>,
    /// Outstanding offers by client hardware address.
    pub offers: HashMap<MacAddr, Lease>,
    /// OFFERs sent.
    pub offers_sent: u64,
    /// ACKs sent.
    pub acks_sent: u64,
    /// NAKs sent.
    pub naks_sent: u64,
    /// DISCOVERs that found the pool empty.
    pub exhaustion_events: u64,
}

impl DhcpServerState {
    /// Addresses currently taken (leased or offered).
    pub fn taken(&self) -> usize {
        let offered_not_leased =
            self.offers.values().filter(|o| !self.by_ip.contains_key(&o.ip)).count();
        self.by_ip.len() + offered_not_leased
    }
}

const TICK_SWEEP: u32 = 0;
const SWEEP_EVERY: Duration = Duration::from_secs(5);

/// A DHCP server bound to one host (typically the gateway).
#[derive(Debug)]
pub struct DhcpServer {
    config: DhcpServerConfig,
    state: Rc<RefCell<DhcpServerState>>,
}

impl DhcpServer {
    /// Creates a server and a shared handle onto its state.
    pub fn new(config: DhcpServerConfig) -> (Self, Rc<RefCell<DhcpServerState>>) {
        let state = Rc::new(RefCell::new(DhcpServerState::default()));
        (DhcpServer { config, state: Rc::clone(&state) }, state)
    }

    /// Pool addresses not currently leased or offered.
    pub fn pool_free(&self) -> u32 {
        self.config.pool_size.saturating_sub(self.state.borrow().taken() as u32)
    }

    pub(crate) fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.schedule(SWEEP_EVERY, TICK_SWEEP);
    }

    pub(crate) fn on_timer(&mut self, api: &mut HostApi<'_, '_>, payload: u32) {
        if payload != TICK_SWEEP {
            return;
        }
        let now = api.now();
        {
            let mut st = self.state.borrow_mut();
            let expired: Vec<MacAddr> =
                st.leases.iter().filter(|(_, l)| l.expires <= now).map(|(m, _)| *m).collect();
            for mac in expired {
                if let Some(lease) = st.leases.remove(&mac) {
                    st.by_ip.remove(&lease.ip);
                }
            }
            st.offers.retain(|_, o| o.expires > now);
        }
        api.schedule(SWEEP_EVERY, TICK_SWEEP);
    }

    fn allocate(&self, now: SimTime, chaddr: MacAddr) -> Option<Ipv4Addr> {
        let st = self.state.borrow();
        // Sticky allocation: a client with a live lease or offer keeps it.
        if let Some(lease) = st.leases.get(&chaddr) {
            return Some(lease.ip);
        }
        if let Some(offer) = st.offers.get(&chaddr) {
            if offer.expires > now {
                return Some(offer.ip);
            }
        }
        let offered: std::collections::HashSet<Ipv4Addr> =
            st.offers.values().filter(|o| o.expires > now).map(|o| o.ip).collect();
        (0..self.config.pool_size)
            .map(|i| Ipv4Addr::from_u32(self.config.pool_start.to_u32() + i))
            .find(|ip| !st.by_ip.contains_key(ip) && !offered.contains(ip))
    }

    fn reply(
        &self,
        api: &mut HostApi<'_, '_>,
        kind: DhcpMessageType,
        client: &DhcpMessage,
        yiaddr: Ipv4Addr,
    ) {
        let server_id = api.ip().unwrap_or(self.config.router);
        let msg = DhcpMessage::reply(
            kind,
            client,
            yiaddr,
            server_id,
            self.config.lease.as_secs() as u32,
            self.config.mask,
            self.config.router,
        );
        api.core.stats.borrow_mut().dhcp_sent += 1;
        // Reply directly to the client's hardware address; the client has
        // no IP yet, so the L3 destination is the limited broadcast.
        api.core.send_udp_to_mac(
            api.ctx,
            client.chaddr,
            Ipv4Addr::BROADCAST,
            DHCP_SERVER_PORT,
            DHCP_CLIENT_PORT,
            &msg,
        );
    }

    pub(crate) fn on_udp(&mut self, api: &mut HostApi<'_, '_>, dst_port: u16, payload: &[u8]) {
        if dst_port != DHCP_SERVER_PORT {
            return;
        }
        let Ok(msg) = DhcpMessage::parse(payload) else {
            return;
        };
        api.core.stats.borrow_mut().dhcp_received += 1;
        let now = api.now();
        match msg.message_type() {
            Some(DhcpMessageType::Discover) => match self.allocate(now, msg.chaddr) {
                Some(ip) => {
                    {
                        let mut st = self.state.borrow_mut();
                        st.offers.insert(
                            msg.chaddr,
                            Lease { ip, expires: now + self.config.offer_hold },
                        );
                        st.offers_sent += 1;
                    }
                    self.reply(api, DhcpMessageType::Offer, &msg, ip);
                }
                None => {
                    self.state.borrow_mut().exhaustion_events += 1;
                }
            },
            Some(DhcpMessageType::Request) => {
                // RFC 2131 §4.3.2: a REQUEST naming another server means the
                // client chose that server — release our offer and stay
                // silent rather than NAK.
                let our_id = api.ip().unwrap_or(self.config.router);
                if let Some(chosen) = msg.server_id() {
                    if chosen != our_id {
                        self.state.borrow_mut().offers.remove(&msg.chaddr);
                        return;
                    }
                }
                let requested = msg.requested_ip().unwrap_or(msg.ciaddr);
                let valid = {
                    let st = self.state.borrow();
                    let offered =
                        st.offers.get(&msg.chaddr).map(|o| o.ip == requested).unwrap_or(false);
                    let leased =
                        st.leases.get(&msg.chaddr).map(|l| l.ip == requested).unwrap_or(false);
                    (offered || leased) && !requested.is_unspecified()
                };
                if valid {
                    {
                        let mut st = self.state.borrow_mut();
                        st.offers.remove(&msg.chaddr);
                        st.leases.insert(
                            msg.chaddr,
                            Lease { ip: requested, expires: now + self.config.lease },
                        );
                        st.by_ip.insert(requested, msg.chaddr);
                        st.acks_sent += 1;
                    }
                    self.reply(api, DhcpMessageType::Ack, &msg, requested);
                } else {
                    self.state.borrow_mut().naks_sent += 1;
                    self.reply(api, DhcpMessageType::Nak, &msg, Ipv4Addr::UNSPECIFIED);
                }
            }
            Some(DhcpMessageType::Release) => {
                let mut st = self.state.borrow_mut();
                if let Some(lease) = st.leases.remove(&msg.chaddr) {
                    st.by_ip.remove(&lease.ip);
                }
            }
            _ => {}
        }
    }
}

// Behavioural tests (full handshake, exhaustion, lease reuse) live in
// `stack.rs` tests and the cross-crate integration suite.
