//! 48-bit IEEE 802 MAC addresses.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseError;

/// A 48-bit Ethernet hardware address.
///
/// `MacAddr` is a plain value type: `Copy`, ordered, hashable, and
/// convertible to and from its canonical colon-separated text form.
///
/// ```rust
/// use arpshield_packet::MacAddr;
///
/// let mac: MacAddr = "02:00:00:00:00:2a".parse().unwrap();
/// assert_eq!(mac.to_string(), "02:00:00:00:00:2a");
/// assert!(mac.is_locally_administered());
/// assert!(!mac.is_multicast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used by DHCP clients before configuration and
    /// by ARP probes as a null target.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Deterministically derives a locally-administered unicast address from
    /// an index, useful for assigning stable addresses to simulated hosts.
    ///
    /// The first octet is always `0x02` (locally administered, unicast), so
    /// generated addresses can never collide with [`MacAddr::BROADCAST`] or
    /// multicast space.
    pub const fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns the six octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Returns the address as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Parses an address from the first six bytes of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if `buf` is shorter than six bytes.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < 6 {
            return Err(ParseError::Truncated { what: "mac", needed: 6, got: buf.len() });
        }
        let mut o = [0u8; 6];
        o.copy_from_slice(&buf[..6]);
        Ok(MacAddr(o))
    }

    /// True for the all-ones broadcast address.
    pub const fn is_broadcast(&self) -> bool {
        matches!(self.0, [0xff, 0xff, 0xff, 0xff, 0xff, 0xff])
    }

    /// True when the group bit (least-significant bit of the first octet) is
    /// set, i.e. multicast or broadcast.
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast addresses (group bit clear).
    pub const fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// True when the locally-administered bit is set.
    pub const fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// True for the all-zero address.
    pub const fn is_zero(&self) -> bool {
        matches!(self.0, [0, 0, 0, 0, 0, 0])
    }

    /// Returns the 24-bit organizationally unique identifier (vendor prefix).
    pub const fn oui(&self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl FromStr for MacAddr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split([':', '-']);
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or(ParseError::InvalidField {
                what: "mac",
                field: "text",
                value: 0,
            })?;
            *slot = u8::from_str_radix(part, 16).map_err(|_| ParseError::InvalidField {
                what: "mac",
                field: "octet",
                value: 0,
            })?;
        }
        if parts.next().is_some() {
            return Err(ParseError::InvalidField { what: "mac", field: "text", value: 0 });
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let mac = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        let text = mac.to_string();
        assert_eq!(text, "de:ad:be:ef:00:01");
        assert_eq!(text.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parses_dash_separated() {
        let mac: MacAddr = "4C-34-88-5E-EA-85".parse().unwrap();
        assert_eq!(mac.octets(), [0x4c, 0x34, 0x88, 0x5e, 0xea, 0x85]);
    }

    #[test]
    fn rejects_malformed_text() {
        assert!("not-a-mac".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("zz:11:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
        assert!(!MacAddr::ZERO.is_broadcast());
        assert!(MacAddr::ZERO.is_zero());
    }

    #[test]
    fn from_index_is_stable_unicast() {
        let a = MacAddr::from_index(7);
        let b = MacAddr::from_index(7);
        let c = MacAddr::from_index(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_unicast());
        assert!(a.is_locally_administered());
    }

    #[test]
    fn parse_requires_six_bytes() {
        assert!(MacAddr::parse(&[1, 2, 3]).is_err());
        assert_eq!(MacAddr::parse(&[1, 2, 3, 4, 5, 6, 7]).unwrap().octets(), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn oui_is_first_three_octets() {
        let mac = MacAddr::new([0x00, 0x1b, 0x44, 0x11, 0x3a, 0xb7]);
        assert_eq!(mac.oui(), [0x00, 0x1b, 0x44]);
    }
}
