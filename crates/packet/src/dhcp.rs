//! DHCP (RFC 2131) messages over BOOTP framing, with the option subset the
//! simulator's client, server, starvation attack, and snooping schemes need.

use std::fmt;

use crate::error::ParseError;
use crate::ipv4::Ipv4Addr;
use crate::mac::MacAddr;

/// UDP port the DHCP server listens on.
pub const DHCP_SERVER_PORT: u16 = 67;
/// UDP port the DHCP client listens on.
pub const DHCP_CLIENT_PORT: u16 = 68;

pub(crate) const DHCP_MAGIC_COOKIE: [u8; 4] = [99, 130, 83, 99];
pub(crate) const DHCP_FIXED_LEN: usize = 236;

const MAGIC_COOKIE: [u8; 4] = DHCP_MAGIC_COOKIE;
const FIXED_LEN: usize = DHCP_FIXED_LEN;

/// BOOTP op field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DhcpOp {
    /// Client-to-server (`1`).
    BootRequest,
    /// Server-to-client (`2`).
    BootReply,
}

impl DhcpOp {
    /// Returns the wire byte.
    pub const fn to_u8(self) -> u8 {
        match self {
            DhcpOp::BootRequest => 1,
            DhcpOp::BootReply => 2,
        }
    }

    /// Builds from the wire byte.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::InvalidField`] for any other value.
    pub fn from_u8(value: u8) -> Result<Self, ParseError> {
        match value {
            1 => Ok(DhcpOp::BootRequest),
            2 => Ok(DhcpOp::BootReply),
            other => {
                Err(ParseError::InvalidField { what: "dhcp", field: "op", value: u64::from(other) })
            }
        }
    }
}

/// DHCP message type (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DhcpMessageType {
    /// Client broadcast to locate servers.
    Discover,
    /// Server offer of parameters.
    Offer,
    /// Client request of offered parameters.
    Request,
    /// Server declines the request.
    Nak,
    /// Server commits the lease.
    Ack,
    /// Client releases its lease.
    Release,
}

impl DhcpMessageType {
    /// Returns the option-53 wire byte.
    pub const fn to_u8(self) -> u8 {
        match self {
            DhcpMessageType::Discover => 1,
            DhcpMessageType::Offer => 2,
            DhcpMessageType::Request => 3,
            DhcpMessageType::Nak => 6,
            DhcpMessageType::Ack => 5,
            DhcpMessageType::Release => 7,
        }
    }

    /// Builds from the option-53 wire byte.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::InvalidField`] for unsupported type codes
    /// (Decline and Inform are not generated anywhere in the simulator).
    pub fn from_u8(value: u8) -> Result<Self, ParseError> {
        match value {
            1 => Ok(DhcpMessageType::Discover),
            2 => Ok(DhcpMessageType::Offer),
            3 => Ok(DhcpMessageType::Request),
            5 => Ok(DhcpMessageType::Ack),
            6 => Ok(DhcpMessageType::Nak),
            7 => Ok(DhcpMessageType::Release),
            other => Err(ParseError::InvalidField {
                what: "dhcp",
                field: "message_type",
                value: u64::from(other),
            }),
        }
    }
}

impl fmt::Display for DhcpMessageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DhcpMessageType::Discover => "DISCOVER",
            DhcpMessageType::Offer => "OFFER",
            DhcpMessageType::Request => "REQUEST",
            DhcpMessageType::Nak => "NAK",
            DhcpMessageType::Ack => "ACK",
            DhcpMessageType::Release => "RELEASE",
        };
        write!(f, "{name}")
    }
}

/// A decoded DHCP option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhcpOption {
    /// Option 1: subnet mask.
    SubnetMask(Ipv4Addr),
    /// Option 3: default router.
    Router(Ipv4Addr),
    /// Option 6: DNS server.
    DnsServer(Ipv4Addr),
    /// Option 50: requested IP address.
    RequestedIp(Ipv4Addr),
    /// Option 51: lease time in seconds.
    LeaseTime(u32),
    /// Option 53: message type (always present in valid DHCP).
    MessageType(DhcpMessageType),
    /// Option 54: server identifier.
    ServerId(Ipv4Addr),
    /// Any other option, carried verbatim.
    Other(u8, Vec<u8>),
}

impl DhcpOption {
    /// Encoded length including the code and length bytes.
    pub(crate) fn encoded_len(&self) -> usize {
        match self {
            DhcpOption::SubnetMask(_)
            | DhcpOption::Router(_)
            | DhcpOption::DnsServer(_)
            | DhcpOption::RequestedIp(_)
            | DhcpOption::ServerId(_)
            | DhcpOption::LeaseTime(_) => 6,
            DhcpOption::MessageType(_) => 3,
            DhcpOption::Other(_, data) => 2 + data.len(),
        }
    }

    /// Writes the option at `buf[at..]`, returning its encoded length.
    pub(crate) fn emit_at(&self, buf: &mut [u8], at: usize) -> usize {
        let len = self.encoded_len();
        let out = &mut buf[at..at + len];
        match self {
            DhcpOption::SubnetMask(a) => emit_addr(out, 1, *a),
            DhcpOption::Router(a) => emit_addr(out, 3, *a),
            DhcpOption::DnsServer(a) => emit_addr(out, 6, *a),
            DhcpOption::RequestedIp(a) => emit_addr(out, 50, *a),
            DhcpOption::LeaseTime(t) => {
                out[0] = 51;
                out[1] = 4;
                out[2..6].copy_from_slice(&t.to_be_bytes());
            }
            DhcpOption::MessageType(t) => out.copy_from_slice(&[53, 1, t.to_u8()]),
            DhcpOption::ServerId(a) => emit_addr(out, 54, *a),
            DhcpOption::Other(code, data) => {
                out[0] = *code;
                out[1] = data.len() as u8;
                out[2..].copy_from_slice(data);
            }
        }
        len
    }
}

fn emit_addr(out: &mut [u8], code: u8, addr: Ipv4Addr) {
    out[0] = code;
    out[1] = 4;
    out[2..6].copy_from_slice(&addr.octets());
}

/// A DHCP message.
///
/// Field names follow RFC 2131 (`xid`, `ciaddr`, `yiaddr`, `siaddr`,
/// `chaddr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpMessage {
    /// BOOTP op.
    pub op: DhcpOp,
    /// Transaction identifier chosen by the client.
    pub xid: u32,
    /// Client's current address (renewals), else unspecified.
    pub ciaddr: Ipv4Addr,
    /// "Your" address — the address the server assigns.
    pub yiaddr: Ipv4Addr,
    /// Next-server address.
    pub siaddr: Ipv4Addr,
    /// Client hardware address. For DHCP starvation this is the forged
    /// field: every discover carries a fresh random `chaddr`.
    pub chaddr: MacAddr,
    /// Options in order of appearance.
    pub options: Vec<DhcpOption>,
}

impl DhcpMessage {
    /// Builds a client DISCOVER.
    pub fn discover(xid: u32, chaddr: MacAddr) -> Self {
        DhcpMessage {
            op: DhcpOp::BootRequest,
            xid,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: vec![DhcpOption::MessageType(DhcpMessageType::Discover)],
        }
    }

    /// Builds a client REQUEST for `requested` from `server`.
    pub fn request(xid: u32, chaddr: MacAddr, requested: Ipv4Addr, server: Ipv4Addr) -> Self {
        DhcpMessage {
            op: DhcpOp::BootRequest,
            xid,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: vec![
                DhcpOption::MessageType(DhcpMessageType::Request),
                DhcpOption::RequestedIp(requested),
                DhcpOption::ServerId(server),
            ],
        }
    }

    /// Builds a client RELEASE of `addr` back to `server`.
    pub fn release(xid: u32, chaddr: MacAddr, addr: Ipv4Addr, server: Ipv4Addr) -> Self {
        DhcpMessage {
            op: DhcpOp::BootRequest,
            xid,
            ciaddr: addr,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: vec![
                DhcpOption::MessageType(DhcpMessageType::Release),
                DhcpOption::ServerId(server),
            ],
        }
    }

    /// Builds a server reply (OFFER/ACK/NAK) mirroring a client message.
    pub fn reply(
        message_type: DhcpMessageType,
        client: &DhcpMessage,
        yiaddr: Ipv4Addr,
        server_id: Ipv4Addr,
        lease_secs: u32,
        mask: Ipv4Addr,
        router: Ipv4Addr,
    ) -> Self {
        DhcpMessage {
            op: DhcpOp::BootReply,
            xid: client.xid,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr,
            siaddr: server_id,
            chaddr: client.chaddr,
            options: vec![
                DhcpOption::MessageType(message_type),
                DhcpOption::ServerId(server_id),
                DhcpOption::LeaseTime(lease_secs),
                DhcpOption::SubnetMask(mask),
                DhcpOption::Router(router),
            ],
        }
    }

    /// Returns the message type from option 53, if present.
    pub fn message_type(&self) -> Option<DhcpMessageType> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::MessageType(t) => Some(*t),
            _ => None,
        })
    }

    /// Returns the requested IP (option 50), if present.
    pub fn requested_ip(&self) -> Option<Ipv4Addr> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::RequestedIp(a) => Some(*a),
            _ => None,
        })
    }

    /// Returns the server identifier (option 54), if present.
    pub fn server_id(&self) -> Option<Ipv4Addr> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::ServerId(a) => Some(*a),
            _ => None,
        })
    }

    /// Returns the lease time (option 51), if present.
    pub fn lease_time(&self) -> Option<u32> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::LeaseTime(t) => Some(*t),
            _ => None,
        })
    }

    /// Returns the default router (option 3), if present.
    pub fn router(&self) -> Option<Ipv4Addr> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::Router(a) => Some(*a),
            _ => None,
        })
    }

    /// Serializes BOOTP fixed fields, magic cookie, options, and end marker.
    ///
    /// A shim over the in-place [`WireEmit`](crate::WireEmit) writer; TX
    /// hot paths emit directly into pool buffers instead.
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::emit_to_vec(self)
    }

    /// Parses a DHCP message.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on truncation, a missing magic cookie, or a
    /// malformed options area.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < FIXED_LEN + 4 {
            return Err(ParseError::Truncated {
                what: "dhcp",
                needed: FIXED_LEN + 4,
                got: buf.len(),
            });
        }
        if buf[FIXED_LEN..FIXED_LEN + 4] != MAGIC_COOKIE {
            return Err(ParseError::InvalidField {
                what: "dhcp",
                field: "magic_cookie",
                value: u64::from(u32::from_be_bytes([
                    buf[FIXED_LEN],
                    buf[FIXED_LEN + 1],
                    buf[FIXED_LEN + 2],
                    buf[FIXED_LEN + 3],
                ])),
            });
        }
        let mut options = Vec::new();
        let mut i = FIXED_LEN + 4;
        while i < buf.len() {
            let code = buf[i];
            match code {
                0 => {
                    i += 1; // pad
                }
                255 => break,
                _ => {
                    if i + 1 >= buf.len() {
                        return Err(ParseError::MalformedOptions { what: "dhcp", offset: i });
                    }
                    let len = usize::from(buf[i + 1]);
                    let start = i + 2;
                    let end = start + len;
                    if end > buf.len() {
                        return Err(ParseError::MalformedOptions { what: "dhcp", offset: i });
                    }
                    options.push(decode_option(code, &buf[start..end], i)?);
                    i = end;
                }
            }
        }
        Ok(DhcpMessage {
            op: DhcpOp::from_u8(buf[0])?,
            xid: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ciaddr: Ipv4Addr::parse(&buf[12..16])?,
            yiaddr: Ipv4Addr::parse(&buf[16..20])?,
            siaddr: Ipv4Addr::parse(&buf[20..24])?,
            chaddr: MacAddr::parse(&buf[28..34])?,
            options,
        })
    }
}

fn decode_option(code: u8, data: &[u8], offset: usize) -> Result<DhcpOption, ParseError> {
    let addr = |data: &[u8]| -> Result<Ipv4Addr, ParseError> {
        if data.len() != 4 {
            return Err(ParseError::MalformedOptions { what: "dhcp", offset });
        }
        Ipv4Addr::parse(data)
    };
    Ok(match code {
        1 => DhcpOption::SubnetMask(addr(data)?),
        3 => DhcpOption::Router(addr(data)?),
        6 => DhcpOption::DnsServer(addr(data)?),
        50 => DhcpOption::RequestedIp(addr(data)?),
        51 => {
            if data.len() != 4 {
                return Err(ParseError::MalformedOptions { what: "dhcp", offset });
            }
            DhcpOption::LeaseTime(u32::from_be_bytes([data[0], data[1], data[2], data[3]]))
        }
        53 => {
            if data.len() != 1 {
                return Err(ParseError::MalformedOptions { what: "dhcp", offset });
            }
            DhcpOption::MessageType(DhcpMessageType::from_u8(data[0])?)
        }
        54 => DhcpOption::ServerId(addr(data)?),
        other => DhcpOption::Other(other, data.to_vec()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_roundtrip() {
        let msg = DhcpMessage::discover(0x643c_9869, MacAddr::from_index(3));
        let parsed = DhcpMessage::parse(&msg.encode()).unwrap();
        assert_eq!(parsed, msg);
        assert_eq!(parsed.message_type(), Some(DhcpMessageType::Discover));
    }

    #[test]
    fn full_handshake_fields() {
        let chaddr = MacAddr::from_index(9);
        let server = Ipv4Addr::new(192, 168, 88, 1);
        let offered = Ipv4Addr::new(192, 168, 88, 250);
        let discover = DhcpMessage::discover(7, chaddr);
        let offer = DhcpMessage::reply(
            DhcpMessageType::Offer,
            &discover,
            offered,
            server,
            600,
            Ipv4Addr::new(255, 255, 255, 0),
            server,
        );
        let parsed = DhcpMessage::parse(&offer.encode()).unwrap();
        assert_eq!(parsed.yiaddr, offered);
        assert_eq!(parsed.server_id(), Some(server));
        assert_eq!(parsed.lease_time(), Some(600));
        assert_eq!(parsed.router(), Some(server));
        assert_eq!(parsed.xid, 7);
        assert_eq!(parsed.chaddr, chaddr);

        let request = DhcpMessage::request(7, chaddr, offered, server);
        let parsed = DhcpMessage::parse(&request.encode()).unwrap();
        assert_eq!(parsed.requested_ip(), Some(offered));
        assert_eq!(parsed.server_id(), Some(server));
    }

    #[test]
    fn release_carries_ciaddr() {
        let msg = DhcpMessage::release(
            1,
            MacAddr::from_index(4),
            Ipv4Addr::new(10, 0, 0, 50),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let parsed = DhcpMessage::parse(&msg.encode()).unwrap();
        assert_eq!(parsed.ciaddr, Ipv4Addr::new(10, 0, 0, 50));
        assert_eq!(parsed.message_type(), Some(DhcpMessageType::Release));
    }

    #[test]
    fn rejects_missing_cookie() {
        let msg = DhcpMessage::discover(1, MacAddr::from_index(1));
        let mut bytes = msg.encode();
        bytes[FIXED_LEN] = 0;
        assert!(matches!(
            DhcpMessage::parse(&bytes),
            Err(ParseError::InvalidField { field: "magic_cookie", .. })
        ));
    }

    #[test]
    fn rejects_truncated_option() {
        let msg = DhcpMessage::discover(1, MacAddr::from_index(1));
        let mut bytes = msg.encode();
        bytes.pop(); // drop end marker
        bytes.push(51); // lease-time option with no length byte
        assert!(matches!(DhcpMessage::parse(&bytes), Err(ParseError::MalformedOptions { .. })));
    }

    #[test]
    fn skips_pad_and_preserves_unknown_options() {
        let mut msg = DhcpMessage::discover(1, MacAddr::from_index(1));
        msg.options.push(DhcpOption::Other(12, b"hostname".to_vec()));
        let mut bytes = msg.encode();
        // Insert pad bytes just after the cookie.
        bytes.insert(FIXED_LEN + 4, 0);
        bytes.insert(FIXED_LEN + 4, 0);
        let parsed = DhcpMessage::parse(&bytes).unwrap();
        assert_eq!(parsed.options.len(), 2);
        assert_eq!(parsed.options[1], DhcpOption::Other(12, b"hostname".to_vec()));
    }

    #[test]
    fn option_length_mismatch_rejected() {
        let msg = DhcpMessage::discover(1, MacAddr::from_index(1));
        let mut bytes = msg.encode();
        bytes.pop();
        bytes.extend_from_slice(&[54, 2, 1, 2]); // server id must be 4 bytes
        bytes.push(255);
        assert!(DhcpMessage::parse(&bytes).is_err());
    }

    #[test]
    fn message_type_codes_roundtrip() {
        for t in [
            DhcpMessageType::Discover,
            DhcpMessageType::Offer,
            DhcpMessageType::Request,
            DhcpMessageType::Ack,
            DhcpMessageType::Nak,
            DhcpMessageType::Release,
        ] {
            assert_eq!(DhcpMessageType::from_u8(t.to_u8()).unwrap(), t);
        }
        assert!(DhcpMessageType::from_u8(99).is_err());
    }
}
