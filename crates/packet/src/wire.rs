//! In-place wire emission: the TX half of the zero-copy path.
//!
//! Decoding already has borrowed views ([`EthernetView`]); this module adds
//! the mirror image for encoding. A [`WireEmit`] value knows its exact
//! on-wire length and can serialize itself into a caller-provided
//! `&mut [u8]` — typically a recycled frame-pool buffer — so a TX site never
//! materializes an intermediate `Vec<u8>` per packet. The legacy
//! `encode() -> Vec<u8>` methods remain as thin shims that allocate a fresh
//! buffer and call [`WireEmit::emit`] into it.
//!
//! Two styles are provided:
//!
//! - **Mutable views** ([`EthernetViewMut`], [`ArpViewMut`], [`Ipv4ViewMut`],
//!   [`UdpViewMut`], [`IcmpViewMut`], [`DhcpViewMut`]) for incremental
//!   field-by-field writing into a buffer, ethox-style. Checksummed
//!   protocols expose an explicit `fill_checksum` that must be called last.
//! - **Bound emitters** ([`EthernetEmit`], [`Ipv4Emit`], [`UdpEmit`],
//!   [`TcpEmit`]) that pair header fields with a borrowed payload
//!   implementing [`WireEmit`], so nested encodings (DHCP in UDP in IPv4 in
//!   Ethernet) compose into a single pass over one buffer.
//!
//! All writers produce bytes identical to the legacy owned encoders; the
//! property suite pins this per protocol.
//!
//! [`EthernetView`]: crate::EthernetView

use crate::arp::{ArpOp, ArpPacket, ARP_WIRE_LEN};
use crate::checksum::internet_checksum;
use crate::dhcp::{DhcpMessage, DhcpOp, DhcpOption, DHCP_FIXED_LEN, DHCP_MAGIC_COOKIE};
use crate::ether::{
    EtherType, EthernetFrame, ETHERNET_HEADER_LEN, ETHERNET_MIN_PAYLOAD, ETHERNET_VLAN_TAG_LEN,
};
use crate::icmp::{IcmpMessage, IcmpType};
use crate::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet, IPV4_HEADER_LEN};
use crate::mac::MacAddr;
use crate::tcp::{tcp_pseudo_header, TcpFlags, TcpSegment, TCP_HEADER_LEN};
use crate::udp::{udp_pseudo_header, UdpDatagram, UDP_HEADER_LEN};

/// A value with an exact on-wire length that can serialize itself into a
/// caller-provided buffer.
///
/// `emit` writes exactly [`wire_len`](Self::wire_len) bytes starting at
/// `buf[0]` and returns that count; callers hand it a slice at least that
/// long (frame-pool buffers are sized exactly). Implementations overwrite
/// every byte they claim — including zero padding — so a dirty buffer never
/// leaks through.
pub trait WireEmit {
    /// Exact number of bytes `emit` will write.
    fn wire_len(&self) -> usize;

    /// Serializes into the front of `buf`, returning the bytes written
    /// (always equal to [`wire_len`](Self::wire_len)).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`wire_len`](Self::wire_len).
    fn emit(&self, buf: &mut [u8]) -> usize;
}

/// Raw bytes emit as themselves; this is what lets an already-serialized
/// payload (or an opaque one, like a signature blob) slot into the nested
/// emitters.
impl WireEmit for [u8] {
    fn wire_len(&self) -> usize {
        self.len()
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        buf[..self.len()].copy_from_slice(self);
        self.len()
    }
}

impl<T: WireEmit + ?Sized> WireEmit for &T {
    fn wire_len(&self) -> usize {
        (**self).wire_len()
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        (**self).emit(buf)
    }
}

/// Shared shim for the legacy `encode() -> Vec<u8>` methods: allocate an
/// exactly-sized zeroed buffer and emit into it.
pub(crate) fn emit_to_vec<T: WireEmit + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = vec![0u8; value.wire_len()];
    let written = value.emit(&mut buf);
    debug_assert_eq!(written, buf.len(), "emit must fill its stated wire_len");
    buf
}

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

/// A mutable view over an Ethernet II frame being written in place.
///
/// Field setters write directly into the borrowed buffer. VLAN tags shift
/// where the ethertype lives, so the write order is: addresses in any order,
/// then tags outermost-first via [`push_vlan`](Self::push_vlan) /
/// [`push_tag`](Self::push_tag), then [`set_ethertype`](Self::set_ethertype),
/// then the payload through [`payload_mut`](Self::payload_mut).
pub struct EthernetViewMut<'a> {
    buf: &'a mut [u8],
    tag_len: usize,
}

impl<'a> EthernetViewMut<'a> {
    /// Wraps `buf`, which must hold at least the 14-byte header.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`ETHERNET_HEADER_LEN`].
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(
            buf.len() >= ETHERNET_HEADER_LEN,
            "ethernet view needs at least {ETHERNET_HEADER_LEN} bytes, got {}",
            buf.len()
        );
        EthernetViewMut { buf, tag_len: 0 }
    }

    /// Writes the destination hardware address.
    pub fn set_dst(&mut self, dst: MacAddr) {
        self.buf[0..6].copy_from_slice(dst.as_bytes());
    }

    /// Writes the source hardware address.
    pub fn set_src(&mut self, src: MacAddr) {
        self.buf[6..12].copy_from_slice(src.as_bytes());
    }

    /// Appends an 802.1Q customer tag (TPID `0x8100`) with the low 12 bits
    /// of `vid`, growing the header by four bytes. Call before
    /// [`set_ethertype`](Self::set_ethertype); stack outermost-first for
    /// QinQ.
    pub fn push_vlan(&mut self, vid: u16) {
        self.push_tag(EtherType::Vlan, vid);
    }

    /// Appends a tag with an explicit TPID — [`EtherType::QinQ`] for an
    /// 802.1ad service tag — enabling full QinQ stacks. The RX parser
    /// unwraps such stacks and reports the outermost VID.
    ///
    /// # Panics
    ///
    /// Panics if `tpid` is not a VLAN tag TPID or the buffer cannot hold the
    /// enlarged header.
    pub fn push_tag(&mut self, tpid: EtherType, vid: u16) {
        assert!(tpid.is_vlan_tag(), "tag TPID must be 802.1Q or 802.1ad, got {tpid}");
        let at = 12 + self.tag_len;
        assert!(
            self.buf.len() >= at + ETHERNET_VLAN_TAG_LEN + 2,
            "buffer too short for another VLAN tag"
        );
        self.buf[at..at + 2].copy_from_slice(&tpid.to_u16().to_be_bytes());
        self.buf[at + 2..at + 4].copy_from_slice(&(vid & 0x0FFF).to_be_bytes());
        self.tag_len += ETHERNET_VLAN_TAG_LEN;
    }

    /// Writes the payload ethertype after any pushed tags.
    pub fn set_ethertype(&mut self, ethertype: EtherType) {
        let at = 12 + self.tag_len;
        self.buf[at..at + 2].copy_from_slice(&ethertype.to_u16().to_be_bytes());
    }

    /// Header length including any pushed tags.
    pub fn header_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.tag_len
    }

    /// The payload region after the header and tags; its length is whatever
    /// the caller sized the buffer for (padding included).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let at = self.header_len();
        &mut self.buf[at..]
    }
}

/// Ethernet header fields bound to a borrowed payload: the composable
/// emitter behind [`EthernetFrame::encode`] and the netsim frame builder.
///
/// Emission zero-pads the payload to the 46-byte minimum and writes a
/// single 802.1Q tag when `vlan` is set, exactly like the owned encoder.
pub struct EthernetEmit<'a, P: WireEmit + ?Sized> {
    /// Destination hardware address.
    pub dst: MacAddr,
    /// Source hardware address.
    pub src: MacAddr,
    /// Payload protocol (the innermost ethertype when a tag is present).
    pub ethertype: EtherType,
    /// Optional 802.1Q VLAN id (low 12 bits are kept).
    pub vlan: Option<u16>,
    /// Borrowed payload to emit after the header.
    pub payload: &'a P,
}

impl<'a, P: WireEmit + ?Sized> EthernetEmit<'a, P> {
    /// Creates an untagged frame emitter.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &'a P) -> Self {
        EthernetEmit { dst, src, ethertype, vlan: None, payload }
    }
}

impl<P: WireEmit + ?Sized> WireEmit for EthernetEmit<'_, P> {
    fn wire_len(&self) -> usize {
        let tag_len = if self.vlan.is_some() { ETHERNET_VLAN_TAG_LEN } else { 0 };
        ETHERNET_HEADER_LEN + tag_len + self.payload.wire_len().max(ETHERNET_MIN_PAYLOAD)
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        let total = self.wire_len();
        let mut view = EthernetViewMut::new(&mut buf[..total]);
        view.set_dst(self.dst);
        view.set_src(self.src);
        if let Some(vid) = self.vlan {
            view.push_vlan(vid);
        }
        view.set_ethertype(self.ethertype);
        let payload_len = self.payload.wire_len();
        let body = view.payload_mut();
        self.payload.emit(&mut body[..payload_len]);
        // Zero the min-payload padding explicitly: the buffer may be dirty.
        body[payload_len..].fill(0);
        total
    }
}

impl WireEmit for EthernetFrame {
    fn wire_len(&self) -> usize {
        EthernetFrame::wire_len(self)
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        EthernetEmit {
            dst: self.dst,
            src: self.src,
            ethertype: self.ethertype,
            vlan: self.vlan,
            payload: &self.payload[..],
        }
        .emit(buf)
    }
}

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------

/// A mutable view over the 28-byte ARP wire form.
///
/// Construction writes the fixed Ethernet/IPv4 type and length fields; the
/// setters fill in the claim.
pub struct ArpViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> ArpViewMut<'a> {
    /// Wraps `buf` and writes the constant htype/ptype/hlen/plen prefix.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`ARP_WIRE_LEN`].
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(
            buf.len() >= ARP_WIRE_LEN,
            "arp view needs {ARP_WIRE_LEN} bytes, got {}",
            buf.len()
        );
        buf[0..2].copy_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        buf[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        buf[4] = 6; // hlen
        buf[5] = 4; // plen
        ArpViewMut { buf }
    }

    /// Writes the operation code.
    pub fn set_op(&mut self, op: ArpOp) {
        self.buf[6..8].copy_from_slice(&op.to_u16().to_be_bytes());
    }

    /// Writes the sender hardware and protocol addresses — the claim.
    pub fn set_sender(&mut self, mac: MacAddr, ip: Ipv4Addr) {
        self.buf[8..14].copy_from_slice(mac.as_bytes());
        self.buf[14..18].copy_from_slice(&ip.octets());
    }

    /// Writes the target hardware and protocol addresses.
    pub fn set_target(&mut self, mac: MacAddr, ip: Ipv4Addr) {
        self.buf[18..24].copy_from_slice(mac.as_bytes());
        self.buf[24..28].copy_from_slice(&ip.octets());
    }
}

impl WireEmit for ArpPacket {
    fn wire_len(&self) -> usize {
        ARP_WIRE_LEN
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        let mut view = ArpViewMut::new(buf);
        view.set_op(self.op);
        view.set_sender(self.sender_mac, self.sender_ip);
        view.set_target(self.target_mac, self.target_ip);
        ARP_WIRE_LEN
    }
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

/// A mutable view over an IPv4 header (no options) plus payload.
///
/// The total length is taken from the wrapped buffer, which must be sized
/// exactly. Call [`fill_checksum`](Self::fill_checksum) after the last
/// header field write.
pub struct Ipv4ViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> Ipv4ViewMut<'a> {
    /// Wraps an exactly-sized buffer and writes version/IHL, zeroed
    /// DSCP/flags/fragment fields, the total length, and the defaults the
    /// owned builder uses (TTL 64, identification 0).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`IPV4_HEADER_LEN`] or longer than a
    /// 16-bit total length can describe.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(
            buf.len() >= IPV4_HEADER_LEN,
            "ipv4 view needs at least {IPV4_HEADER_LEN} bytes, got {}",
            buf.len()
        );
        assert!(buf.len() <= usize::from(u16::MAX), "ipv4 total length overflows 16 bits");
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0; // DSCP/ECN
        let total_len = buf.len() as u16;
        buf[2..4].copy_from_slice(&total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&[0, 0]); // identification default
        buf[6..8].copy_from_slice(&[0, 0]); // flags + fragment offset
        buf[8] = 64; // default TTL
        buf[10..12].copy_from_slice(&[0, 0]); // checksum placeholder
        Ipv4ViewMut { buf }
    }

    /// Writes the identification field.
    pub fn set_identification(&mut self, id: u16) {
        self.buf[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Writes the time-to-live.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buf[8] = ttl;
    }

    /// Writes the payload protocol number.
    pub fn set_protocol(&mut self, protocol: IpProtocol) {
        self.buf[9] = protocol.to_u8();
    }

    /// Writes the source address.
    pub fn set_src(&mut self, src: Ipv4Addr) {
        self.buf[12..16].copy_from_slice(&src.octets());
    }

    /// Writes the destination address.
    pub fn set_dst(&mut self, dst: Ipv4Addr) {
        self.buf[16..20].copy_from_slice(&dst.octets());
    }

    /// The payload region after the 20-byte header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buf[IPV4_HEADER_LEN..]
    }

    /// Computes and patches the header checksum. Must be the last header
    /// write.
    pub fn fill_checksum(&mut self) {
        self.buf[10..12].copy_from_slice(&[0, 0]);
        let ck = internet_checksum(&self.buf[..IPV4_HEADER_LEN]);
        self.buf[10..12].copy_from_slice(&ck.to_be_bytes());
    }
}

/// IPv4 header fields bound to a borrowed payload emitter, so transport
/// payloads nest without intermediate buffers.
pub struct Ipv4Emit<'a, P: WireEmit + ?Sized> {
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Identification field.
    pub identification: u16,
    /// Borrowed payload to emit after the header.
    pub payload: &'a P,
}

impl<'a, P: WireEmit + ?Sized> Ipv4Emit<'a, P> {
    /// Creates an emitter with the same defaults as [`Ipv4Packet::new`]
    /// (TTL 64, identification 0).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: &'a P) -> Self {
        Ipv4Emit { ttl: 64, protocol, src, dst, identification: 0, payload }
    }
}

impl<P: WireEmit + ?Sized> WireEmit for Ipv4Emit<'_, P> {
    fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.wire_len()
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        let total = self.wire_len();
        let mut view = Ipv4ViewMut::new(&mut buf[..total]);
        view.set_identification(self.identification);
        view.set_ttl(self.ttl);
        view.set_protocol(self.protocol);
        view.set_src(self.src);
        view.set_dst(self.dst);
        view.fill_checksum();
        self.payload.emit(view.payload_mut());
        total
    }
}

impl WireEmit for Ipv4Packet {
    fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        Ipv4Emit {
            ttl: self.ttl,
            protocol: self.protocol,
            src: self.src,
            dst: self.dst,
            identification: self.identification,
            payload: &self.payload[..],
        }
        .emit(buf)
    }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

/// A mutable view over a UDP datagram. The length field is taken from the
/// wrapped buffer; [`fill_checksum`](Self::fill_checksum) (which needs the
/// enclosing addresses for the pseudo-header) must come after the last
/// payload write.
pub struct UdpViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> UdpViewMut<'a> {
    /// Wraps an exactly-sized buffer and writes the length field and a
    /// zeroed checksum placeholder.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`UDP_HEADER_LEN`] or longer than a
    /// 16-bit length can describe.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(
            buf.len() >= UDP_HEADER_LEN,
            "udp view needs at least {UDP_HEADER_LEN} bytes, got {}",
            buf.len()
        );
        assert!(buf.len() <= usize::from(u16::MAX), "udp length overflows 16 bits");
        let len = buf.len() as u16;
        buf[4..6].copy_from_slice(&len.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]); // checksum placeholder
        UdpViewMut { buf }
    }

    /// Writes the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buf[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Writes the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buf[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// The payload region after the 8-byte header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buf[UDP_HEADER_LEN..]
    }

    /// Computes and patches the pseudo-header checksum (RFC 768: an
    /// all-zero result is transmitted as `0xffff`). Must be the last write.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.buf[6..8].copy_from_slice(&[0, 0]);
        let mut ck = udp_pseudo_header(src, dst, self.buf.len() as u16);
        ck.add_bytes(self.buf);
        let mut sum = ck.finish();
        if sum == 0 {
            sum = 0xffff;
        }
        self.buf[6..8].copy_from_slice(&sum.to_be_bytes());
    }
}

/// UDP header fields bound to the enclosing addresses (the checksum covers
/// the IPv4 pseudo-header) and a borrowed payload emitter.
pub struct UdpEmit<'a, P: WireEmit + ?Sized> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Enclosing source address, for the pseudo-header.
    pub src: Ipv4Addr,
    /// Enclosing destination address, for the pseudo-header.
    pub dst: Ipv4Addr,
    /// Borrowed payload to emit after the header.
    pub payload: &'a P,
}

impl<'a, P: WireEmit + ?Sized> UdpEmit<'a, P> {
    /// Creates an emitter.
    pub fn new(src_port: u16, dst_port: u16, src: Ipv4Addr, dst: Ipv4Addr, payload: &'a P) -> Self {
        UdpEmit { src_port, dst_port, src, dst, payload }
    }
}

impl<P: WireEmit + ?Sized> WireEmit for UdpEmit<'_, P> {
    fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.wire_len()
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        let total = self.wire_len();
        let mut view = UdpViewMut::new(&mut buf[..total]);
        view.set_src_port(self.src_port);
        view.set_dst_port(self.dst_port);
        self.payload.emit(view.payload_mut());
        view.fill_checksum(self.src, self.dst);
        total
    }
}

impl UdpDatagram {
    /// Binds the datagram to its enclosing addresses as a [`WireEmit`]
    /// value, the in-place counterpart of [`UdpDatagram::encode`].
    pub fn emitter(&self, src: Ipv4Addr, dst: Ipv4Addr) -> UdpEmit<'_, [u8]> {
        UdpEmit::new(self.src_port, self.dst_port, src, dst, &self.payload[..])
    }
}

// ---------------------------------------------------------------------------
// ICMP
// ---------------------------------------------------------------------------

/// A mutable view over an ICMP echo message.
/// [`fill_checksum`](Self::fill_checksum) must come after the last write.
pub struct IcmpViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> IcmpViewMut<'a> {
    /// Wraps an exactly-sized buffer and writes the zero code byte and a
    /// zeroed checksum placeholder.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the 8-byte echo header.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(buf.len() >= 8, "icmp view needs at least 8 bytes, got {}", buf.len());
        buf[1] = 0; // code
        buf[2..4].copy_from_slice(&[0, 0]); // checksum placeholder
        IcmpViewMut { buf }
    }

    /// Writes the message type.
    pub fn set_type(&mut self, icmp_type: IcmpType) {
        self.buf[0] = icmp_type.to_u8();
    }

    /// Writes the session identifier.
    pub fn set_identifier(&mut self, identifier: u16) {
        self.buf[4..6].copy_from_slice(&identifier.to_be_bytes());
    }

    /// Writes the sequence number.
    pub fn set_sequence(&mut self, sequence: u16) {
        self.buf[6..8].copy_from_slice(&sequence.to_be_bytes());
    }

    /// The echo payload region after the 8-byte header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buf[8..]
    }

    /// Computes and patches the checksum. Must be the last write.
    pub fn fill_checksum(&mut self) {
        self.buf[2..4].copy_from_slice(&[0, 0]);
        let ck = internet_checksum(self.buf);
        self.buf[2..4].copy_from_slice(&ck.to_be_bytes());
    }
}

impl WireEmit for IcmpMessage {
    fn wire_len(&self) -> usize {
        8 + self.payload.len()
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        let total = self.wire_len();
        let mut view = IcmpViewMut::new(&mut buf[..total]);
        view.set_type(self.icmp_type);
        view.set_identifier(self.identifier);
        view.set_sequence(self.sequence);
        view.payload_mut().copy_from_slice(&self.payload);
        view.fill_checksum();
        total
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// TCP header fields bound to the enclosing addresses and a borrowed
/// payload emitter. There is no incremental view — nothing in the
/// simulator builds TCP field-by-field — but the emitter keeps the
/// probe-TX path allocation-free like the other protocols.
pub struct TcpEmit<'a, P: WireEmit + ?Sized> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Enclosing source address, for the pseudo-header.
    pub src: Ipv4Addr,
    /// Enclosing destination address, for the pseudo-header.
    pub dst: Ipv4Addr,
    /// Borrowed payload to emit after the header.
    pub payload: &'a P,
}

impl<P: WireEmit + ?Sized> WireEmit for TcpEmit<'_, P> {
    fn wire_len(&self) -> usize {
        TCP_HEADER_LEN + self.payload.wire_len()
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        let total = self.wire_len();
        let buf = &mut buf[..total];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = ((TCP_HEADER_LEN / 4) as u8) << 4;
        buf[13] = self.flags.bits();
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&[0, 0]); // checksum placeholder
        buf[18..20].copy_from_slice(&[0, 0]); // urgent pointer
        self.payload.emit(&mut buf[TCP_HEADER_LEN..]);
        let mut ck = tcp_pseudo_header(self.src, self.dst, total as u16);
        ck.add_bytes(buf);
        let sum = ck.finish();
        buf[16..18].copy_from_slice(&sum.to_be_bytes());
        total
    }
}

impl TcpSegment {
    /// Binds the segment to its enclosing addresses as a [`WireEmit`]
    /// value, the in-place counterpart of [`TcpSegment::encode`].
    pub fn emitter(&self, src: Ipv4Addr, dst: Ipv4Addr) -> TcpEmit<'_, [u8]> {
        TcpEmit {
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq: self.seq,
            ack: self.ack,
            flags: self.flags,
            window: self.window,
            src,
            dst,
            payload: &self.payload[..],
        }
    }
}

// ---------------------------------------------------------------------------
// DHCP
// ---------------------------------------------------------------------------

/// A mutable view over a DHCP message: fixed BOOTP area setters plus an
/// append-only options cursor.
///
/// Construction writes every constant region (htype/hlen/hops, secs, the
/// broadcast flag, giaddr, chaddr padding, sname, file, magic cookie), so a
/// dirty buffer cannot leak through the large zero fields.
pub struct DhcpViewMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> DhcpViewMut<'a> {
    /// Wraps `buf`, which must hold the fixed BOOTP area, the magic cookie,
    /// and at least the end-marker byte.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than `DHCP_FIXED_LEN + 5`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(
            buf.len() >= DHCP_FIXED_LEN + 4 + 1,
            "dhcp view needs at least {} bytes, got {}",
            DHCP_FIXED_LEN + 5,
            buf.len()
        );
        buf[1] = 1; // htype Ethernet
        buf[2] = 6; // hlen
        buf[3] = 0; // hops
        buf[8..10].copy_from_slice(&[0, 0]); // secs
        buf[10..12].copy_from_slice(&[0x80, 0]); // flags: broadcast
        buf[24..28].fill(0); // giaddr
        buf[34..44].fill(0); // chaddr padding
        buf[44..108].fill(0); // sname
        buf[108..DHCP_FIXED_LEN].fill(0); // file
        buf[DHCP_FIXED_LEN..DHCP_FIXED_LEN + 4].copy_from_slice(&DHCP_MAGIC_COOKIE);
        DhcpViewMut { buf }
    }

    /// Writes the BOOTP op.
    pub fn set_op(&mut self, op: DhcpOp) {
        self.buf[0] = op.to_u8();
    }

    /// Writes the transaction identifier.
    pub fn set_xid(&mut self, xid: u32) {
        self.buf[4..8].copy_from_slice(&xid.to_be_bytes());
    }

    /// Writes the client's current address.
    pub fn set_ciaddr(&mut self, addr: Ipv4Addr) {
        self.buf[12..16].copy_from_slice(&addr.octets());
    }

    /// Writes the address the server assigns.
    pub fn set_yiaddr(&mut self, addr: Ipv4Addr) {
        self.buf[16..20].copy_from_slice(&addr.octets());
    }

    /// Writes the next-server address.
    pub fn set_siaddr(&mut self, addr: Ipv4Addr) {
        self.buf[20..24].copy_from_slice(&addr.octets());
    }

    /// Writes the client hardware address.
    pub fn set_chaddr(&mut self, chaddr: MacAddr) {
        self.buf[28..34].copy_from_slice(chaddr.as_bytes());
    }

    /// Starts the options area after the magic cookie. Consumes the view:
    /// options are the last thing written.
    pub fn options(self) -> DhcpOptionsWriter<'a> {
        DhcpOptionsWriter { buf: self.buf, at: DHCP_FIXED_LEN + 4 }
    }
}

/// Append-only cursor over a DHCP options area.
pub struct DhcpOptionsWriter<'a> {
    buf: &'a mut [u8],
    at: usize,
}

impl DhcpOptionsWriter<'_> {
    /// Appends one option.
    ///
    /// # Panics
    ///
    /// Panics if the buffer cannot hold the option plus the end marker.
    pub fn push(&mut self, option: &DhcpOption) {
        self.at += option.emit_at(self.buf, self.at);
        assert!(self.at < self.buf.len(), "dhcp options overflow the buffer");
    }

    /// Writes the end marker and returns the total message length.
    pub fn finish(self) -> usize {
        self.buf[self.at] = 255;
        self.at + 1
    }
}

impl WireEmit for DhcpMessage {
    fn wire_len(&self) -> usize {
        DHCP_FIXED_LEN + 4 + self.options.iter().map(DhcpOption::encoded_len).sum::<usize>() + 1
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        let total = self.wire_len();
        let mut view = DhcpViewMut::new(&mut buf[..total]);
        view.set_op(self.op);
        view.set_xid(self.xid);
        view.set_ciaddr(self.ciaddr);
        view.set_yiaddr(self.yiaddr);
        view.set_siaddr(self.siaddr);
        view.set_chaddr(self.chaddr);
        let mut options = view.options();
        for option in &self.options {
            options.push(option);
        }
        options.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The owned builder can only express a single 802.1Q tag; the view
    /// writer stacks arbitrary tags. Golden bytes mirror the hand-spliced
    /// QinQ fixture the RX parser is tested against: 802.1ad service tag
    /// outermost, 802.1Q customer tag inside, then the real ethertype.
    #[test]
    fn qinq_stack_written_in_place_matches_golden_bytes() {
        let mut buf = vec![0u8; ETHERNET_HEADER_LEN + 2 * ETHERNET_VLAN_TAG_LEN + 46];
        let mut view = EthernetViewMut::new(&mut buf);
        view.set_dst(MacAddr::BROADCAST);
        view.set_src(MacAddr::from_index(7));
        view.push_tag(EtherType::QinQ, 0xFFE);
        view.push_vlan(2);
        view.set_ethertype(EtherType::ARP);
        assert_eq!(view.header_len(), ETHERNET_HEADER_LEN + 2 * ETHERNET_VLAN_TAG_LEN);
        assert_eq!(view.payload_mut().len(), 46);

        let mut golden = Vec::new();
        golden.extend_from_slice(MacAddr::BROADCAST.as_bytes());
        golden.extend_from_slice(MacAddr::from_index(7).as_bytes());
        golden.extend_from_slice(&[0x88, 0xa8, 0x0F, 0xFE]); // S-tag, VID 0xFFE
        golden.extend_from_slice(&[0x81, 0x00, 0x00, 0x02]); // C-tag, VID 2
        golden.extend_from_slice(&[0x08, 0x06]);
        golden.extend_from_slice(&[0u8; 46]);
        assert_eq!(buf, golden);

        // And the RX side unwraps the stack to the outermost VID.
        let parsed = EthernetFrame::parse(&buf).unwrap();
        assert_eq!(parsed.vlan, Some(0xFFE));
        assert_eq!(parsed.ethertype, EtherType::ARP);
    }

    /// `push_vlan` and the owned single-tag encoder agree byte for byte.
    #[test]
    fn single_vlan_tag_matches_owned_encoder() {
        let owned = EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::ARP,
            vec![0xaa; 46],
        )
        .with_vlan(0x123);
        let golden = owned.encode();

        let mut buf = vec![0u8; golden.len()];
        let mut view = EthernetViewMut::new(&mut buf);
        view.set_dst(MacAddr::from_index(1));
        view.set_src(MacAddr::from_index(2));
        view.push_vlan(0x123);
        view.set_ethertype(EtherType::ARP);
        view.payload_mut().fill(0xaa);
        assert_eq!(buf, golden);
    }

    #[test]
    #[should_panic(expected = "tag TPID must be 802.1Q or 802.1ad")]
    fn push_tag_rejects_non_tag_tpid() {
        let mut buf = vec![0u8; 64];
        EthernetViewMut::new(&mut buf).push_tag(EtherType::ARP, 1);
    }
}
