//! UDP datagrams with pseudo-header checksums.

use crate::checksum::Checksum;
use crate::error::ParseError;
use crate::ipv4::Ipv4Addr;

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram.
///
/// The checksum covers the IPv4 pseudo-header, so [`UdpDatagram::encode`]
/// and [`UdpDatagram::parse`] take the enclosing source and destination
/// addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram { src_port, dst_port, payload }
    }

    /// Serializes header plus payload, computing the pseudo-header checksum.
    ///
    /// A shim over the in-place [`WireEmit`](crate::WireEmit) writer; TX
    /// hot paths emit directly into pool buffers instead.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        crate::wire::emit_to_vec(&self.emitter(src, dst))
    }

    /// Parses a datagram, verifying length and (when present) the checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on truncation, an impossible length field,
    /// or a checksum mismatch.
    pub fn parse(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "udp",
                needed: UDP_HEADER_LEN,
                got: buf.len(),
            });
        }
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < UDP_HEADER_LEN || len > buf.len() {
            return Err(ParseError::InvalidField {
                what: "udp",
                field: "length",
                value: len as u64,
            });
        }
        let stored = u16::from_be_bytes([buf[6], buf[7]]);
        if stored != 0 {
            let mut ck = udp_pseudo_header(src, dst, len as u16);
            ck.add_bytes(&buf[..len]);
            let verified = ck.finish();
            if verified != 0 {
                return Err(ParseError::BadChecksum { what: "udp", found: stored, expected: 0 });
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: buf[UDP_HEADER_LEN..len].to_vec(),
        })
    }
}

pub(crate) fn udp_pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, len: u16) -> Checksum {
    let mut ck = Checksum::new();
    ck.add_u32(src.to_u32());
    ck.add_u32(dst.to_u32());
    ck.add_u16(17); // protocol
    ck.add_u16(len);
    ck
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn roundtrip() {
        let dg = UdpDatagram::new(68, 67, b"discover".to_vec());
        let parsed = UdpDatagram::parse(&dg.encode(SRC, DST), SRC, DST).unwrap();
        assert_eq!(parsed, dg);
    }

    #[test]
    fn checksum_binds_addresses() {
        let dg = UdpDatagram::new(1000, 2000, vec![1, 2, 3]);
        let bytes = dg.encode(SRC, DST);
        // Parsing with a different pseudo-header must fail.
        assert!(UdpDatagram::parse(&bytes, SRC, Ipv4Addr::new(10, 0, 0, 3)).is_err());
    }

    #[test]
    fn corrupt_payload_detected() {
        let dg = UdpDatagram::new(5, 6, vec![0xaa; 16]);
        let mut bytes = dg.encode(SRC, DST);
        bytes[12] ^= 0x01;
        assert!(matches!(
            UdpDatagram::parse(&bytes, SRC, DST),
            Err(ParseError::BadChecksum { what: "udp", .. })
        ));
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let dg = UdpDatagram::new(5, 6, vec![1]);
        let mut bytes = dg.encode(SRC, DST);
        bytes[6] = 0;
        bytes[7] = 0;
        assert!(UdpDatagram::parse(&bytes, SRC, DST).is_ok());
    }

    #[test]
    fn rejects_bad_length_field() {
        let dg = UdpDatagram::new(5, 6, vec![1, 2]);
        let mut bytes = dg.encode(SRC, DST);
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        assert!(UdpDatagram::parse(&bytes, SRC, DST).is_err());
        bytes[4] = 0;
        bytes[5] = 3; // < header length
        assert!(UdpDatagram::parse(&bytes, SRC, DST).is_err());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let dg = UdpDatagram::new(53, 53, vec![]);
        let parsed = UdpDatagram::parse(&dg.encode(SRC, DST), SRC, DST).unwrap();
        assert!(parsed.payload.is_empty());
    }

    #[test]
    fn parse_ignores_trailing_padding() {
        let dg = UdpDatagram::new(68, 67, vec![9; 3]);
        let mut bytes = dg.encode(SRC, DST);
        bytes.extend_from_slice(&[0; 10]);
        let parsed = UdpDatagram::parse(&bytes, SRC, DST).unwrap();
        assert_eq!(parsed.payload, vec![9; 3]);
    }
}
