//! Ethernet II framing.

use std::fmt;

use crate::error::ParseError;
use crate::mac::MacAddr;

/// Length of the Ethernet II header (destination, source, ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;
/// Minimum payload length; shorter payloads are zero-padded on the wire.
pub const ETHERNET_MIN_PAYLOAD: usize = 46;
/// Maximum standard payload length (no jumbo frames).
pub const ETHERNET_MAX_PAYLOAD: usize = 1500;

/// The EtherType field of an Ethernet II frame.
///
/// Unknown values are preserved rather than rejected so monitors can count
/// traffic they do not understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806`.
    ARP,
    /// S-ARP, the signed ARP variant deployed by the S-ARP scheme. Real
    /// S-ARP extends the ARP payload; we give it a distinct ethertype in the
    /// experimental space (`0x88b5`, IEEE 802 local experimental 1) so that
    /// legacy hosts visibly drop it, matching the paper's interoperability
    /// discussion.
    SArp,
    /// TARP, the ticket-based authenticated ARP variant (IEEE 802 local
    /// experimental 2, `0x88b6`).
    Tarp,
    /// Any other value, carried through verbatim.
    Other(u16),
}

impl EtherType {
    /// Returns the 16-bit wire value.
    pub const fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::ARP => 0x0806,
            EtherType::SArp => 0x88b5,
            EtherType::Tarp => 0x88b6,
            EtherType::Other(v) => v,
        }
    }

    /// Builds an `EtherType` from the 16-bit wire value.
    pub const fn from_u16(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::ARP,
            0x88b5 => EtherType::SArp,
            0x88b6 => EtherType::Tarp,
            other => EtherType::Other(other),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::ARP => write!(f, "ARP"),
            EtherType::SArp => write!(f, "S-ARP"),
            EtherType::Tarp => write!(f, "TARP"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        EtherType::from_u16(value)
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> Self {
        value.to_u16()
    }
}

/// An Ethernet II frame: header plus owned payload.
///
/// The preamble and FCS are physical-layer artifacts a host NIC never hands
/// to software, so they are not modelled; padding of short payloads *is*
/// applied by [`EthernetFrame::encode`] because receivers genuinely see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination hardware address.
    pub dst: MacAddr,
    /// Source hardware address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload bytes (unpadded).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Creates a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        EthernetFrame { dst, src, ethertype, payload }
    }

    /// Serializes the frame, zero-padding the payload to the 46-byte minimum.
    pub fn encode(&self) -> Vec<u8> {
        let payload_len = self.payload.len().max(ETHERNET_MIN_PAYLOAD);
        let mut buf = Vec::with_capacity(ETHERNET_HEADER_LEN + payload_len);
        buf.extend_from_slice(self.dst.as_bytes());
        buf.extend_from_slice(self.src.as_bytes());
        buf.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.payload);
        buf.resize(ETHERNET_HEADER_LEN + payload_len, 0);
        buf
    }

    /// Parses a frame from raw bytes. The payload keeps any padding, since a
    /// receiver cannot distinguish padding from data without the L3 length.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] when `buf` is shorter than the
    /// 14-byte header, and [`ParseError::InvalidField`] when the payload
    /// exceeds the standard MTU.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                got: buf.len(),
            });
        }
        let payload = &buf[ETHERNET_HEADER_LEN..];
        if payload.len() > ETHERNET_MAX_PAYLOAD {
            return Err(ParseError::InvalidField {
                what: "ethernet",
                field: "payload_len",
                value: payload.len() as u64,
            });
        }
        Ok(EthernetFrame {
            dst: MacAddr::parse(&buf[0..6])?,
            src: MacAddr::parse(&buf[6..12])?,
            ethertype: EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]])),
            payload: payload.to_vec(),
        })
    }

    /// Total on-wire length after padding.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len().max(ETHERNET_MIN_PAYLOAD)
    }

    /// True when addressed to the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        self.dst.is_broadcast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Ipv4,
            vec![0xaa; 64],
        )
    }

    #[test]
    fn encode_parse_roundtrip() {
        let frame = sample();
        let parsed = EthernetFrame::parse(&frame.encode()).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn short_payload_is_padded() {
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_index(1),
            EtherType::ARP,
            vec![1, 2, 3],
        );
        let bytes = frame.encode();
        assert_eq!(bytes.len(), ETHERNET_HEADER_LEN + ETHERNET_MIN_PAYLOAD);
        assert_eq!(&bytes[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + 3], &[1, 2, 3]);
        assert!(bytes[ETHERNET_HEADER_LEN + 3..].iter().all(|&b| b == 0));
        // The parsed payload includes padding, as on a real NIC.
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed.payload.len(), ETHERNET_MIN_PAYLOAD);
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(matches!(
            EthernetFrame::parse(&[0u8; 13]),
            Err(ParseError::Truncated { what: "ethernet", .. })
        ));
    }

    #[test]
    fn rejects_oversized_payload() {
        let frame =
            EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4, vec![0; 2000]);
        assert!(EthernetFrame::parse(&frame.encode()).is_err());
    }

    #[test]
    fn ethertype_u16_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x88b5, 0x88b6, 0x1234] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
        assert_eq!(EtherType::from_u16(0x0806), EtherType::ARP);
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
    }

    #[test]
    fn broadcast_detection() {
        let mut frame = sample();
        assert!(!frame.is_broadcast());
        frame.dst = MacAddr::BROADCAST;
        assert!(frame.is_broadcast());
    }

    #[test]
    fn wire_len_accounts_for_padding() {
        let small = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::ARP, vec![0; 10]);
        assert_eq!(small.wire_len(), 60);
        let big = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4, vec![0; 1000]);
        assert_eq!(big.wire_len(), 1014);
    }
}
