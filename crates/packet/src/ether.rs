//! Ethernet II framing.

use std::fmt;

use crate::error::ParseError;
use crate::mac::MacAddr;

/// Length of the Ethernet II header (destination, source, ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;
/// Minimum payload length; shorter payloads are zero-padded on the wire.
pub const ETHERNET_MIN_PAYLOAD: usize = 46;
/// Maximum standard payload length (no jumbo frames).
pub const ETHERNET_MAX_PAYLOAD: usize = 1500;
/// Length of one 802.1Q/802.1ad tag (TPID + TCI).
pub const ETHERNET_VLAN_TAG_LEN: usize = 4;

/// The EtherType field of an Ethernet II frame.
///
/// Unknown values are preserved rather than rejected so monitors can count
/// traffic they do not understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806`.
    ARP,
    /// S-ARP, the signed ARP variant deployed by the S-ARP scheme. Real
    /// S-ARP extends the ARP payload; we give it a distinct ethertype in the
    /// experimental space (`0x88b5`, IEEE 802 local experimental 1) so that
    /// legacy hosts visibly drop it, matching the paper's interoperability
    /// discussion.
    SArp,
    /// TARP, the ticket-based authenticated ARP variant (IEEE 802 local
    /// experimental 2, `0x88b6`).
    Tarp,
    /// 802.1Q VLAN tag (`0x8100`). Parsers treat this as a tag to unwrap,
    /// not a payload protocol; it only appears as a frame's `ethertype`
    /// when the tag itself is truncated.
    Vlan,
    /// 802.1ad provider (QinQ) tag (`0x88a8`), unwrapped like [`Vlan`].
    ///
    /// [`Vlan`]: EtherType::Vlan
    QinQ,
    /// Any other value, carried through verbatim.
    Other(u16),
}

impl EtherType {
    /// Returns the 16-bit wire value.
    pub const fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::ARP => 0x0806,
            EtherType::SArp => 0x88b5,
            EtherType::Tarp => 0x88b6,
            EtherType::Vlan => 0x8100,
            EtherType::QinQ => 0x88a8,
            EtherType::Other(v) => v,
        }
    }

    /// Builds an `EtherType` from the 16-bit wire value.
    pub const fn from_u16(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::ARP,
            0x88b5 => EtherType::SArp,
            0x88b6 => EtherType::Tarp,
            0x8100 => EtherType::Vlan,
            0x88a8 => EtherType::QinQ,
            other => EtherType::Other(other),
        }
    }

    /// True for the two tag TPIDs (802.1Q and 802.1ad) that wrap another
    /// ethertype rather than carrying a payload protocol themselves.
    pub const fn is_vlan_tag(self) -> bool {
        matches!(self, EtherType::Vlan | EtherType::QinQ)
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::ARP => write!(f, "ARP"),
            EtherType::SArp => write!(f, "S-ARP"),
            EtherType::Tarp => write!(f, "TARP"),
            EtherType::Vlan => write!(f, "802.1Q"),
            EtherType::QinQ => write!(f, "802.1ad"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        EtherType::from_u16(value)
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> Self {
        value.to_u16()
    }
}

/// An Ethernet II frame: header plus owned payload.
///
/// The preamble and FCS are physical-layer artifacts a host NIC never hands
/// to software, so they are not modelled; padding of short payloads *is*
/// applied by [`EthernetFrame::encode`] because receivers genuinely see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination hardware address.
    pub dst: MacAddr,
    /// Source hardware address.
    pub src: MacAddr,
    /// Payload protocol (the innermost ethertype when tags are present).
    pub ethertype: EtherType,
    /// Outermost 802.1Q/802.1ad VLAN id, when the frame was tagged.
    pub vlan: Option<u16>,
    /// Payload bytes (unpadded).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Creates an untagged frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        EthernetFrame { dst, src, ethertype, vlan: None, payload }
    }

    /// Tags the frame with an 802.1Q VLAN id (low 12 bits are kept).
    #[must_use]
    pub fn with_vlan(mut self, vid: u16) -> Self {
        self.vlan = Some(vid & 0x0FFF);
        self
    }

    /// Serializes the frame, zero-padding the payload to the 46-byte minimum
    /// and emitting a single 802.1Q tag when [`vlan`](Self::vlan) is set.
    ///
    /// A shim over the in-place [`WireEmit`](crate::WireEmit) writer; TX
    /// hot paths emit directly into pool buffers instead.
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::emit_to_vec(self)
    }

    /// Parses a frame from raw bytes, unwrapping any 802.1Q/802.1ad tags.
    /// The payload keeps any padding, since a receiver cannot distinguish
    /// padding from data without the L3 length.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] when `buf` is shorter than the
    /// 14-byte header (or ends inside a VLAN tag), and
    /// [`ParseError::InvalidField`] when the payload exceeds the standard
    /// MTU. Use [`EthernetFrame::parse_lenient`] to accept jumbo payloads.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        EthernetView::parse_strict(buf).map(|view| view.to_frame())
    }

    /// Like [`EthernetFrame::parse`] but accepts payloads over the standard
    /// MTU (jumbo frames), as real captures contain them.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] when `buf` is shorter than the
    /// 14-byte header or ends inside a VLAN tag.
    pub fn parse_lenient(buf: &[u8]) -> Result<Self, ParseError> {
        EthernetView::parse(buf).map(|view| view.to_frame())
    }

    /// Total on-wire length after padding.
    pub fn wire_len(&self) -> usize {
        let tag_len = if self.vlan.is_some() { ETHERNET_VLAN_TAG_LEN } else { 0 };
        ETHERNET_HEADER_LEN + tag_len + self.payload.len().max(ETHERNET_MIN_PAYLOAD)
    }

    /// True when addressed to the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        self.dst.is_broadcast()
    }
}

/// A borrowed, zero-copy view of an Ethernet II frame.
///
/// [`EthernetFrame::parse`] clones the payload into an owned `Vec` on every
/// call, which is fine inside the simulator but dominates the ingest hot
/// path. The view validates the same framing (including 802.1Q/802.1ad tag
/// unwrapping) while borrowing everything from the input buffer, so a
/// steady-state detector parses frames without touching the allocator.
#[derive(Debug, Clone, Copy)]
pub struct EthernetView<'a> {
    buf: &'a [u8],
    payload_at: usize,
    ethertype: EtherType,
    vlan: Option<u16>,
}

impl<'a> EthernetView<'a> {
    /// Parses a frame in lenient mode: VLAN tags are unwrapped, jumbo
    /// payloads are accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] when `buf` is shorter than the
    /// 14-byte header or ends inside a VLAN tag.
    pub fn parse(buf: &'a [u8]) -> Result<Self, ParseError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                got: buf.len(),
            });
        }
        // Walk the (possibly QinQ-stacked) tags: each one replaces the
        // ethertype at `at` with a TCI + inner ethertype 4 bytes later.
        let mut at = ETHERNET_HEADER_LEN - 2;
        let mut raw = u16::from_be_bytes([buf[at], buf[at + 1]]);
        let mut vlan = None;
        while EtherType::from_u16(raw).is_vlan_tag() {
            if buf.len() < at + 2 + ETHERNET_VLAN_TAG_LEN {
                return Err(ParseError::Truncated {
                    what: "ethernet.vlan",
                    needed: at + 2 + ETHERNET_VLAN_TAG_LEN,
                    got: buf.len(),
                });
            }
            let tci = u16::from_be_bytes([buf[at + 2], buf[at + 3]]);
            vlan.get_or_insert(tci & 0x0FFF);
            at += ETHERNET_VLAN_TAG_LEN;
            raw = u16::from_be_bytes([buf[at], buf[at + 1]]);
        }
        Ok(EthernetView { buf, payload_at: at + 2, ethertype: EtherType::from_u16(raw), vlan })
    }

    /// Parses a frame, rejecting payloads over the standard MTU like the
    /// owned [`EthernetFrame::parse`] does.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] on a short buffer and
    /// [`ParseError::InvalidField`] when the payload exceeds
    /// [`ETHERNET_MAX_PAYLOAD`].
    pub fn parse_strict(buf: &'a [u8]) -> Result<Self, ParseError> {
        let view = Self::parse(buf)?;
        if view.payload().len() > ETHERNET_MAX_PAYLOAD {
            return Err(ParseError::InvalidField {
                what: "ethernet",
                field: "payload_len",
                value: view.payload().len() as u64,
            });
        }
        Ok(view)
    }

    /// Destination hardware address.
    pub fn dst(&self) -> MacAddr {
        MacAddr::new(self.buf[0..6].try_into().expect("6 bytes"))
    }

    /// Source hardware address.
    pub fn src(&self) -> MacAddr {
        MacAddr::new(self.buf[6..12].try_into().expect("6 bytes"))
    }

    /// Payload protocol (the innermost ethertype when tags are present).
    pub fn ethertype(&self) -> EtherType {
        self.ethertype
    }

    /// Outermost VLAN id, when the frame was tagged.
    pub fn vlan(&self) -> Option<u16> {
        self.vlan
    }

    /// Payload bytes after the header and any tags, padding included.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.payload_at..]
    }

    /// Header length including any tags.
    pub fn header_len(&self) -> usize {
        self.payload_at
    }

    /// True when addressed to the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        self.buf[0..6] == [0xFF; 6]
    }

    /// Copies the view into an owned [`EthernetFrame`].
    pub fn to_frame(&self) -> EthernetFrame {
        EthernetFrame {
            dst: self.dst(),
            src: self.src(),
            ethertype: self.ethertype,
            vlan: self.vlan,
            payload: self.payload().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Ipv4,
            vec![0xaa; 64],
        )
    }

    #[test]
    fn encode_parse_roundtrip() {
        let frame = sample();
        let parsed = EthernetFrame::parse(&frame.encode()).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn short_payload_is_padded() {
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_index(1),
            EtherType::ARP,
            vec![1, 2, 3],
        );
        let bytes = frame.encode();
        assert_eq!(bytes.len(), ETHERNET_HEADER_LEN + ETHERNET_MIN_PAYLOAD);
        assert_eq!(&bytes[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + 3], &[1, 2, 3]);
        assert!(bytes[ETHERNET_HEADER_LEN + 3..].iter().all(|&b| b == 0));
        // The parsed payload includes padding, as on a real NIC.
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed.payload.len(), ETHERNET_MIN_PAYLOAD);
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(matches!(
            EthernetFrame::parse(&[0u8; 13]),
            Err(ParseError::Truncated { what: "ethernet", .. })
        ));
    }

    #[test]
    fn rejects_oversized_payload() {
        let frame =
            EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4, vec![0; 2000]);
        assert!(EthernetFrame::parse(&frame.encode()).is_err());
    }

    #[test]
    fn ethertype_u16_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x88b5, 0x88b6, 0x8100, 0x88a8, 0x1234] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
        assert_eq!(EtherType::from_u16(0x0806), EtherType::ARP);
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x8100), EtherType::Vlan);
        assert_eq!(EtherType::from_u16(0x88a8), EtherType::QinQ);
        assert!(EtherType::Vlan.is_vlan_tag() && EtherType::QinQ.is_vlan_tag());
        assert!(!EtherType::ARP.is_vlan_tag());
    }

    #[test]
    fn vlan_tag_roundtrips_and_matches_golden_bytes() {
        let frame = EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::ARP,
            vec![0xaa; 46],
        )
        .with_vlan(0x123);
        let bytes = frame.encode();
        assert_eq!(bytes.len(), ETHERNET_HEADER_LEN + ETHERNET_VLAN_TAG_LEN + 46);
        assert_eq!(frame.wire_len(), bytes.len());
        // 802.1Q TPID then TCI, then the real ethertype.
        assert_eq!(&bytes[12..14], &[0x81, 0x00]);
        assert_eq!(&bytes[14..16], &[0x01, 0x23]);
        assert_eq!(&bytes[16..18], &[0x08, 0x06]);
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed, frame);
        assert_eq!(parsed.vlan, Some(0x123));
        assert_eq!(parsed.ethertype, EtherType::ARP);
    }

    #[test]
    fn qinq_stacks_unwrap_to_outermost_vid() {
        // Hand-spliced 802.1ad outer + 802.1Q inner tag: the outer service
        // tag's VID wins, both tags are skipped.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MacAddr::BROADCAST.as_bytes());
        bytes.extend_from_slice(MacAddr::from_index(7).as_bytes());
        bytes.extend_from_slice(&[0x88, 0xa8, 0x0F, 0xFE]); // S-tag, VID 0xFFE
        bytes.extend_from_slice(&[0x81, 0x00, 0x00, 0x02]); // C-tag, VID 2
        bytes.extend_from_slice(&[0x08, 0x06]);
        bytes.extend_from_slice(&[0u8; 46]);
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed.vlan, Some(0xFFE));
        assert_eq!(parsed.ethertype, EtherType::ARP);
        assert_eq!(parsed.payload.len(), 46);
    }

    #[test]
    fn truncated_vlan_tag_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&[0u8; 12]);
        bytes.extend_from_slice(&[0x81, 0x00, 0x00]); // tag cut mid-TCI
        assert!(matches!(
            EthernetFrame::parse(&bytes),
            Err(ParseError::Truncated { what: "ethernet.vlan", .. })
        ));
    }

    #[test]
    fn lenient_parse_accepts_jumbo_payloads() {
        let frame =
            EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4, vec![0x55; 4000]);
        let bytes = frame.encode();
        assert!(EthernetFrame::parse(&bytes).is_err(), "strict parse still rejects jumbos");
        let parsed = EthernetFrame::parse_lenient(&bytes).unwrap();
        assert_eq!(parsed.payload.len(), 4000);
    }

    #[test]
    fn view_agrees_with_owned_parse() {
        for frame in [
            sample(),
            sample().with_vlan(42),
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::from_index(3), EtherType::ARP, vec![]),
        ] {
            let bytes = frame.encode();
            let view = EthernetView::parse(&bytes).unwrap();
            let owned = EthernetFrame::parse(&bytes).unwrap();
            assert_eq!(view.dst(), owned.dst);
            assert_eq!(view.src(), owned.src);
            assert_eq!(view.ethertype(), owned.ethertype);
            assert_eq!(view.vlan(), owned.vlan);
            assert_eq!(view.payload(), &owned.payload[..]);
            assert_eq!(view.is_broadcast(), owned.is_broadcast());
            assert_eq!(view.header_len(), bytes.len() - owned.payload.len());
            assert_eq!(view.to_frame(), owned);
        }
    }

    #[test]
    fn broadcast_detection() {
        let mut frame = sample();
        assert!(!frame.is_broadcast());
        frame.dst = MacAddr::BROADCAST;
        assert!(frame.is_broadcast());
    }

    #[test]
    fn wire_len_accounts_for_padding() {
        let small = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::ARP, vec![0; 10]);
        assert_eq!(small.wire_len(), 60);
        let big = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4, vec![0; 1000]);
        assert_eq!(big.wire_len(), 1014);
    }
}
