//! ICMP echo request/reply, the probe primitive used by active-verification
//! schemes and by background ping workloads.

use crate::checksum::internet_checksum;
use crate::error::ParseError;

/// ICMP message types used in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Echo reply (type 0).
    EchoReply,
    /// Echo request (type 8).
    EchoRequest,
}

impl IcmpType {
    /// Returns the wire type byte.
    pub const fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::EchoRequest => 8,
        }
    }

    /// Builds from the wire type byte.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::InvalidField`] for ICMP types other than echo
    /// request/reply (nothing else is generated in the simulator).
    pub fn from_u8(value: u8) -> Result<Self, ParseError> {
        match value {
            0 => Ok(IcmpType::EchoReply),
            8 => Ok(IcmpType::EchoRequest),
            other => Err(ParseError::InvalidField {
                what: "icmp",
                field: "type",
                value: u64::from(other),
            }),
        }
    }
}

/// An ICMP echo message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Echo request or reply.
    pub icmp_type: IcmpType,
    /// Identifier distinguishing ping sessions.
    pub identifier: u16,
    /// Sequence number within a session.
    pub sequence: u16,
    /// Echo payload.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// Creates an echo request.
    pub fn echo_request(identifier: u16, sequence: u16, payload: Vec<u8>) -> Self {
        IcmpMessage { icmp_type: IcmpType::EchoRequest, identifier, sequence, payload }
    }

    /// Creates the reply answering `request`, echoing its payload.
    pub fn reply_to(request: &IcmpMessage) -> Self {
        IcmpMessage {
            icmp_type: IcmpType::EchoReply,
            identifier: request.identifier,
            sequence: request.sequence,
            payload: request.payload.clone(),
        }
    }

    /// Serializes with checksum.
    ///
    /// A shim over the in-place [`WireEmit`](crate::WireEmit) writer; TX
    /// hot paths emit directly into pool buffers instead.
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::emit_to_vec(self)
    }

    /// Parses and verifies the checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on truncation, unsupported type/code, or a
    /// checksum mismatch.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < 8 {
            return Err(ParseError::Truncated { what: "icmp", needed: 8, got: buf.len() });
        }
        if internet_checksum(buf) != 0 {
            let found = u16::from_be_bytes([buf[2], buf[3]]);
            return Err(ParseError::BadChecksum { what: "icmp", found, expected: 0 });
        }
        if buf[1] != 0 {
            return Err(ParseError::InvalidField {
                what: "icmp",
                field: "code",
                value: u64::from(buf[1]),
            });
        }
        Ok(IcmpMessage {
            icmp_type: IcmpType::from_u8(buf[0])?,
            identifier: u16::from_be_bytes([buf[4], buf[5]]),
            sequence: u16::from_be_bytes([buf[6], buf[7]]),
            payload: buf[8..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let req = IcmpMessage::echo_request(0x1234, 7, b"probe".to_vec());
        let parsed = IcmpMessage::parse(&req.encode()).unwrap();
        assert_eq!(parsed, req);
        let rep = IcmpMessage::reply_to(&req);
        assert_eq!(rep.icmp_type, IcmpType::EchoReply);
        assert_eq!(rep.identifier, req.identifier);
        assert_eq!(rep.sequence, req.sequence);
        assert_eq!(rep.payload, req.payload);
        assert_eq!(IcmpMessage::parse(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn corrupt_message_detected() {
        let req = IcmpMessage::echo_request(1, 1, vec![0; 12]);
        let mut bytes = req.encode();
        bytes[6] ^= 0x80;
        assert!(matches!(
            IcmpMessage::parse(&bytes),
            Err(ParseError::BadChecksum { what: "icmp", .. })
        ));
    }

    #[test]
    fn rejects_unsupported_type() {
        let req = IcmpMessage::echo_request(1, 1, vec![]);
        let mut bytes = req.encode();
        bytes[0] = 3; // destination unreachable
                      // Fix up checksum so only the type check fires.
        bytes[2] = 0;
        bytes[3] = 0;
        let ck = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            IcmpMessage::parse(&bytes),
            Err(ParseError::InvalidField { field: "type", .. })
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(IcmpMessage::parse(&[8, 0, 0]).is_err());
    }

    #[test]
    fn empty_payload_ok() {
        let req = IcmpMessage::echo_request(9, 9, vec![]);
        assert_eq!(IcmpMessage::parse(&req.encode()).unwrap().payload, Vec::<u8>::new());
    }
}
