//! A minimal TCP header codec.
//!
//! The simulator does not implement a TCP state machine — the workloads in
//! the paper's class of evaluation are ARP/DHCP/UDP-shaped — but detection
//! schemes still need to *parse* TCP traffic they sniff (e.g. ActiveProbe
//! variants probe with TCP SYNs in the literature), so the header codec is
//! provided and fully tested.

use std::fmt;

use crate::checksum::Checksum;
use crate::error::ParseError;
use crate::ipv4::Ipv4Addr;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Creates flags from the raw wire byte (lower 6 bits significant).
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits & 0x3f)
    }

    /// Returns the raw wire byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// True when every flag in `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (bit, name) in
            [(0x01u8, "FIN"), (0x02, "SYN"), (0x04, "RST"), (0x08, "PSH"), (0x10, "ACK")]
        {
            if self.0 & bit != 0 {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// A TCP segment (header without options, plus owned payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Creates a bare SYN, as used by probing schemes.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 512,
            payload: Vec::new(),
        }
    }

    /// Serializes header plus payload with a pseudo-header checksum.
    ///
    /// A shim over the in-place [`WireEmit`](crate::WireEmit) writer; TX
    /// hot paths emit directly into pool buffers instead.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        crate::wire::emit_to_vec(&self.emitter(src, dst))
    }

    /// Parses a segment, verifying the pseudo-header checksum. Options are
    /// skipped (the data offset is honoured).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on truncation, a bad data offset, or a
    /// checksum mismatch.
    pub fn parse(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "tcp",
                needed: TCP_HEADER_LEN,
                got: buf.len(),
            });
        }
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > buf.len() {
            return Err(ParseError::InvalidField {
                what: "tcp",
                field: "data_offset",
                value: data_offset as u64,
            });
        }
        let mut ck = tcp_pseudo_header(src, dst, buf.len() as u16);
        ck.add_bytes(buf);
        if ck.finish() != 0 {
            let found = u16::from_be_bytes([buf[16], buf[17]]);
            return Err(ParseError::BadChecksum { what: "tcp", found, expected: 0 });
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags::from_bits(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            payload: buf[data_offset..].to_vec(),
        })
    }
}

pub(crate) fn tcp_pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, len: u16) -> Checksum {
    let mut ck = Checksum::new();
    ck.add_u32(src.to_u32());
    ck.add_u32(dst.to_u32());
    ck.add_u16(6); // protocol
    ck.add_u16(len);
    ck
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 2);

    #[test]
    fn syn_roundtrip() {
        let syn = TcpSegment::syn(49152, 80, 0x1234_5678);
        let parsed = TcpSegment::parse(&syn.encode(SRC, DST), SRC, DST).unwrap();
        assert_eq!(parsed, syn);
        assert!(parsed.flags.contains(TcpFlags::SYN));
        assert!(!parsed.flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn data_segment_roundtrip() {
        let seg = TcpSegment {
            src_port: 80,
            dst_port: 49152,
            seq: 1,
            ack: 2,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 65535,
            payload: b"HTTP/1.1 200 OK".to_vec(),
        };
        let parsed = TcpSegment::parse(&seg.encode(SRC, DST), SRC, DST).unwrap();
        assert_eq!(parsed, seg);
    }

    #[test]
    fn corrupt_segment_detected() {
        let seg = TcpSegment::syn(1, 2, 3);
        let mut bytes = seg.encode(SRC, DST);
        bytes[4] ^= 0xff;
        assert!(matches!(
            TcpSegment::parse(&bytes, SRC, DST),
            Err(ParseError::BadChecksum { what: "tcp", .. })
        ));
    }

    #[test]
    fn checksum_binds_pseudo_header() {
        let seg = TcpSegment::syn(1, 2, 3);
        let bytes = seg.encode(SRC, DST);
        // The one's-complement sum is order-independent, so swapping src and
        // dst would NOT change it; substituting a different address does.
        assert!(TcpSegment::parse(&bytes, SRC, Ipv4Addr::new(192, 168, 0, 3)).is_err());
    }

    #[test]
    fn rejects_bad_data_offset() {
        let seg = TcpSegment::syn(1, 2, 3);
        let mut bytes = seg.encode(SRC, DST);
        bytes[12] = 0x10; // offset 4 words < 5
        assert!(TcpSegment::parse(&bytes, SRC, DST).is_err());
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "(none)");
    }
}
