//! IPv4 addresses, CIDR prefixes, and the IPv4 header.

use std::fmt;
use std::str::FromStr;

use crate::checksum::{internet_checksum, Checksum};
use crate::error::ParseError;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// A 32-bit IPv4 address.
///
/// A local type (rather than `std::net::Ipv4Addr`) so the whole workspace
/// shares one set of trait impls and helpers tuned for simulation (indexed
/// generation, subnet math).
///
/// ```rust
/// use arpshield_packet::Ipv4Addr;
///
/// let a: Ipv4Addr = "192.168.88.254".parse().unwrap();
/// assert_eq!(a.octets(), [192, 168, 88, 254]);
/// assert_eq!(a.to_string(), "192.168.88.254");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(u32);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);
    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr(u32::MAX);

    /// Creates an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Creates an address from its 32-bit big-endian value.
    pub const fn from_u32(value: u32) -> Self {
        Ipv4Addr(value)
    }

    /// Returns the 32-bit big-endian value.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// Returns the four octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Parses an address from the first four bytes of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if fewer than four bytes are given.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < 4 {
            return Err(ParseError::Truncated { what: "ipv4 addr", needed: 4, got: buf.len() });
        }
        Ok(Ipv4Addr(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]])))
    }

    /// True for `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }

    /// True for `255.255.255.255`.
    pub const fn is_limited_broadcast(self) -> bool {
        self.0 == u32::MAX
    }

    /// True for multicast space `224.0.0.0/4`.
    pub const fn is_multicast(self) -> bool {
        self.0 >> 28 == 0b1110
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl From<[u8; 4]> for Ipv4Addr {
    fn from(o: [u8; 4]) -> Self {
        Ipv4Addr::new(o[0], o[1], o[2], o[3])
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v)
    }
}

impl FromStr for Ipv4Addr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or(ParseError::InvalidField {
                what: "ipv4 addr",
                field: "text",
                value: 0,
            })?;
            *slot = part.parse().map_err(|_| ParseError::InvalidField {
                what: "ipv4 addr",
                field: "octet",
                value: 0,
            })?;
        }
        if parts.next().is_some() {
            return Err(ParseError::InvalidField { what: "ipv4 addr", field: "text", value: 0 });
        }
        Ok(octets.into())
    }
}

/// An IPv4 network in CIDR form, e.g. `10.0.0.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Cidr {
    network: Ipv4Addr,
    prefix: u8,
}

impl Ipv4Cidr {
    /// Creates a CIDR block, masking `addr` down to its network address.
    ///
    /// # Panics
    ///
    /// Panics if `prefix > 32`.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Self {
        assert!(prefix <= 32, "CIDR prefix must be at most 32, got {prefix}");
        Ipv4Cidr { network: Ipv4Addr(addr.to_u32() & Self::mask_u32(prefix)), prefix }
    }

    const fn mask_u32(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// Returns the network address.
    pub const fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// Returns the prefix length.
    pub const fn prefix(&self) -> u8 {
        self.prefix
    }

    /// Returns the subnet mask as an address.
    pub const fn mask(&self) -> Ipv4Addr {
        Ipv4Addr(Self::mask_u32(self.prefix))
    }

    /// Returns the directed broadcast address of the block.
    pub const fn broadcast(&self) -> Ipv4Addr {
        Ipv4Addr(self.network.to_u32() | !Self::mask_u32(self.prefix))
    }

    /// True when `addr` falls within the block.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        addr.to_u32() & Self::mask_u32(self.prefix) == self.network.to_u32()
    }

    /// Returns the `n`-th usable host address (1-based; 0 would be the
    /// network address itself). Returns `None` past the directed broadcast.
    pub fn host(&self, n: u32) -> Option<Ipv4Addr> {
        let candidate = self.network.to_u32().checked_add(n)?;
        let addr = Ipv4Addr(candidate);
        if self.contains(addr) && addr != self.broadcast() && n != 0 {
            Some(addr)
        } else {
            None
        }
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.prefix)
    }
}

/// IP protocol numbers carried in the IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP, protocol 1.
    Icmp,
    /// TCP, protocol 6.
    Tcp,
    /// UDP, protocol 17.
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// Returns the 8-bit wire value.
    pub const fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Builds from the 8-bit wire value.
    pub const fn from_u8(value: u8) -> Self {
        match value {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// An IPv4 packet (header without options, plus owned payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Datagram identification field.
    pub identification: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Creates a packet with the default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Vec<u8>) -> Self {
        Ipv4Packet { ttl: 64, protocol, src, dst, identification: 0, payload }
    }

    /// Serializes header plus payload, computing the header checksum.
    ///
    /// A shim over the in-place [`WireEmit`](crate::WireEmit) writer; TX
    /// hot paths emit directly into pool buffers instead.
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::emit_to_vec(self)
    }

    /// Parses a packet, verifying version, IHL, length, and header checksum.
    ///
    /// Ethernet padding past the IP total length is trimmed.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on truncation, version/IHL mismatch, a total
    /// length inconsistent with the buffer, or a failed header checksum.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated {
                what: "ipv4",
                needed: IPV4_HEADER_LEN,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ParseError::InvalidField {
                what: "ipv4",
                field: "version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            // Options are not used anywhere in the simulator; reject rather
            // than silently misparse.
            return Err(ParseError::InvalidField { what: "ipv4", field: "ihl", value: ihl as u64 });
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < IPV4_HEADER_LEN || total_len > buf.len() {
            return Err(ParseError::InvalidField {
                what: "ipv4",
                field: "total_length",
                value: total_len as u64,
            });
        }
        let computed = internet_checksum(&buf[..IPV4_HEADER_LEN]);
        if computed != 0 {
            let found = u16::from_be_bytes([buf[10], buf[11]]);
            let mut ck = Checksum::new();
            ck.add_bytes(&buf[..10]);
            ck.add_bytes(&buf[12..IPV4_HEADER_LEN]);
            return Err(ParseError::BadChecksum { what: "ipv4", found, expected: ck.finish() });
        }
        Ok(Ipv4Packet {
            ttl: buf[8],
            protocol: IpProtocol::from_u8(buf[9]),
            src: Ipv4Addr::parse(&buf[12..16])?,
            dst: Ipv4Addr::parse(&buf[16..20])?,
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            payload: buf[IPV4_HEADER_LEN..total_len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_text_roundtrip() {
        let a: Ipv4Addr = "10.0.3.200".parse().unwrap();
        assert_eq!(a.to_string(), "10.0.3.200");
        assert!("10.0.3".parse::<Ipv4Addr>().is_err());
        assert!("10.0.3.200.1".parse::<Ipv4Addr>().is_err());
        assert!("10.0.3.999".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn cidr_membership_and_broadcast() {
        let net = Ipv4Cidr::new("192.168.88.17".parse().unwrap(), 24);
        assert_eq!(net.network().to_string(), "192.168.88.0");
        assert_eq!(net.mask().to_string(), "255.255.255.0");
        assert_eq!(net.broadcast().to_string(), "192.168.88.255");
        assert!(net.contains("192.168.88.254".parse().unwrap()));
        assert!(!net.contains("192.168.89.1".parse().unwrap()));
        assert_eq!(net.to_string(), "192.168.88.0/24");
    }

    #[test]
    fn cidr_host_enumeration() {
        let net = Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 30);
        assert_eq!(net.host(0), None); // network address
        assert_eq!(net.host(1), Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(net.host(2), Some(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(net.host(3), None); // broadcast
        assert_eq!(net.host(4), None); // outside
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn cidr_rejects_long_prefix() {
        let _ = Ipv4Cidr::new(Ipv4Addr::UNSPECIFIED, 33);
    }

    #[test]
    fn packet_roundtrip() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            vec![9; 33],
        );
        let parsed = Ipv4Packet::parse(&pkt.encode()).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn trims_ethernet_padding() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProtocol::Icmp,
            vec![7; 4],
        );
        let mut bytes = pkt.encode();
        bytes.extend_from_slice(&[0u8; 22]); // simulated L2 padding
        let parsed = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.payload, vec![7; 4]);
    }

    #[test]
    fn detects_corrupted_header() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProtocol::Udp,
            vec![],
        );
        let mut bytes = pkt.encode();
        bytes[8] ^= 0xff; // flip TTL
        assert!(matches!(
            Ipv4Packet::parse(&bytes),
            Err(ParseError::BadChecksum { what: "ipv4", .. })
        ));
    }

    #[test]
    fn rejects_wrong_version_and_options() {
        let pkt =
            Ipv4Packet::new(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, IpProtocol::Udp, vec![]);
        let mut v6 = pkt.encode();
        v6[0] = 0x65;
        assert!(Ipv4Packet::parse(&v6).is_err());
        let mut opts = pkt.encode();
        opts[0] = 0x46; // IHL 6 => options present
        assert!(Ipv4Packet::parse(&opts).is_err());
    }

    #[test]
    fn protocol_u8_roundtrip() {
        for v in [1u8, 6, 17, 89] {
            assert_eq!(IpProtocol::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(Ipv4Addr::UNSPECIFIED.is_unspecified());
        assert!(Ipv4Addr::BROADCAST.is_limited_broadcast());
        assert!(Ipv4Addr::new(224, 0, 0, 251).is_multicast());
        assert!(!Ipv4Addr::new(10, 1, 1, 1).is_multicast());
    }
}
