//! Parse errors shared by every decoder in this crate.

use std::error::Error;
use std::fmt;

/// Error returned when a byte buffer cannot be decoded as the requested
/// protocol unit.
///
/// Every decoder in this crate is total: any byte slice either parses or
/// yields a `ParseError` describing the first violated constraint. Nothing
/// panics on untrusted input, which matters because detection schemes feed
/// attacker-controlled frames straight into these parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed header of the protocol unit.
    Truncated {
        /// Protocol whose header was being decoded.
        what: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A field holds a value the decoder does not accept.
    InvalidField {
        /// Protocol whose field was being decoded.
        what: &'static str,
        /// Field name.
        field: &'static str,
        /// Offending value, widened to `u64` for display.
        value: u64,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol whose checksum failed.
        what: &'static str,
        /// Checksum found in the header.
        found: u16,
        /// Checksum recomputed over the buffer.
        expected: u16,
    },
    /// An options area was malformed (e.g. a DHCP option running past the
    /// end of the buffer).
    MalformedOptions {
        /// Protocol whose options failed to decode.
        what: &'static str,
        /// Offset at which decoding failed.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: need {needed} bytes, got {got}")
            }
            ParseError::InvalidField { what, field, value } => {
                write!(f, "invalid {what} field {field}: value {value}")
            }
            ParseError::BadChecksum { what, found, expected } => {
                write!(f, "bad {what} checksum: found {found:#06x}, expected {expected:#06x}")
            }
            ParseError::MalformedOptions { what, offset } => {
                write!(f, "malformed {what} options at offset {offset}")
            }
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::Truncated { what: "arp", needed: 28, got: 4 };
        assert_eq!(e.to_string(), "truncated arp: need 28 bytes, got 4");
        let e = ParseError::InvalidField { what: "ipv4", field: "version", value: 6 };
        assert!(e.to_string().contains("version"));
        let e = ParseError::BadChecksum { what: "udp", found: 1, expected: 2 };
        assert!(e.to_string().contains("checksum"));
        let e = ParseError::MalformedOptions { what: "dhcp", offset: 9 };
        assert!(e.to_string().contains("offset 9"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ParseError::Truncated { what: "x", needed: 1, got: 0 });
    }
}
