//! The Address Resolution Protocol (RFC 826) for IPv4-over-Ethernet.

use std::fmt;

use crate::error::ParseError;
use crate::ipv4::Ipv4Addr;
use crate::mac::MacAddr;

/// On-wire length of an IPv4-over-Ethernet ARP packet.
pub const ARP_WIRE_LEN: usize = 28;

/// The ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// `1` — who-has request.
    Request,
    /// `2` — is-at reply.
    Reply,
}

impl ArpOp {
    /// Returns the 16-bit wire value.
    pub const fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    /// Builds from the 16-bit wire value.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::InvalidField`] for codes other than 1 and 2
    /// (RARP and friends are out of scope).
    pub fn from_u16(value: u16) -> Result<Self, ParseError> {
        match value {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            other => Err(ParseError::InvalidField {
                what: "arp",
                field: "oper",
                value: u64::from(other),
            }),
        }
    }
}

impl fmt::Display for ArpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArpOp::Request => write!(f, "request"),
            ArpOp::Reply => write!(f, "reply"),
        }
    }
}

/// An ARP packet for IPv4 over Ethernet.
///
/// This is the protocol unit at the heart of the whole workspace: the
/// *claim* `sender_ip is-at sender_mac` is unauthenticated, and everything
/// in `arpshield-attacks` and `arpshield-schemes` is about forging or
/// vetting that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArpPacket {
    /// Operation: request or reply.
    pub op: ArpOp,
    /// Hardware address of the sender — the (possibly forged) claim.
    pub sender_mac: MacAddr,
    /// Protocol address of the sender — the (possibly forged) claim.
    pub sender_ip: Ipv4Addr,
    /// Hardware address of the target (zero in requests).
    pub target_mac: MacAddr,
    /// Protocol address being resolved.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a broadcast who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the is-at reply answering `request`.
    pub fn reply_to(request: &ArpPacket, my_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Builds a gratuitous ARP announcement (`sender_ip == target_ip`),
    /// as hosts legitimately emit on boot or address change — and as
    /// attackers emit to poison caches.
    pub fn gratuitous(op: ArpOp, mac: MacAddr, ip: Ipv4Addr) -> Self {
        ArpPacket {
            op,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: if matches!(op, ArpOp::Request) {
                MacAddr::ZERO
            } else {
                MacAddr::BROADCAST
            },
            target_ip: ip,
        }
    }

    /// True when this packet announces its own binding (`sender_ip ==
    /// target_ip`).
    pub fn is_gratuitous(&self) -> bool {
        self.sender_ip == self.target_ip && !self.sender_ip.is_unspecified()
    }

    /// True for an ARP probe (RFC 5227): a request with an unspecified
    /// sender IP, used for duplicate-address detection without polluting
    /// caches.
    pub fn is_probe(&self) -> bool {
        matches!(self.op, ArpOp::Request) && self.sender_ip.is_unspecified()
    }

    /// Serializes to the 28-byte wire form.
    ///
    /// A shim over the in-place [`WireEmit`](crate::WireEmit) writer; TX
    /// hot paths emit directly into pool buffers instead.
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::emit_to_vec(self)
    }

    /// Parses the 28-byte wire form, ignoring Ethernet padding beyond it.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on truncation or when hardware/protocol
    /// type and length fields are not Ethernet/IPv4.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < ARP_WIRE_LEN {
            return Err(ParseError::Truncated {
                what: "arp",
                needed: ARP_WIRE_LEN,
                got: buf.len(),
            });
        }
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        if htype != 1 {
            return Err(ParseError::InvalidField {
                what: "arp",
                field: "htype",
                value: u64::from(htype),
            });
        }
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        if ptype != 0x0800 {
            return Err(ParseError::InvalidField {
                what: "arp",
                field: "ptype",
                value: u64::from(ptype),
            });
        }
        if buf[4] != 6 {
            return Err(ParseError::InvalidField {
                what: "arp",
                field: "hlen",
                value: u64::from(buf[4]),
            });
        }
        if buf[5] != 4 {
            return Err(ParseError::InvalidField {
                what: "arp",
                field: "plen",
                value: u64::from(buf[5]),
            });
        }
        Ok(ArpPacket {
            op: ArpOp::from_u16(u16::from_be_bytes([buf[6], buf[7]]))?,
            sender_mac: MacAddr::parse(&buf[8..14])?,
            sender_ip: Ipv4Addr::parse(&buf[14..18])?,
            target_mac: MacAddr::parse(&buf[18..24])?,
            target_ip: Ipv4Addr::parse(&buf[24..28])?,
        })
    }
}

impl fmt::Display for ArpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            ArpOp::Request => {
                write!(
                    f,
                    "who-has {} tell {} ({})",
                    self.target_ip, self.sender_ip, self.sender_mac
                )
            }
            ArpOp::Reply => write!(f, "{} is-at {}", self.sender_ip, self.sender_mac),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_index(1), MacAddr::from_index(2))
    }

    #[test]
    fn request_reply_roundtrip() {
        let (a, b) = macs();
        let req = ArpPacket::request(a, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(ArpPacket::parse(&req.encode()).unwrap(), req);
        let rep = ArpPacket::reply_to(&req, b);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.sender_mac, b);
        assert_eq!(rep.target_mac, a);
        assert_eq!(ArpPacket::parse(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn encodes_to_exact_wire_length() {
        let (a, _) = macs();
        let req = ArpPacket::request(a, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 2));
        assert_eq!(req.encode().len(), ARP_WIRE_LEN);
    }

    #[test]
    fn parse_ignores_padding() {
        let (a, _) = macs();
        let req = ArpPacket::request(a, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 2));
        let mut bytes = req.encode();
        bytes.extend_from_slice(&[0u8; 18]); // Ethernet min-payload padding
        assert_eq!(ArpPacket::parse(&bytes).unwrap(), req);
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let (a, _) = macs();
        let base = ArpPacket::request(a, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 2));
        for (idx, bad) in [(1usize, 6u8), (3, 0xdd), (4, 8), (5, 16)] {
            let mut bytes = base.encode();
            bytes[idx] = bad;
            assert!(ArpPacket::parse(&bytes).is_err(), "index {idx} should be validated");
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        let (a, _) = macs();
        let mut bytes =
            ArpPacket::request(a, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 2)).encode();
        bytes[7] = 3; // RARP request
        assert!(matches!(
            ArpPacket::parse(&bytes),
            Err(ParseError::InvalidField { field: "oper", .. })
        ));
    }

    #[test]
    fn gratuitous_detection() {
        let (a, _) = macs();
        let g = ArpPacket::gratuitous(ArpOp::Reply, a, Ipv4Addr::new(10, 0, 0, 9));
        assert!(g.is_gratuitous());
        assert!(!g.is_probe());
        let req = ArpPacket::request(a, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        assert!(!req.is_gratuitous());
    }

    #[test]
    fn probe_detection() {
        let (a, _) = macs();
        let probe = ArpPacket::request(a, Ipv4Addr::UNSPECIFIED, Ipv4Addr::new(10, 0, 0, 7));
        assert!(probe.is_probe());
        assert!(!probe.is_gratuitous());
    }

    #[test]
    fn display_formats() {
        let (a, b) = macs();
        let req = ArpPacket::request(a, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        assert!(req.to_string().starts_with("who-has 10.0.0.2"));
        let rep = ArpPacket::reply_to(&req, b);
        assert!(rep.to_string().contains("is-at"));
    }
}
