//! The RFC 1071 Internet checksum used by IPv4, ICMP, UDP and TCP.

/// Incremental Internet-checksum accumulator.
///
/// Feed it header and payload slices (and pseudo-header words) in any order,
/// then call [`Checksum::finish`] for the one's-complement result.
///
/// ```rust
/// use arpshield_packet::Checksum;
///
/// let mut sum = Checksum::new();
/// sum.add_bytes(&[0x45, 0x00, 0x00, 0x1c]);
/// sum.add_u16(0x1234);
/// let _folded: u16 = sum.finish();
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checksum {
    sum: u32,
    /// High byte of a half-filled word: an odd trailing byte from
    /// [`Checksum::add_bytes`] waits here for the next call's first byte,
    /// so a buffer fed in slices sums identically at any split points.
    pending: Option<u8>,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        Checksum { sum: 0, pending: None }
    }

    /// Adds one big-endian 16-bit word.
    ///
    /// Word-granular additions (including the pseudo-header helpers) are
    /// independent of the byte stream: they do not consume or disturb a
    /// pending odd byte from [`Checksum::add_bytes`].
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Adds a 32-bit value as two 16-bit words (used for pseudo-header
    /// addresses).
    pub fn add_u32(&mut self, value: u32) {
        self.add_u16((value >> 16) as u16);
        self.add_u16((value & 0xffff) as u16);
    }

    /// Adds a byte slice. An odd trailing byte is carried into the next
    /// `add_bytes` call, so chunked feeding matches the whole-buffer sum
    /// regardless of where the splits fall; a byte still pending at
    /// [`Checksum::finish`] is zero-padded per RFC 1071.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let mut bytes = bytes;
        if let Some(high) = self.pending.take() {
            match bytes.split_first() {
                Some((low, rest)) => {
                    self.add_u16(u16::from_be_bytes([high, *low]));
                    bytes = rest;
                }
                None => {
                    self.pending = Some(high);
                    return;
                }
            }
        }
        let mut chunks = bytes.chunks_exact(2);
        for chunk in &mut chunks {
            self.add_u16(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Folds carries and returns the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(high) = self.pending.take() {
            self.add_u16(u16::from_be_bytes([high, 0]));
        }
        while self.sum >> 16 != 0 {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Computes the Internet checksum of a single buffer.
///
/// A buffer containing a correct checksum field verifies to zero:
///
/// ```rust
/// use arpshield_packet::internet_checksum;
///
/// let mut header = vec![0x45u8, 0x00, 0x00, 0x14, 0, 0, 0, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2];
/// let ck = internet_checksum(&header);
/// header[10..12].copy_from_slice(&ck.to_be_bytes());
/// assert_eq!(internet_checksum(&header), 0);
/// ```
pub fn internet_checksum(bytes: &[u8]) -> u16 {
    let mut sum = Checksum::new();
    sum.add_bytes(bytes);
    sum.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_vector() {
        // Example from RFC 1071 section 3: words 0x0001 0xf203 0xf4f5 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // The running sum is 0x2ddf0 -> folded 0xddf2 -> complement 0x220d.
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn empty_buffer_checksums_to_all_ones() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn verifying_includes_the_stored_checksum() {
        let mut buf = vec![0x12, 0x34, 0x00, 0x00, 0x56, 0x78];
        let ck = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).collect();
        let mut inc = Checksum::new();
        inc.add_bytes(&data[..100]);
        inc.add_bytes(&data[100..101]); // odd split: byte carried, not padded
        inc.add_bytes(&data[101..]);
        assert_eq!(inc.finish(), internet_checksum(&data));
        let mut even = Checksum::new();
        even.add_bytes(&data[..100]);
        even.add_bytes(&data[100..]);
        assert_eq!(even.finish(), internet_checksum(&data));
    }

    #[test]
    fn odd_splits_carry_across_calls() {
        // 0xab 0xcd fed one byte at a time must sum as the word 0xabcd,
        // not as two padded words 0xab00 + 0xcd00.
        let mut inc = Checksum::new();
        inc.add_bytes(&[0xab]);
        inc.add_bytes(&[0xcd]);
        assert_eq!(inc.finish(), internet_checksum(&[0xab, 0xcd]));
        // An empty slice between odd chunks keeps the pending byte intact.
        let mut inc = Checksum::new();
        inc.add_bytes(&[0xab]);
        inc.add_bytes(&[]);
        inc.add_bytes(&[0xcd, 0xef]);
        assert_eq!(inc.finish(), internet_checksum(&[0xab, 0xcd, 0xef]));
    }

    #[test]
    fn pending_byte_pads_at_finish() {
        let mut inc = Checksum::new();
        inc.add_bytes(&[0x12, 0x34, 0x56]);
        assert_eq!(inc.finish(), internet_checksum(&[0x12, 0x34, 0x56]));
    }

    #[test]
    fn add_u32_equals_two_words() {
        let mut a = Checksum::new();
        a.add_u32(0xc0a80001);
        let mut b = Checksum::new();
        b.add_u16(0xc0a8);
        b.add_u16(0x0001);
        assert_eq!(a.finish(), b.finish());
    }
}
