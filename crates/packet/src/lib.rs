//! Byte-accurate wire formats for the arpshield LAN simulator.
//!
//! This crate implements the encodings every other layer of arpshield speaks:
//! Ethernet II framing, ARP, IPv4, UDP, a minimal TCP header, ICMP echo, and
//! DHCP (BOOTP framing with options). Everything round-trips through plain
//! `Vec<u8>` buffers, exactly as it would appear on a real segment, so
//! detection schemes inspect the same bytes they would sniff from a NIC.
//!
//! # Example
//!
//! ```rust
//! use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr};
//!
//! # fn main() -> Result<(), arpshield_packet::ParseError> {
//! let sender = MacAddr::new([0x02, 0, 0, 0, 0, 1]);
//! let arp = ArpPacket::request(sender, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
//! let frame = EthernetFrame::new(MacAddr::BROADCAST, sender, EtherType::ARP, arp.encode());
//! let bytes = frame.encode();
//!
//! let parsed = EthernetFrame::parse(&bytes)?;
//! assert_eq!(parsed.ethertype, EtherType::ARP);
//! assert_eq!(ArpPacket::parse(&parsed.payload)?.op, ArpOp::Request);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arp;
mod checksum;
mod dhcp;
mod error;
mod ether;
mod icmp;
mod ipv4;
mod mac;
mod tcp;
mod udp;
mod wire;

pub use arp::{ArpOp, ArpPacket, ARP_WIRE_LEN};
pub use checksum::{internet_checksum, Checksum};
pub use dhcp::{
    DhcpMessage, DhcpMessageType, DhcpOp, DhcpOption, DHCP_CLIENT_PORT, DHCP_SERVER_PORT,
};
pub use error::ParseError;
pub use ether::{
    EtherType, EthernetFrame, EthernetView, ETHERNET_HEADER_LEN, ETHERNET_MAX_PAYLOAD,
    ETHERNET_MIN_PAYLOAD, ETHERNET_VLAN_TAG_LEN,
};
pub use icmp::{IcmpMessage, IcmpType};
pub use ipv4::{IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet, IPV4_HEADER_LEN};
pub use mac::MacAddr;
pub use tcp::{TcpFlags, TcpSegment, TCP_HEADER_LEN};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};
pub use wire::{
    ArpViewMut, DhcpOptionsWriter, DhcpViewMut, EthernetEmit, EthernetViewMut, IcmpViewMut,
    Ipv4Emit, Ipv4ViewMut, TcpEmit, UdpEmit, UdpViewMut, WireEmit,
};
