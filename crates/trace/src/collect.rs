//! The process-side sink: a [`TraceCollector`] gathers finished run
//! sections (from any worker thread) and exports them as a
//! deterministic [`RunManifest`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use crate::csv::csv_escape;
use crate::hist::Histogram;
use crate::json::quote;
use crate::pcapng::PcapngWriter;
use crate::record::Event;
use crate::recorder::RecordedFrame;

/// One flushed run: its label, its counters (kept structured so the
/// manifest can merge totals), its serialized JSON body, and — when a
/// capture was active — the structured histograms, events, and frames
/// behind that body, kept so the manifest can export them as pcapng
/// and CSV without re-parsing its own JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunSection {
    /// The run label chosen at [`crate::Tracer::for_current_run`] time
    /// plus any annotations.
    pub label: String,
    /// Final counter values for the run.
    pub counters: BTreeMap<String, u64>,
    /// Final histogram state for the run, by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// The run's stored events (the same ones serialized in `body`).
    pub events: Vec<Event>,
    /// Captured frames (pinned survivors plus ring remainder), sorted
    /// by id. Empty unless the collector had a capture capacity.
    pub frames: Vec<RecordedFrame>,
    /// Unpinned frames lost to ring eviction during the run.
    pub frames_evicted: u64,
    /// The run serialized as a single-line JSON object.
    pub body: String,
}

/// Collects run sections and warnings from every thread participating
/// in an experiment. `Send + Sync`; workers reach it through the
/// thread-local installed by [`install`].
#[derive(Debug, Default)]
pub struct TraceCollector {
    sections: Mutex<Vec<RunSection>>,
    warnings: Mutex<Vec<String>>,
    /// Flight-recorder ring capacity each run should allocate; `None`
    /// leaves frame capture off (the default).
    capture: Option<usize>,
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<TraceCollector>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `collector` as this thread's current trace sink until the
/// returned guard drops. Installs nest (the innermost wins), so
/// concurrently running tests in one process cannot cross-contaminate.
/// Worker pools must capture [`current`] on the submitting thread and
/// re-[`install`] it inside each worker for tracing to propagate.
#[must_use = "the collector is uninstalled when the guard drops"]
pub fn install(collector: Arc<TraceCollector>) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(collector));
    InstallGuard { _not_send: PhantomData }
}

/// The collector currently installed on this thread, if any.
pub fn current() -> Option<Arc<TraceCollector>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// RAII guard returned by [`install`]; uninstalls on drop. Not `Send`:
/// it must drop on the thread that installed.
#[derive(Debug)]
pub struct InstallGuard {
    _not_send: PhantomData<Rc<()>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector whose runs each record wire frames into a flight
    /// recorder ring of `capacity` frames (see
    /// [`crate::FrameRecorder`]).
    pub fn with_capture(capacity: usize) -> Self {
        TraceCollector { capture: Some(capacity), ..Self::default() }
    }

    /// The per-run flight-recorder capacity, `None` when capture is
    /// off.
    pub fn capture_capacity(&self) -> Option<usize> {
        self.capture
    }

    /// True when no run has flushed yet.
    pub fn is_empty(&self) -> bool {
        self.sections.lock().expect("trace sections poisoned").is_empty()
    }

    /// Records an out-of-band warning (e.g. a rejected environment
    /// variable) into the manifest instead of stderr.
    pub fn warn(&self, message: impl Into<String>) {
        self.warnings.lock().expect("trace warnings poisoned").push(message.into());
    }

    pub(crate) fn push_section(&self, section: RunSection) {
        self.sections.lock().expect("trace sections poisoned").push(section);
    }

    /// Snapshots everything collected so far into a manifest for
    /// `experiment`. Sections are sorted by `(label, body)` and
    /// warnings sorted and deduplicated, so the result is
    /// byte-identical no matter which worker finished first.
    pub fn manifest(&self, experiment: &str) -> RunManifest {
        let mut runs = self.sections.lock().expect("trace sections poisoned").clone();
        // Frames break any (label, body) tie so section order can
        // never depend on which worker finished first.
        runs.sort_by(|a, b| (&a.label, &a.body, &a.frames).cmp(&(&b.label, &b.body, &b.frames)));
        let mut warnings = self.warnings.lock().expect("trace warnings poisoned").clone();
        warnings.sort();
        warnings.dedup();
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for run in &runs {
            for (name, value) in &run.counters {
                *totals.entry(name.clone()).or_insert(0) += value;
            }
        }
        RunManifest {
            experiment: experiment.to_string(),
            totals,
            warnings,
            runs,
            capture: self.capture,
        }
    }
}

/// The per-experiment trace artifact: every run's section plus merged
/// counter totals. Exported as JSON and CSV under `results/trace/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Experiment id the manifest belongs to (e.g. `t2`).
    pub experiment: String,
    /// All run counters merged by per-name addition.
    pub totals: BTreeMap<String, u64>,
    /// Out-of-band warnings, sorted and deduplicated.
    pub warnings: Vec<String>,
    /// The flushed runs, sorted by `(label, body)`.
    pub runs: Vec<RunSection>,
    /// The flight-recorder ring capacity the runs recorded under,
    /// `None` when frame capture was off.
    pub capture: Option<usize>,
}

impl RunManifest {
    /// Serializes the manifest as JSON: deterministic key order, one
    /// run object per line so manifests diff readably.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"arpshield-trace/1\",");
        let _ = writeln!(out, "  \"experiment\": {},", quote(&self.experiment));
        let _ = writeln!(out, "  \"time_unit\": \"ns\",");
        out.push_str("  \"totals\": {");
        for (i, (name, value)) in self.totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {value}", quote(name));
        }
        out.push_str(if self.totals.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"warnings\": [");
        for (i, warning) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", quote(warning));
        }
        out.push_str(if self.warnings.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&run.body);
        }
        out.push_str(if self.runs.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push('}');
        out.push('\n');
        out
    }

    /// Serializes the counters as CSV (`run,counter,value`), one row
    /// per run counter plus merged totals under the pseudo-run
    /// `__total__`. Fields go through [`csv_escape`].
    pub fn to_counters_csv(&self) -> String {
        let mut out = String::from("run,counter,value\n");
        for run in &self.runs {
            for (name, value) in &run.counters {
                let _ = writeln!(out, "{},{},{value}", csv_escape(&run.label), csv_escape(name));
            }
        }
        for (name, value) in &self.totals {
            let _ = writeln!(out, "__total__,{},{value}", csv_escape(name));
        }
        out
    }

    /// Serializes per-run histogram summaries as CSV
    /// (`run,histogram,count,sum,min,max,p50,p90,p99`).
    pub fn to_histograms_csv(&self) -> String {
        let mut out = String::from("run,histogram,count,sum,min,max,p50,p90,p99\n");
        for run in &self.runs {
            for (name, hist) in &run.histograms {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{}",
                    csv_escape(&run.label),
                    csv_escape(name),
                    hist.count(),
                    hist.sum(),
                    hist.min().unwrap_or(0),
                    hist.max().unwrap_or(0),
                    hist.quantile_estimate(0.50).unwrap_or(0),
                    hist.quantile_estimate(0.90).unwrap_or(0),
                    hist.quantile_estimate(0.99).unwrap_or(0),
                );
            }
        }
        out
    }

    /// Exports every captured frame as a pcapng file openable in
    /// Wireshark/tshark: one Ethernet interface per run (named after
    /// the run label, nanosecond timestamps), frames in capture-id
    /// order, each carrying its id/kind/endpoints (and pin state) as
    /// the packet comment. Runs that captured nothing still get their
    /// interface, so the interface list always mirrors the run list.
    pub fn to_pcapng(&self) -> Vec<u8> {
        let mut writer = PcapngWriter::new("arpshield reproduce");
        for run in &self.runs {
            let interface = writer.add_interface(&run.label);
            for frame in &run.frames {
                let comment = format!(
                    "id={} kind={} src={} dst={}{}",
                    frame.id,
                    frame.kind.label(),
                    frame.src,
                    frame.dst,
                    if frame.pinned { " pinned" } else { "" },
                );
                writer.add_packet(interface, frame.at_ns, &frame.bytes, &comment);
            }
        }
        writer.finish()
    }

    /// Serializes the capture sidecar index (`arpshield-capture/1`):
    /// per run, the frame table (metadata only — octets live in the
    /// pcapng) and every event with its frame citations. `reproduce
    /// inspect` joins the two files into the forensic timeline.
    pub fn to_capture_index(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"arpshield-capture/1\",");
        let _ = writeln!(out, "  \"experiment\": {},", quote(&self.experiment));
        let _ = writeln!(out, "  \"time_unit\": \"ns\",");
        let _ = writeln!(out, "  \"ring_capacity\": {},", self.capture.unwrap_or(0));
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\":");
            out.push_str(&quote(&run.label));
            let _ = write!(out, ",\"frames_evicted\":{},\"frames\":[", run.frames_evicted);
            for (j, f) in run.frames.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"id\":{},\"at_ns\":{},\"kind\":{},\"src\":{},\"dst\":{},\
                     \"len\":{},\"pinned\":{}}}",
                    f.id,
                    f.at_ns,
                    quote(f.kind.label()),
                    quote(&f.src),
                    quote(&f.dst),
                    f.bytes.len(),
                    f.pinned,
                );
            }
            out.push_str("],\"events\":[");
            for (j, ev) in run.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"at_ns\":{},\"category\":{},\"actor\":{},\"detail\":{},\"frames\":[",
                    ev.at_ns,
                    quote(ev.category),
                    quote(&ev.actor),
                    quote(&ev.detail),
                );
                for (k, id) in ev.frames.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{id}");
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.runs.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push('}');
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(label: &str, counter: &str, value: u64) -> RunSection {
        let mut counters = BTreeMap::new();
        counters.insert(counter.to_string(), value);
        RunSection {
            label: label.to_string(),
            counters,
            body: format!("{{\"label\":{}}}", quote(label)),
            ..RunSection::default()
        }
    }

    #[test]
    fn manifest_sorts_runs_and_merges_totals() {
        let collector = TraceCollector::new();
        collector.push_section(section("b-run", "drops", 3));
        collector.push_section(section("a-run", "drops", 4));
        collector.warn("w2");
        collector.warn("w1");
        collector.warn("w1");
        let manifest = collector.manifest("tX");
        assert_eq!(manifest.runs[0].label, "a-run");
        assert_eq!(manifest.runs[1].label, "b-run");
        assert_eq!(manifest.totals.get("drops"), Some(&7));
        assert_eq!(manifest.warnings, vec!["w1".to_string(), "w2".to_string()]);
    }

    #[test]
    fn nested_install_restores_outer() {
        assert!(current().is_none());
        let outer = Arc::new(TraceCollector::new());
        let g1 = install(Arc::clone(&outer));
        {
            let inner = Arc::new(TraceCollector::new());
            let _g2 = install(Arc::clone(&inner));
            assert!(Arc::ptr_eq(&current().unwrap(), &inner));
        }
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn json_shape() {
        let collector = TraceCollector::new();
        collector.push_section(section("r", "c", 1));
        let json = collector.manifest("t9").to_json();
        assert!(json.starts_with("{\n  \"schema\": \"arpshield-trace/1\""));
        assert!(json.contains("\"experiment\": \"t9\""));
        assert!(json.contains("\"time_unit\": \"ns\""));
        assert!(json.contains("\"totals\": {"));
        assert!(json.contains("\"runs\": ["));
        let empty = TraceCollector::new().manifest("t0").to_json();
        assert!(empty.contains("\"runs\": []"));
        assert!(empty.contains("\"warnings\": []"));
    }

    #[test]
    fn capture_exports_cover_every_run() {
        use crate::recorder::FrameKind;
        let collector = TraceCollector::with_capture(16);
        assert_eq!(collector.capture_capacity(), Some(16));
        let mut with_frames = section("run-b", "c", 1);
        with_frames.frames.push(RecordedFrame {
            id: 1,
            at_ns: 5_000,
            kind: FrameKind::Delivered,
            src: "h0:0".into(),
            dst: "sw:1".into(),
            bytes: vec![0xAB; 60],
            pinned: true,
        });
        with_frames.events.push(Event {
            at_ns: 5_001,
            category: "scheme.verdict",
            actor: "passive".into(),
            detail: "kind=binding_changed".into(),
            frames: vec![1],
        });
        with_frames.frames_evicted = 3;
        collector.push_section(with_frames);
        collector.push_section(section("run-a", "c", 1));
        let manifest = collector.manifest("tX");
        assert_eq!(manifest.capture, Some(16));

        let pcap = crate::pcapng::parse(&manifest.to_pcapng()).unwrap();
        assert_eq!(pcap.interfaces, vec!["run-a".to_string(), "run-b".to_string()]);
        assert_eq!(pcap.packets.len(), 1);
        assert_eq!(pcap.packets[0].interface, 1, "frameless runs still hold their interface slot");
        assert_eq!(pcap.packets[0].ts_ns, 5_000);
        assert_eq!(pcap.packets[0].comment, "id=1 kind=deliver src=h0:0 dst=sw:1 pinned");

        let index = manifest.to_capture_index();
        assert!(index.starts_with("{\n  \"schema\": \"arpshield-capture/1\""));
        assert!(index.contains("\"ring_capacity\": 16"));
        assert!(index.contains("\"frames_evicted\":3"));
        assert!(index.contains("\"kind\":\"deliver\""));
        assert!(index.contains("\"frames\":[1]"));
    }

    #[test]
    fn histograms_csv_carries_quantiles() {
        let collector = TraceCollector::new();
        let mut with_hist = section("r", "c", 1);
        let mut hist = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            hist.record(v);
        }
        with_hist.histograms.insert("latency_ns".into(), hist);
        collector.push_section(with_hist);
        let csv = collector.manifest("t").to_histograms_csv();
        assert!(csv.starts_with("run,histogram,count,sum,min,max,p50,p90,p99\n"));
        assert!(csv.contains("r,latency_ns,4,100,10,40,"));
    }

    #[test]
    fn counters_csv_escapes_labels() {
        let collector = TraceCollector::new();
        collector.push_section(section("scheme=a, attack=b", "drops", 2));
        let csv = collector.manifest("t").to_counters_csv();
        assert!(csv.starts_with("run,counter,value\n"));
        assert!(csv.contains("\"scheme=a, attack=b\",drops,2\n"));
        assert!(csv.contains("__total__,drops,2\n"));
    }
}
