//! The process-side sink: a [`TraceCollector`] gathers finished run
//! sections (from any worker thread) and exports them as a
//! deterministic [`RunManifest`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use crate::csv::csv_escape;
use crate::json::quote;

/// One flushed run: its label, its counters (kept structured so the
/// manifest can merge totals), and its serialized JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSection {
    /// The run label chosen at [`crate::Tracer::for_current_run`] time
    /// plus any annotations.
    pub label: String,
    /// Final counter values for the run.
    pub counters: BTreeMap<String, u64>,
    /// The run serialized as a single-line JSON object.
    pub body: String,
}

/// Collects run sections and warnings from every thread participating
/// in an experiment. `Send + Sync`; workers reach it through the
/// thread-local installed by [`install`].
#[derive(Debug, Default)]
pub struct TraceCollector {
    sections: Mutex<Vec<RunSection>>,
    warnings: Mutex<Vec<String>>,
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<TraceCollector>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `collector` as this thread's current trace sink until the
/// returned guard drops. Installs nest (the innermost wins), so
/// concurrently running tests in one process cannot cross-contaminate.
/// Worker pools must capture [`current`] on the submitting thread and
/// re-[`install`] it inside each worker for tracing to propagate.
#[must_use = "the collector is uninstalled when the guard drops"]
pub fn install(collector: Arc<TraceCollector>) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(collector));
    InstallGuard { _not_send: PhantomData }
}

/// The collector currently installed on this thread, if any.
pub fn current() -> Option<Arc<TraceCollector>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// RAII guard returned by [`install`]; uninstalls on drop. Not `Send`:
/// it must drop on the thread that installed.
#[derive(Debug)]
pub struct InstallGuard {
    _not_send: PhantomData<Rc<()>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no run has flushed yet.
    pub fn is_empty(&self) -> bool {
        self.sections.lock().expect("trace sections poisoned").is_empty()
    }

    /// Records an out-of-band warning (e.g. a rejected environment
    /// variable) into the manifest instead of stderr.
    pub fn warn(&self, message: impl Into<String>) {
        self.warnings.lock().expect("trace warnings poisoned").push(message.into());
    }

    pub(crate) fn push_section(&self, section: RunSection) {
        self.sections.lock().expect("trace sections poisoned").push(section);
    }

    /// Snapshots everything collected so far into a manifest for
    /// `experiment`. Sections are sorted by `(label, body)` and
    /// warnings sorted and deduplicated, so the result is
    /// byte-identical no matter which worker finished first.
    pub fn manifest(&self, experiment: &str) -> RunManifest {
        let mut runs = self.sections.lock().expect("trace sections poisoned").clone();
        runs.sort_by(|a, b| (&a.label, &a.body).cmp(&(&b.label, &b.body)));
        let mut warnings = self.warnings.lock().expect("trace warnings poisoned").clone();
        warnings.sort();
        warnings.dedup();
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for run in &runs {
            for (name, value) in &run.counters {
                *totals.entry(name.clone()).or_insert(0) += value;
            }
        }
        RunManifest { experiment: experiment.to_string(), totals, warnings, runs }
    }
}

/// The per-experiment trace artifact: every run's section plus merged
/// counter totals. Exported as JSON and CSV under `results/trace/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Experiment id the manifest belongs to (e.g. `t2`).
    pub experiment: String,
    /// All run counters merged by per-name addition.
    pub totals: BTreeMap<String, u64>,
    /// Out-of-band warnings, sorted and deduplicated.
    pub warnings: Vec<String>,
    /// The flushed runs, sorted by `(label, body)`.
    pub runs: Vec<RunSection>,
}

impl RunManifest {
    /// Serializes the manifest as JSON: deterministic key order, one
    /// run object per line so manifests diff readably.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"arpshield-trace/1\",");
        let _ = writeln!(out, "  \"experiment\": {},", quote(&self.experiment));
        let _ = writeln!(out, "  \"time_unit\": \"ns\",");
        out.push_str("  \"totals\": {");
        for (i, (name, value)) in self.totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {value}", quote(name));
        }
        out.push_str(if self.totals.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"warnings\": [");
        for (i, warning) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", quote(warning));
        }
        out.push_str(if self.warnings.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&run.body);
        }
        out.push_str(if self.runs.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push('}');
        out.push('\n');
        out
    }

    /// Serializes the counters as CSV (`run,counter,value`), one row
    /// per run counter plus merged totals under the pseudo-run
    /// `__total__`. Fields go through [`csv_escape`].
    pub fn to_counters_csv(&self) -> String {
        let mut out = String::from("run,counter,value\n");
        for run in &self.runs {
            for (name, value) in &run.counters {
                let _ = writeln!(out, "{},{},{value}", csv_escape(&run.label), csv_escape(name));
            }
        }
        for (name, value) in &self.totals {
            let _ = writeln!(out, "__total__,{},{value}", csv_escape(name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(label: &str, counter: &str, value: u64) -> RunSection {
        let mut counters = BTreeMap::new();
        counters.insert(counter.to_string(), value);
        RunSection {
            label: label.to_string(),
            counters,
            body: format!("{{\"label\":{}}}", quote(label)),
        }
    }

    #[test]
    fn manifest_sorts_runs_and_merges_totals() {
        let collector = TraceCollector::new();
        collector.push_section(section("b-run", "drops", 3));
        collector.push_section(section("a-run", "drops", 4));
        collector.warn("w2");
        collector.warn("w1");
        collector.warn("w1");
        let manifest = collector.manifest("tX");
        assert_eq!(manifest.runs[0].label, "a-run");
        assert_eq!(manifest.runs[1].label, "b-run");
        assert_eq!(manifest.totals.get("drops"), Some(&7));
        assert_eq!(manifest.warnings, vec!["w1".to_string(), "w2".to_string()]);
    }

    #[test]
    fn nested_install_restores_outer() {
        assert!(current().is_none());
        let outer = Arc::new(TraceCollector::new());
        let g1 = install(Arc::clone(&outer));
        {
            let inner = Arc::new(TraceCollector::new());
            let _g2 = install(Arc::clone(&inner));
            assert!(Arc::ptr_eq(&current().unwrap(), &inner));
        }
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn json_shape() {
        let collector = TraceCollector::new();
        collector.push_section(section("r", "c", 1));
        let json = collector.manifest("t9").to_json();
        assert!(json.starts_with("{\n  \"schema\": \"arpshield-trace/1\""));
        assert!(json.contains("\"experiment\": \"t9\""));
        assert!(json.contains("\"time_unit\": \"ns\""));
        assert!(json.contains("\"totals\": {"));
        assert!(json.contains("\"runs\": ["));
        let empty = TraceCollector::new().manifest("t0").to_json();
        assert!(empty.contains("\"runs\": []"));
        assert!(empty.contains("\"warnings\": []"));
    }

    #[test]
    fn counters_csv_escapes_labels() {
        let collector = TraceCollector::new();
        collector.push_section(section("scheme=a, attack=b", "drops", 2));
        let csv = collector.manifest("t").to_counters_csv();
        assert!(csv.starts_with("run,counter,value\n"));
        assert!(csv.contains("\"scheme=a, attack=b\",drops,2\n"));
        assert!(csv.contains("__total__,drops,2\n"));
    }
}
