//! Deterministic observability for the arpshield workspace.
//!
//! Every diagnostic this crate records is stamped with **simulation
//! time** (nanoseconds since the run started), never wall clock, so a
//! trace taken today diffs clean against one taken next year on a
//! different machine. The layer has three pieces:
//!
//! * [`Tracer`] — the per-run handle the instrumented crates hold
//!   (simulator, switch, host stacks, scheme alert log). It records
//!   structured [`Event`]s, named counters, and log-bucketed
//!   [`Histogram`]s into a [`RunRecorder`].
//! * [`TraceCollector`] — a process-wide (thread-local, explicitly
//!   propagated) sink that finished runs flush into. Installed with
//!   [`install`]; when no collector is installed every [`Tracer`] is
//!   disabled and recording is a single branch on a `None`.
//! * [`RunManifest`] — the deterministic JSON/CSV export written under
//!   `results/trace/` by `reproduce --trace`.
//!
//! ## Determinism contract
//!
//! The manifest for a given experiment and seed is byte-identical at
//! any `ARPSHIELD_THREADS` value. Three properties make that hold:
//!
//! 1. every run records into its own [`RunRecorder`] on the thread
//!    that executes it, so there is no cross-run interleaving;
//! 2. histograms use *fixed* log₂ bins ([`bucket_of`]), so merging is
//!    per-bin integer addition — associative and commutative — and
//!    counter merges are plain sums with the same algebra;
//! 3. the collector sorts flushed run sections (and warnings) before
//!    export, erasing job-completion order.
//!
//! ## Flight recorder
//!
//! When the collector is built with [`TraceCollector::with_capture`],
//! each run additionally owns a [`FrameRecorder`]: a bounded ring of
//! raw wire frames (capacity from `ARPSHIELD_RECORD_FRAMES`, default
//! [`DEFAULT_RECORD_FRAMES`]). The simulator records every
//! delivered/dropped/duplicated frame and marks the one it is
//! currently dispatching as the tracer's *current frame*, so every
//! event recorded during that dispatch — a CAM move, a cache write, a
//! scheme verdict — cites the exact frame that caused it. Frames cited
//! by scheme alerts are *pinned* and survive ring eviction. The
//! [`RunManifest`] exports captures as standard [`pcapng`] plus an
//! `arpshield-capture/1` JSON index.
//!
//! ## Disabled-path cost
//!
//! A disabled [`Tracer`] is `Option::None` behind the handle: every
//! record call is one branch, no allocation, no formatting (event
//! construction is closure-gated). The `reproduce` binary installs no
//! collector unless `--trace` or `--capture` is passed, so legacy CSV
//! outputs and bench numbers are untouched by instrumentation; with
//! tracing on but capture off, frame recording additionally skips the
//! octet copy and endpoint formatting entirely.
//!
//! ## Wall-clock telemetry
//!
//! Two sibling subsystems deliberately step outside the sim-time rule
//! and are quarantined to stderr and sidecar files for it:
//! [`profile`] (span-scoped wall-clock self-profiling, exported as
//! `results/profile/<id>.json` + `.csv` by `reproduce --profile`) and
//! [`heartbeat`] (periodic progress lines during scale sweeps and
//! ingest, suppressed by `ARPSHIELD_QUIET=1`). Both follow the same
//! disabled-path discipline as the tracer. [`env_knob`] centralises
//! `ARPSHIELD_*` environment parsing so every knob warns-and-defaults
//! on garbage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collect;
mod csv;
pub mod env_knob;
pub mod heartbeat;
mod hist;
mod json;
pub mod pcapng;
pub mod profile;
mod record;
mod recorder;

pub use collect::{current, install, InstallGuard, RunManifest, RunSection, TraceCollector};
pub use csv::csv_escape;
pub use heartbeat::Heartbeat;
pub use hist::{bucket_of, bucket_range, Histogram, BUCKETS};
pub use profile::{
    GaugeStats, ProfileCollector, ProfileData, ProfileReport, SpanStats, PROFILE_SCHEMA,
};
pub use record::{Event, RunRecorder, Tracer, MAX_EVENTS_PER_RUN};
pub use recorder::{
    ring_capacity_from_env, FrameKind, FrameRecorder, RecordedFrame, DEFAULT_RECORD_FRAMES,
};
