//! Per-run recording: the [`Tracer`] handle the instrumented crates
//! hold and the [`RunRecorder`] it writes into.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

use crate::collect::{self, RunSection, TraceCollector};
use crate::hist::Histogram;
use crate::json::quote;
use crate::recorder::{FrameKind, FrameRecorder};

/// One structured trace event, stamped with simulated nanoseconds
/// (never wall clock).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Simulation time of the event, in nanoseconds since run start.
    pub at_ns: u64,
    /// Stable dotted event name, e.g. `switch.cam.moved`.
    pub category: &'static str,
    /// The entity the event happened at (device name, scheme name).
    pub actor: String,
    /// Human-readable evidence: what was observed and why it mattered.
    pub detail: String,
    /// Capture frame ids this event cites: the frame whose dispatch
    /// produced it, plus any explicit evidence frames. Empty unless a
    /// capture is active.
    pub frames: Vec<u64>,
}

/// Hard cap on stored events per run. Runs past the cap keep counting
/// (the `events_truncated` field of the section) but stop storing,
/// bounding manifest size for event-heavy grids while staying fully
/// deterministic.
pub const MAX_EVENTS_PER_RUN: usize = 4096;

/// Accumulates one run's events, counters, and histograms. Created via
/// [`Tracer::for_current_run`]; when the last [`Tracer`] clone goes
/// away it serializes itself and flushes into the [`TraceCollector`]
/// it was born under.
#[derive(Debug)]
pub struct RunRecorder {
    label: String,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<Event>,
    events_truncated: u64,
    /// The flight recorder, present only when the collector was built
    /// with [`TraceCollector::with_capture`].
    frames: Option<FrameRecorder>,
    /// The frame currently being dispatched by the simulator; events
    /// recorded while it is set cite it automatically.
    current_frame: Option<u64>,
    collector: Arc<TraceCollector>,
}

impl RunRecorder {
    fn new(label: String, collector: Arc<TraceCollector>) -> Self {
        RunRecorder {
            label,
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: Vec::new(),
            events_truncated: 0,
            frames: collector.capture_capacity().map(FrameRecorder::new),
            current_frame: None,
            collector,
        }
    }

    fn push_event(&mut self, event: Event) {
        if self.events.len() < MAX_EVENTS_PER_RUN {
            self.events.push(event);
        } else {
            self.events_truncated += 1;
        }
    }

    /// Serializes the run to its single-line JSON section body.
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"label\":");
        out.push_str(&quote(&self.label));
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", quote(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"bins\":[",
                quote(name),
                hist.count(),
                hist.sum(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
                hist.quantile_estimate(0.50).unwrap_or(0),
                hist.quantile_estimate(0.90).unwrap_or(0),
                hist.quantile_estimate(0.99).unwrap_or(0),
            );
            for (j, (bucket, count)) in hist.nonzero_bins().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bucket},{count}]");
            }
            out.push_str("]}");
        }
        let _ = write!(out, "}},\"events_truncated\":{},\"events\":[", self.events_truncated);
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_ns\":{},\"category\":{},\"actor\":{},\"detail\":{}",
                ev.at_ns,
                quote(ev.category),
                quote(&ev.actor),
                quote(&ev.detail),
            );
            // Emitted only when present, so manifests without an
            // active capture stay byte-identical to older ones.
            if !ev.frames.is_empty() {
                out.push_str(",\"frames\":[");
                for (k, id) in ev.frames.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{id}");
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl Drop for RunRecorder {
    fn drop(&mut self) {
        // Serialize before moving the structured fields out: the body
        // is part of the section's deterministic sort key.
        let body = self.to_json();
        let (frames, frames_evicted) = match self.frames.take() {
            Some(recorder) => recorder.into_frames(),
            None => (Vec::new(), 0),
        };
        let section = RunSection {
            label: self.label.clone(),
            counters: self.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: self.histograms.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            events: std::mem::take(&mut self.events),
            frames,
            frames_evicted,
            body,
        };
        self.collector.push_section(section);
    }
}

/// The handle instrumented code records through. Cloning is cheap
/// (an `Option<Rc>`); all clones of one tracer feed the same
/// [`RunRecorder`]. A disabled tracer (the default) makes every
/// record call a single `None` branch — no allocation, no formatting.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<RunRecorder>>>,
}

impl Tracer {
    /// The no-op tracer.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Opens a recorder for a new run under the collector currently
    /// installed on this thread ([`crate::install`]). Returns a
    /// disabled tracer when none is installed — which is how tracing
    /// stays opt-in end to end.
    pub fn for_current_run(label: impl Into<String>) -> Self {
        match collect::current() {
            Some(collector) => Tracer {
                inner: Some(Rc::new(RefCell::new(RunRecorder::new(label.into(), collector)))),
            },
            None => Tracer { inner: None },
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends ` key=value` to the run label (used to tag a run with
    /// context discovered after the tracer was created, e.g. the
    /// attack variant).
    pub fn annotate(&self, key: &str, value: &str) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            let _ = write!(rec.label, " {key}={value}");
        }
    }

    // The record methods below split into an `#[inline(always)]`
    // enabled-check and an `#[inline(never)]` recording body. The hint
    // alone is not enough: LLVM keeps the whole method out-of-line at
    // some call sites, and a real call in the switch's per-frame path
    // shows up in the frame-delivery bench. Forcing the split keeps
    // the disabled path at exactly one predictable branch.

    /// Adds `n` to the named counter.
    #[inline(always)]
    pub fn count(&self, name: &'static str, n: u64) {
        if self.inner.is_some() {
            self.count_impl(name, n);
        }
    }

    #[inline(never)]
    fn count_impl(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            *inner.borrow_mut().counters.entry(name).or_insert(0) += n;
        }
    }

    /// Records one sample into the named histogram.
    #[inline(always)]
    pub fn observe(&self, name: &'static str, value: u64) {
        if self.inner.is_some() {
            self.observe_impl(name, value);
        }
    }

    #[inline(never)]
    fn observe_impl(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().histograms.entry(name).or_default().record(value);
        }
    }

    /// Records a structured event. The `(actor, detail)` pair is built
    /// by the closure only when tracing is enabled, so the disabled
    /// path never formats or allocates.
    #[inline(always)]
    pub fn event(
        &self,
        at_ns: u64,
        category: &'static str,
        make: impl FnOnce() -> (String, String),
    ) {
        if self.inner.is_some() {
            self.event_impl(at_ns, category, make());
        }
    }

    #[inline(never)]
    fn event_impl(&self, at_ns: u64, category: &'static str, (actor, detail): (String, String)) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.borrow_mut();
            let frames = rec.current_frame.into_iter().collect();
            rec.push_event(Event { at_ns, category, actor, detail, frames });
        }
    }

    /// Like [`event`](Tracer::event), but with an explicit list of
    /// capture frame ids the event cites (the closure builds
    /// `(actor, detail, frames)`); the current frame is *not* attached
    /// implicitly, so callers control the citation order. Used by the
    /// wire-drop and scheme-verdict paths.
    #[inline(always)]
    pub fn event_frames(
        &self,
        at_ns: u64,
        category: &'static str,
        make: impl FnOnce() -> (String, String, Vec<u64>),
    ) {
        if self.inner.is_some() {
            self.event_frames_impl(at_ns, category, make());
        }
    }

    #[inline(never)]
    fn event_frames_impl(
        &self,
        at_ns: u64,
        category: &'static str,
        (actor, detail, frames): (String, String, Vec<u64>),
    ) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().push_event(Event { at_ns, category, actor, detail, frames });
        }
    }

    /// Records one wire frame into the run's flight recorder and
    /// returns its capture id. The `(src, dst)` endpoint strings are
    /// built by the closure — and the octets copied — only when a
    /// capture is actually active; with tracing on but capture off
    /// this still costs nothing beyond the borrow, and returns `None`.
    #[inline(always)]
    pub fn record_frame(
        &self,
        at_ns: u64,
        kind: FrameKind,
        bytes: &[u8],
        make: impl FnOnce() -> (String, String),
    ) -> Option<u64> {
        if self.inner.is_some() {
            self.record_frame_impl(at_ns, kind, bytes, make)
        } else {
            None
        }
    }

    #[inline(never)]
    fn record_frame_impl(
        &self,
        at_ns: u64,
        kind: FrameKind,
        bytes: &[u8],
        make: impl FnOnce() -> (String, String),
    ) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut rec = inner.borrow_mut();
        let recorder = rec.frames.as_mut()?;
        let (src, dst) = make();
        Some(recorder.record(at_ns, kind, src, dst, bytes))
    }

    /// Sets (or clears) the frame the simulator is currently
    /// dispatching. While set, every plain [`event`](Tracer::event)
    /// cites it — which is how CAM updates, cache writes, and scheme
    /// verdicts acquire provenance without any call-site changes.
    #[inline(always)]
    pub fn set_current_frame(&self, frame: Option<u64>) {
        if self.inner.is_some() {
            self.set_current_frame_impl(frame);
        }
    }

    #[inline(never)]
    fn set_current_frame_impl(&self, frame: Option<u64>) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().current_frame = frame;
        }
    }

    /// The capture id of the frame currently being dispatched, if any.
    pub fn current_frame(&self) -> Option<u64> {
        self.inner.as_ref().and_then(|inner| inner.borrow().current_frame)
    }

    /// Pins capture frame `id` so it survives ring eviction. A no-op
    /// without an active capture.
    pub fn pin_frame(&self, id: u64) {
        if let Some(inner) = &self.inner {
            if let Some(recorder) = inner.borrow_mut().frames.as_mut() {
                recorder.pin(id);
            }
        }
    }

    /// Pins the frame currently being dispatched and returns its id —
    /// the one-liner for "this frame just became evidence".
    #[inline(always)]
    pub fn pin_current(&self) -> Option<u64> {
        if self.inner.is_some() {
            self.pin_current_impl()
        } else {
            None
        }
    }

    #[inline(never)]
    fn pin_current_impl(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut rec = inner.borrow_mut();
        let id = rec.current_frame?;
        if let Some(recorder) = rec.frames.as_mut() {
            recorder.pin(id);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{install, TraceCollector};

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.count("x", 1);
        t.observe("y", 2);
        t.event(3, "cat", || panic!("must not be called when disabled"));
    }

    #[test]
    fn run_flushes_on_last_drop() {
        let collector = Arc::new(TraceCollector::new());
        let _guard = install(Arc::clone(&collector));
        let t = Tracer::for_current_run("run-a");
        assert!(t.is_enabled());
        let t2 = t.clone();
        t.count("switch.learn.new", 2);
        t2.observe("latency_ns", 1500);
        t2.event(42, "switch.cam.moved", || ("sw0".into(), "mac moved p1->p2".into()));
        t.annotate("attack", "poison");
        assert!(collector.is_empty(), "flush happens only after the last clone drops");
        drop(t);
        drop(t2);
        let manifest = collector.manifest("unit");
        assert_eq!(manifest.runs.len(), 1);
        assert_eq!(manifest.runs[0].label, "run-a attack=poison");
        assert_eq!(manifest.runs[0].counters.get("switch.learn.new"), Some(&2));
        assert!(manifest.runs[0].body.contains("\"at_ns\":42"));
        assert!(manifest.runs[0].body.contains("mac moved p1->p2"));
    }

    #[test]
    fn event_cap_counts_overflow() {
        let collector = Arc::new(TraceCollector::new());
        let _guard = install(Arc::clone(&collector));
        let t = Tracer::for_current_run("capped");
        for i in 0..(MAX_EVENTS_PER_RUN as u64 + 5) {
            t.event(i, "spam", || (String::new(), String::new()));
        }
        drop(t);
        let manifest = collector.manifest("unit");
        assert!(manifest.runs[0].body.contains("\"events_truncated\":5"));
    }
}
