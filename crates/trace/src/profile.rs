//! Span-scoped wall-clock self-profiler.
//!
//! Unlike everything else in this crate, the profiler measures **wall
//! clock** — where the host CPU's cycles went, not where simulated time
//! went. Its output is therefore quarantined the same way the scale
//! experiments quarantine their timing: profile data only ever reaches
//! the `results/profile/` sidecar and stderr, never a deterministic CSV
//! or manifest.
//!
//! ## Model
//!
//! Instrumented code brackets a region with [`span`]:
//!
//! ```
//! let _s = arpshield_trace::profile::span("switch.forward");
//! // ... work ...
//! // guard drop closes the span
//! ```
//!
//! Each thread keeps a stack of open spans and a calling-context tree:
//! the same label reached through different parents is a distinct node,
//! so `results/profile/t6s.json` distinguishes `pool.acquire` under
//! `packet.encode` from `pool.acquire` under `sim.deliver`. Every node
//! accumulates a call count, *total* time (span enter → exit) and
//! *child* time (total of directly nested spans); **self** time is
//! their difference, and summing self over all nodes reproduces the
//! total of the root spans — which is what lets CI assert that the
//! instrumentation accounts for ≥90% of a run's measured wall time.
//!
//! [`gauge`] records point-in-time samples (wheel occupancy, pool hit
//! counts, CAM size, recorder ring fill) into order-free aggregates
//! (count/min/max/sum), so merged gauges are independent of thread
//! interleaving.
//!
//! ## Collection
//!
//! A [`ProfileCollector`] is [`install`]ed per thread (mirroring
//! [`TraceCollector`](crate::TraceCollector)); worker pools re-install
//! the submitting thread's collector so per-worker trees merge into one
//! report. Flushing keys nodes by their slash-joined path and adds
//! counters per key — an associative, commutative merge, so the merged
//! profile is a set union regardless of scheduling (the *times* vary
//! run to run, of course; only the shape and counts are stable).
//!
//! ## Disabled-path cost
//!
//! [`span`] and [`gauge`] follow the [`Tracer`](crate::Tracer) pattern:
//! an `#[inline(always)]` wrapper checks one relaxed atomic load of the
//! global active-install count and bails; the recording body is
//! `#[inline(never)]` so the hot path inlines to a single predictable
//! branch. No collector installed — as in every legacy run — means no
//! clock read, no TLS access, no allocation.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::quote;

/// Schema tag written at the head of every profile JSON sidecar.
pub const PROFILE_SCHEMA: &str = "arpshield-profile/1";

/// Count of live [`install`] guards across all threads. Zero means
/// profiling is off everywhere and [`span`]/[`gauge`] cost one branch.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

const NO_PARENT: u32 = u32::MAX;

thread_local! {
    /// Stack of per-thread profiles; [`span`] records into the top.
    static THREAD: RefCell<Vec<ThreadProfile>> = const { RefCell::new(Vec::new()) };
}

/// One thread's calling-context tree plus its open-span stack.
struct ThreadProfile {
    collector: Arc<ProfileCollector>,
    nodes: Vec<Node>,
    /// Indices into `nodes`; the top is the innermost open span.
    stack: Vec<u32>,
    gauges: BTreeMap<&'static str, GaugeStats>,
}

struct Node {
    name: &'static str,
    parent: u32,
    children: Vec<u32>,
    count: u64,
    total_ns: u64,
    child_ns: u64,
}

impl ThreadProfile {
    fn new(collector: Arc<ProfileCollector>) -> Self {
        ThreadProfile { collector, nodes: Vec::new(), stack: Vec::new(), gauges: BTreeMap::new() }
    }

    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        // Root spans are rare (job-level), so the linear scan over all
        // nodes for the parentless case never runs hot.
        let found = match parent {
            NO_PARENT => (0..self.nodes.len() as u32).find(|&i| {
                let n = &self.nodes[i as usize];
                n.parent == NO_PARENT && n.name == name
            }),
            p => self.nodes[p as usize]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c as usize].name == name),
        };
        let idx = match found {
            Some(idx) => idx,
            None => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node {
                    name,
                    parent,
                    children: Vec::new(),
                    count: 0,
                    total_ns: 0,
                    child_ns: 0,
                });
                if parent != NO_PARENT {
                    self.nodes[parent as usize].children.push(idx);
                }
                idx
            }
        };
        self.stack.push(idx);
    }

    fn exit(&mut self, elapsed_ns: u64) {
        let Some(idx) = self.stack.pop() else { return };
        let node = &mut self.nodes[idx as usize];
        node.count += 1;
        node.total_ns += elapsed_ns;
        let parent = node.parent;
        if parent != NO_PARENT {
            self.nodes[parent as usize].child_ns += elapsed_ns;
        }
    }

    /// Converts the tree into path-keyed stats and merges them into the
    /// owning collector. Open spans (enter without exit) contribute
    /// their node with whatever completed iterations accumulated.
    fn flush(self) {
        let mut data = ProfileData::default();
        // Nodes are created parents-first, so one forward pass can
        // build every path.
        let mut paths: Vec<String> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let path = match node.parent {
                NO_PARENT => node.name.to_string(),
                p => format!("{}/{}", paths[p as usize], node.name),
            };
            paths.push(path);
        }
        for (node, path) in self.nodes.iter().zip(paths) {
            let entry = data.spans.entry(path).or_default();
            entry.count += node.count;
            entry.total_ns += node.total_ns;
            entry.child_ns += node.child_ns;
        }
        data.gauges = self.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        self.collector.absorb(data);
    }
}

/// RAII guard closing a profiling span on drop. Returned by [`span`];
/// deliberately `!Send` — a span must close on the thread that opened
/// it.
pub struct SpanGuard {
    /// `None` when profiling was off at construction: drop is one branch.
    start: Option<Instant>,
    _not_send: PhantomData<Rc<()>>,
}

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            exit_impl(start);
        }
    }
}

/// Opens a wall-clock span named `name`, closed when the returned guard
/// drops. With no profiler installed anywhere this is one branch.
#[inline(always)]
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return SpanGuard { start: None, _not_send: PhantomData };
    }
    enter_impl(name)
}

#[inline(never)]
fn enter_impl(name: &'static str) -> SpanGuard {
    THREAD.with(|t| {
        let mut stack = t.borrow_mut();
        match stack.last_mut() {
            // Another thread's profiler tripped the global check, but
            // this thread has none installed: stay inert.
            None => SpanGuard { start: None, _not_send: PhantomData },
            Some(profile) => {
                profile.enter(name);
                // Read the clock *after* bookkeeping so tree maintenance
                // is excluded from the span's own time.
                SpanGuard { start: Some(Instant::now()), _not_send: PhantomData }
            }
        }
    })
}

#[inline(never)]
fn exit_impl(start: Instant) {
    let elapsed = start.elapsed().as_nanos() as u64;
    THREAD.with(|t| {
        if let Some(profile) = t.borrow_mut().last_mut() {
            profile.exit(elapsed);
        }
    });
}

/// Records one point-in-time sample of gauge `name`. With no profiler
/// installed anywhere this is one branch.
#[inline(always)]
pub fn gauge(name: &'static str, value: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    gauge_impl(name, value);
}

#[inline(never)]
fn gauge_impl(name: &'static str, value: u64) {
    THREAD.with(|t| {
        if let Some(profile) = t.borrow_mut().last_mut() {
            profile.gauges.entry(name).or_default().sample(value);
        }
    });
}

/// True when a profiler is installed on the current thread (cheap
/// global check first, so the common answer is one load).
#[inline(always)]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0 && current().is_some()
}

/// The collector installed on the current thread, if any. Worker pools
/// capture this on the submitting thread and [`install`] it inside
/// each worker, mirroring [`crate::current`] for tracing.
pub fn current() -> Option<Arc<ProfileCollector>> {
    THREAD.with(|t| t.borrow().last().map(|p| p.collector.clone()))
}

/// Installs `collector` as the current thread's profile sink until the
/// returned guard drops (which flushes this thread's tree into it).
/// Installs nest; spans always record into the innermost.
#[must_use = "profiling deactivates (and the thread tree flushes) when the guard drops"]
pub fn install(collector: Arc<ProfileCollector>) -> ProfileGuard {
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    THREAD.with(|t| t.borrow_mut().push(ThreadProfile::new(collector)));
    ProfileGuard { _not_send: PhantomData }
}

/// Uninstalls (and flushes) the matching [`install`] on drop.
pub struct ProfileGuard {
    _not_send: PhantomData<Rc<()>>,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
        if let Some(profile) = THREAD.with(|t| t.borrow_mut().pop()) {
            profile.flush();
        }
    }
}

/// Accumulated statistics for one span path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Wall nanoseconds between enter and exit, summed over calls.
    pub total_ns: u64,
    /// Wall nanoseconds spent in directly nested spans.
    pub child_ns: u64,
}

impl SpanStats {
    /// Time attributed to this span alone: total minus nested child
    /// time (saturating — clock jitter can make children sum slightly
    /// past the parent).
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// Order-free aggregate of gauge samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeStats {
    /// Number of samples recorded.
    pub samples: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples (for mean = sum / samples).
    pub sum: u128,
}

impl Default for GaugeStats {
    fn default() -> Self {
        GaugeStats { samples: 0, min: u64::MAX, max: 0, sum: 0 }
    }
}

impl GaugeStats {
    /// Folds one sample in.
    pub fn sample(&mut self, value: u64) {
        self.samples += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value);
    }

    /// Merges another aggregate in (associative, commutative).
    pub fn merge(&mut self, other: &GaugeStats) {
        self.samples += other.samples;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

/// A merged profile: span stats keyed by slash-joined calling-context
/// path, plus gauge aggregates keyed by gauge name.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProfileData {
    /// Span statistics keyed by path (`"t6s.job/sim.run/sim.deliver"`).
    pub spans: BTreeMap<String, SpanStats>,
    /// Gauge aggregates keyed by name.
    pub gauges: BTreeMap<String, GaugeStats>,
}

impl ProfileData {
    /// Merges `other` in by per-key addition (and gauge min/max/sum
    /// folding). Associative and commutative, so any flush order —
    /// i.e. any worker scheduling — produces the same merged data for
    /// the same set of per-thread trees.
    pub fn merge(&mut self, other: &ProfileData) {
        for (path, stats) in &other.spans {
            let entry = self.spans.entry(path.clone()).or_default();
            entry.count += stats.count;
            entry.total_ns += stats.total_ns;
            entry.child_ns += stats.child_ns;
        }
        for (name, stats) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().merge(stats);
        }
    }

    /// Sum of self time over all span paths — the profiler's coverage
    /// of the run (compare against independently measured wall time).
    pub fn self_total_ns(&self) -> u64 {
        self.spans.values().map(SpanStats::self_ns).sum()
    }
}

/// The shared sink per-thread profiles flush into.
#[derive(Debug, Default)]
pub struct ProfileCollector {
    merged: Mutex<ProfileData>,
}

impl ProfileCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        ProfileCollector::default()
    }

    /// Merges one flushed per-thread profile in.
    pub fn absorb(&self, data: ProfileData) {
        self.merged.lock().expect("profile merge poisoned").merge(&data);
    }

    /// A copy of everything merged so far.
    pub fn snapshot(&self) -> ProfileData {
        self.merged.lock().expect("profile merge poisoned").clone()
    }

    /// Freezes the merged data into an exportable report. `wall_ns` is
    /// the caller's independent wall-clock measurement of the profiled
    /// region (span self-times should sum close to it).
    pub fn report(&self, experiment: impl Into<String>, wall_ns: u64) -> ProfileReport {
        ProfileReport { experiment: experiment.into(), wall_ns, data: self.snapshot() }
    }
}

/// One experiment's profile, ready to serialise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Experiment id (`t6s`, `ingest`, …).
    pub experiment: String,
    /// Independently measured wall time of the profiled region.
    pub wall_ns: u64,
    /// The merged span/gauge data.
    pub data: ProfileData,
}

impl ProfileReport {
    /// Serialises to the `arpshield-profile/1` JSON sidecar. Spans are
    /// path-sorted and gauges name-sorted; all times are wall-clock
    /// nanoseconds, which is why this file lives beside — never inside
    /// — the deterministic outputs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", quote(PROFILE_SCHEMA));
        let _ = writeln!(out, "  \"experiment\": {},", quote(&self.experiment));
        out.push_str("  \"time_unit\": \"ns\",\n");
        let _ = writeln!(out, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(out, "  \"self_total_ns\": {},", self.data.self_total_ns());
        out.push_str("  \"spans\": [");
        for (i, (path, s)) in self.data.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = write!(
                out,
                "    {{\"path\": {}, \"name\": {}, \"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \"child_ns\": {}}}",
                quote(path),
                quote(name),
                s.count,
                s.total_ns,
                s.self_ns(),
                s.child_ns,
            );
        }
        out.push_str(if self.data.spans.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"gauges\": [");
        for (i, (name, g)) in self.data.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let min = if g.samples == 0 { 0 } else { g.min };
            let _ = write!(
                out,
                "    {{\"name\": {}, \"samples\": {}, \"min\": {}, \"max\": {}, \"sum\": {}}}",
                quote(name),
                g.samples,
                min,
                g.max,
                g.sum,
            );
        }
        out.push_str(if self.data.gauges.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// Serialises the span table as CSV (`path,count,total_ns,self_ns`),
    /// path-sorted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("path,count,total_ns,self_ns\n");
        for (path, s) in &self.data.spans {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                crate::csv_escape(path),
                s.count,
                s.total_ns,
                s.self_ns()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0);
        }
    }

    #[test]
    fn spans_without_install_are_inert() {
        let _a = span("never.recorded");
        gauge("never.sampled", 1);
        // Nothing to assert beyond "does not panic / leak state": an
        // install after the fact must observe an empty tree.
        let collector = Arc::new(ProfileCollector::new());
        {
            let _g = install(collector.clone());
        }
        assert!(collector.snapshot().spans.is_empty());
    }

    #[test]
    fn nesting_builds_calling_context_paths() {
        let collector = Arc::new(ProfileCollector::new());
        {
            let _g = install(collector.clone());
            for _ in 0..3 {
                let _outer = span("outer");
                spin(40_000);
                {
                    let _inner = span("inner");
                    spin(40_000);
                }
            }
            // The same label under a different parent is a different path.
            let _other = span("other");
            let _inner = span("inner");
        }
        let data = collector.snapshot();
        let paths: Vec<&str> = data.spans.keys().map(String::as_str).collect();
        assert_eq!(paths, vec!["other", "other/inner", "outer", "outer/inner"]);
        let outer = &data.spans["outer"];
        let inner = &data.spans["outer/inner"];
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns, "parent total covers child");
        assert!(outer.child_ns >= inner.total_ns.saturating_sub(outer.total_ns / 10));
        assert!(outer.self_ns() > 0, "outer spun outside the child span");
    }

    #[test]
    fn self_times_sum_to_root_totals() {
        let collector = Arc::new(ProfileCollector::new());
        {
            let _g = install(collector.clone());
            let _root = span("root");
            spin(50_000);
            for _ in 0..4 {
                let _child = span("work");
                spin(25_000);
            }
        }
        // Locals drop in reverse declaration order, so `_root` closes
        // before `_g` flushes: the flush sees a fully closed tree.
        let data = collector.snapshot();
        let root_total = data.spans["root"].total_ns;
        let self_sum = data.self_total_ns();
        // Exact identity: sum(self) telescopes to sum(root totals).
        assert_eq!(self_sum, root_total);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |specs: &[(&str, u64, u64, u64)], gauges: &[(&str, u64)]| {
            let mut d = ProfileData::default();
            for &(path, count, total, child) in specs {
                d.spans.insert(
                    path.to_string(),
                    SpanStats { count, total_ns: total, child_ns: child },
                );
            }
            for &(name, v) in gauges {
                d.gauges.entry(name.to_string()).or_default().sample(v);
            }
            d
        };
        let a = mk(&[("x", 1, 100, 40), ("x/y", 2, 40, 0)], &[("g", 3)]);
        let b = mk(&[("x", 2, 300, 100), ("z", 1, 9, 0)], &[("g", 9), ("h", 1)]);
        let c = mk(&[("x/y", 5, 70, 10)], &[]);

        let merge = |lhs: &ProfileData, rhs: &ProfileData| {
            let mut out = lhs.clone();
            out.merge(rhs);
            out
        };
        let ab_c = merge(&merge(&a, &b), &c);
        let a_bc = merge(&a, &merge(&b, &c));
        assert_eq!(ab_c, a_bc, "associative");
        assert_eq!(merge(&a, &b), merge(&b, &a), "commutative");
        assert_eq!(ab_c.spans["x"].count, 3);
        assert_eq!(ab_c.spans["x"].total_ns, 400);
        assert_eq!(ab_c.gauges["g"].samples, 2);
        assert_eq!(ab_c.gauges["g"].min, 3);
        assert_eq!(ab_c.gauges["g"].max, 9);
    }

    #[test]
    fn worker_trees_merge_into_one_report() {
        let collector = Arc::new(ProfileCollector::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let collector = collector.clone();
                std::thread::spawn(move || {
                    let _g = install(collector);
                    let _job = span("job");
                    let _step = span("step");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let data = collector.snapshot();
        assert_eq!(data.spans["job"].count, 4);
        assert_eq!(data.spans["job/step"].count, 4);
    }

    #[test]
    fn report_serialises_schema_and_tables() {
        let collector = Arc::new(ProfileCollector::new());
        {
            let _g = install(collector.clone());
            {
                let _s = span("alpha");
                let _t = span("beta");
            }
            gauge("depth", 5);
            gauge("depth", 11);
        }
        let report = collector.report("t0", 123_456);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"arpshield-profile/1\""));
        assert!(json.contains("\"experiment\": \"t0\""));
        assert!(json.contains("\"wall_ns\": 123456"));
        assert!(json.contains("\"path\": \"alpha/beta\""));
        assert!(json.contains("\"name\": \"beta\""));
        assert!(json
            .contains("\"name\": \"depth\", \"samples\": 2, \"min\": 5, \"max\": 11, \"sum\": 16"));
        let csv = report.to_csv();
        assert!(csv.starts_with("path,count,total_ns,self_ns\n"));
        assert!(csv.contains("alpha/beta,1,"));
    }

    #[test]
    fn nested_installs_record_into_the_innermost() {
        let outer = Arc::new(ProfileCollector::new());
        let inner = Arc::new(ProfileCollector::new());
        {
            let _og = install(outer.clone());
            {
                let _s = span("outer.only");
            }
            {
                let _ig = install(inner.clone());
                let _s = span("inner.only");
            }
        }
        assert!(outer.snapshot().spans.contains_key("outer.only"));
        assert!(!outer.snapshot().spans.contains_key("inner.only"));
        assert!(inner.snapshot().spans.contains_key("inner.only"));
    }
}
