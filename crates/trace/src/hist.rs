//! Fixed-bin log₂ histograms.
//!
//! Buckets are *fixed*, not adaptive: bucket 0 holds the value 0 and
//! bucket `b ≥ 1` holds `[2^(b-1), 2^b)`. Recording never rebalances,
//! so merging two histograms is per-bin integer addition — an
//! associative, commutative operation — which is what makes trace
//! output byte-stable no matter how runs are scheduled across worker
//! threads.

/// Number of buckets: one for zero plus one per power of two up to
/// `u64::MAX`.
pub const BUCKETS: usize = 65;

/// The fixed bucket index for a value: 0 for 0, otherwise
/// `64 - value.leading_zeros()` (the position of the highest set bit,
/// one-based).
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// The inclusive value range `[low, high]` covered by bucket `index`.
pub fn bucket_range(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically durations in
/// simulated nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { bins: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.bins[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupancy of bucket `index`.
    pub fn bin(&self, index: usize) -> u64 {
        self.bins[index]
    }

    /// Folds `other` into `self` by per-bin addition.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs, in
    /// ascending bucket order (the sparse form the manifest exports).
    pub fn nonzero_bins(&self) -> Vec<(usize, u64)> {
        self.bins.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }

    /// The tightest `[low, high]` interval the bins can give for the
    /// `q`-quantile (rank `ceil(q·count)`, clamped to `[1, count]`):
    /// the containing bucket's range, narrowed by the recorded
    /// min/max. The exact quantile of the recorded samples always lies
    /// inside. `None` when empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &occupancy) in self.bins.iter().enumerate() {
            seen += occupancy;
            if seen >= rank {
                let (low, high) = bucket_range(index);
                return Some((low.max(self.min), high.min(self.max)));
            }
        }
        unreachable!("bin occupancies sum to count")
    }

    /// The upper bound of [`quantile_bounds`](Histogram::quantile_bounds)
    /// — the conservative single-number summary exported as
    /// `p50`/`p90`/`p99`. `None` when empty.
    pub fn quantile_estimate(&self, q: f64) -> Option<u64> {
        self.quantile_bounds(q).map(|(_, high)| high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_range(b);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
        }
    }

    #[test]
    fn quantile_bounds_bracket_exact_quantiles() {
        let mut h = Histogram::new();
        let samples = [3u64, 9, 17, 17, 40, 100, 1000, 5000, 5000, 65000];
        for v in samples {
            h.record(v);
        }
        for (q, exact) in [(0.5, 40u64), (0.9, 5000), (0.99, 65000), (0.0, 3), (1.0, 65000)] {
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(lo <= exact && exact <= hi, "q={q}: {exact} not in [{lo}, {hi}]");
            assert_eq!(h.quantile_estimate(q), Some(hi));
        }
        // min/max narrow the edge buckets.
        assert_eq!(h.quantile_bounds(0.0).unwrap().0, 3);
        assert_eq!(h.quantile_bounds(1.0).unwrap().1, 65000);
        assert_eq!(Histogram::new().quantile_bounds(0.5), None);
        assert_eq!(Histogram::new().quantile_estimate(0.5), None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.quantile_bounds(0.5), Some((777, 777)));
        assert_eq!(h.quantile_estimate(0.99), Some(777));
    }

    #[test]
    fn empty_histogram_has_no_quantiles_at_any_q() {
        let h = Histogram::new();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_estimate(q), None, "q={q}");
            assert_eq!(h.quantile_bounds(q), None, "q={q}");
        }
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_bin_quantiles_narrow_to_recorded_extremes() {
        // All samples land in bucket 3 ([4, 7]); min/max must narrow
        // every quantile's bounds to [5, 7], not the bucket's [4, 7].
        let mut h = Histogram::new();
        for v in [5u64, 6, 7, 7] {
            h.record(v);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_bounds(q), Some((5, 7)), "q={q}");
            assert_eq!(h.quantile_estimate(q), Some(7), "q={q}");
        }
        // The zero bucket is its own single-bin case: exact by design.
        let mut zeros = Histogram::new();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.quantile_bounds(0.5), Some((0, 0)));
        assert_eq!(zeros.quantile_estimate(1.0), Some(0));
    }

    #[test]
    fn record_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0u64, 1, 5, 5, 900] {
            a.record(v);
        }
        for v in [7u64, 1_000_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), Some(0));
        assert_eq!(merged.max(), Some(1_000_000));
        for i in 0..BUCKETS {
            assert_eq!(merged.bin(i), a.bin(i) + b.bin(i));
        }
    }
}
