//! The one CSV field escaper shared by every CSV writer in the
//! workspace (report tables, report series, trace manifests).

/// Escapes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in double quotes with
/// embedded quotes doubled. Clean fields pass through unchanged, so
/// writers that only ever emit clean fields produce byte-identical
/// output with or without the escaper.
pub fn csv_escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fields_pass_through() {
        assert_eq!(csv_escape("hosts"), "hosts");
        assert_eq!(csv_escape("10.0.0.7"), "10.0.0.7");
        assert_eq!(csv_escape(""), "");
    }

    #[test]
    fn commas_and_quotes_are_quoted() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn embedded_newlines_are_quoted() {
        assert_eq!(csv_escape("line1\nline2"), "\"line1\nline2\"");
        assert_eq!(csv_escape("cr\rlf"), "\"cr\rlf\"");
    }
}
