//! Shared parsing for `ARPSHIELD_*` environment knobs.
//!
//! Every knob in the workspace has the same contract: a missing
//! variable silently yields the default, and *anything else that does
//! not parse cleanly* yields the default plus a warning string for the
//! caller to surface — no knob may panic, abort the run, or silently
//! swallow garbage. Centralising the parse here keeps that contract
//! uniform instead of each call site improvising.
//!
//! Warnings are returned as values (not printed) so call sites can
//! route them into an installed [`TraceCollector`](crate::TraceCollector)
//! for deterministic manifest export, falling back to stderr via
//! [`report`] when no collector is installed.

/// A snapshot of one environment variable, ready to parse.
///
/// Obtain with [`knob`]; the value is read once at construction so
/// repeated parses observe a consistent snapshot.
#[derive(Debug, Clone)]
pub struct EnvKnob {
    name: &'static str,
    raw: Option<String>,
    non_unicode: bool,
}

/// Reads `name` from the environment into an [`EnvKnob`].
pub fn knob(name: &'static str) -> EnvKnob {
    match std::env::var(name) {
        Ok(raw) => EnvKnob { name, raw: Some(raw), non_unicode: false },
        Err(std::env::VarError::NotPresent) => EnvKnob { name, raw: None, non_unicode: false },
        Err(std::env::VarError::NotUnicode(_)) => EnvKnob { name, raw: None, non_unicode: true },
    }
}

impl EnvKnob {
    /// The variable name this knob snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Parses the knob as a `T`, or `None` when unset. A set-but-garbage
    /// value (unparseable, failing `valid`, or non-unicode) yields
    /// `None` plus a warning mentioning `expected`.
    pub fn parse_opt<T: std::str::FromStr>(
        &self,
        expected: &str,
        valid: impl FnOnce(&T) -> bool,
    ) -> (Option<T>, Option<String>) {
        if self.non_unicode {
            return (None, Some(format!("ignoring non-unicode {}", self.name)));
        }
        let Some(raw) = &self.raw else {
            return (None, None);
        };
        match raw.trim().parse::<T>() {
            Ok(v) if valid(&v) => (Some(v), None),
            _ => (None, Some(format!("ignoring {}={raw:?}: expected {expected}", self.name))),
        }
    }

    /// Parses the knob as a `T`, falling back to `default` when unset
    /// or garbage (the garbage case also returns a warning).
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        default: T,
        expected: &str,
        valid: impl FnOnce(&T) -> bool,
    ) -> (T, Option<String>) {
        let (value, warning) = self.parse_opt(expected, valid);
        (value.unwrap_or(default), warning)
    }

    /// Parses a comma-separated list of `T`, falling back to `default`
    /// when unset or when *any* element is garbage (all-or-nothing, so
    /// a typo cannot silently shrink a sweep).
    pub fn parse_list_or<T: std::str::FromStr>(
        &self,
        default: Vec<T>,
        expected: &str,
        valid: impl Fn(&T) -> bool,
    ) -> (Vec<T>, Option<String>) {
        if self.non_unicode {
            return (default, Some(format!("ignoring non-unicode {}", self.name)));
        }
        let Some(raw) = &self.raw else {
            return (default, None);
        };
        let parsed: Option<Vec<T>> =
            raw.split(',').map(|part| part.trim().parse::<T>().ok().filter(|v| valid(v))).collect();
        match parsed {
            Some(list) if !list.is_empty() => (list, None),
            _ => (default, Some(format!("ignoring {}={raw:?}: expected {expected}", self.name))),
        }
    }

    /// Interprets the knob as a boolean flag. `1`/`true`/`yes`/`on`
    /// (case-insensitive) are true; unset, empty, `0`/`false`/`no`/`off`
    /// are false; anything else is false plus a warning.
    pub fn flag(&self) -> (bool, Option<String>) {
        if self.non_unicode {
            return (false, Some(format!("ignoring non-unicode {}", self.name)));
        }
        let Some(raw) = &self.raw else {
            return (false, None);
        };
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "yes" | "on" => (true, None),
            "" | "0" | "false" | "no" | "off" => (false, None),
            _ => (
                false,
                Some(format!(
                    "ignoring {}={raw:?}: expected a boolean (1/0/true/false/yes/no/on/off)",
                    self.name
                )),
            ),
        }
    }
}

/// Routes a knob warning to the installed [`TraceCollector`](crate::TraceCollector)
/// (so it lands in the deterministic manifest) or to stderr when no
/// collector is installed. A `None` warning is a no-op, so call sites
/// can pass the tuple member through unconditionally.
pub fn report(warning: Option<String>) {
    let Some(warning) = warning else { return };
    match crate::current() {
        Some(collector) => collector.warn(warning),
        None => eprintln!("warning: {warning}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a distinct variable name: tests in one binary run
    // concurrently and the process environment is shared state.

    #[test]
    fn unset_yields_default_silently() {
        let k = knob("ARPSHIELD_TEST_KNOB_UNSET");
        assert_eq!(k.parse_or(7usize, "a positive integer", |n| *n >= 1), (7, None));
        assert_eq!(k.flag(), (false, None));
        let (list, warning) = k.parse_list_or(vec![1u32, 2], "sizes", |_| true);
        assert_eq!(list, vec![1, 2]);
        assert!(warning.is_none());
    }

    #[test]
    fn valid_values_parse_without_warning() {
        std::env::set_var("ARPSHIELD_TEST_KNOB_VALID", " 42 ");
        let k = knob("ARPSHIELD_TEST_KNOB_VALID");
        assert_eq!(k.parse_or(0usize, "a positive integer", |n| *n >= 1), (42, None));
        std::env::remove_var("ARPSHIELD_TEST_KNOB_VALID");
    }

    #[test]
    fn garbage_warns_and_defaults() {
        std::env::set_var("ARPSHIELD_TEST_KNOB_GARBAGE", "lots");
        let k = knob("ARPSHIELD_TEST_KNOB_GARBAGE");
        let (n, warning) = k.parse_or(5usize, "a positive integer", |n| *n >= 1);
        assert_eq!(n, 5);
        let warning = warning.unwrap();
        assert!(warning.contains("ARPSHIELD_TEST_KNOB_GARBAGE"));
        assert!(warning.contains("lots"));
        assert!(warning.contains("a positive integer"));
        std::env::remove_var("ARPSHIELD_TEST_KNOB_GARBAGE");
    }

    #[test]
    fn failing_the_validator_counts_as_garbage() {
        std::env::set_var("ARPSHIELD_TEST_KNOB_RANGE", "0");
        let k = knob("ARPSHIELD_TEST_KNOB_RANGE");
        let (n, warning) = k.parse_or(3usize, "a positive integer", |n| *n >= 1);
        assert_eq!(n, 3);
        assert!(warning.is_some());
        std::env::remove_var("ARPSHIELD_TEST_KNOB_RANGE");
    }

    #[test]
    fn lists_are_all_or_nothing() {
        std::env::set_var("ARPSHIELD_TEST_KNOB_LIST", "10, 20 ,30");
        let k = knob("ARPSHIELD_TEST_KNOB_LIST");
        let (list, warning) = k.parse_list_or(vec![1usize], "sizes", |n| *n >= 1);
        assert_eq!(list, vec![10, 20, 30]);
        assert!(warning.is_none());

        std::env::set_var("ARPSHIELD_TEST_KNOB_LIST", "10,oops,30");
        let k = knob("ARPSHIELD_TEST_KNOB_LIST");
        let (list, warning) = k.parse_list_or(vec![1usize], "sizes", |n| *n >= 1);
        assert_eq!(list, vec![1], "one bad element rejects the whole list");
        assert!(warning.unwrap().contains("oops"));
        std::env::remove_var("ARPSHIELD_TEST_KNOB_LIST");
    }

    #[test]
    fn flags_accept_common_spellings() {
        for (raw, want, warns) in [
            ("1", true, false),
            ("TRUE", true, false),
            ("yes", true, false),
            ("on", true, false),
            ("0", false, false),
            ("off", false, false),
            ("", false, false),
            ("maybe", false, true),
        ] {
            std::env::set_var("ARPSHIELD_TEST_KNOB_FLAG", raw);
            let (got, warning) = knob("ARPSHIELD_TEST_KNOB_FLAG").flag();
            assert_eq!(got, want, "flag({raw:?})");
            assert_eq!(warning.is_some(), warns, "flag({raw:?}) warning");
        }
        std::env::remove_var("ARPSHIELD_TEST_KNOB_FLAG");
    }
}
