//! Minimal JSON string quoting for manifest export. Writing only —
//! validation of emitted manifests lives in the testkit's JSON parser.

/// Quotes `s` as a JSON string literal, escaping the characters JSON
/// requires (quote, backslash, control characters).
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("nl\ntab\t"), "\"nl\\ntab\\t\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }
}
