//! A hand-rolled pcapng (RFC draft-ietf-opsawg-pcapng) writer and
//! reader — just the four block types a capture needs, little-endian,
//! no external dependencies. Files written here open in Wireshark and
//! tshark; one Interface Description Block per simulated run (named
//! after the run label, nanosecond timestamp resolution) keeps
//! multi-run experiment captures in a single file.
//!
//! Two readers share the format logic but differ in contract:
//!
//! - [`parse`] loads a whole buffer and is strict — a truncated tail is
//!   an error, because arpshield's own artifacts are never truncated.
//! - [`PcapngStream`] pulls blocks from any [`Read`] source in constant
//!   memory and is lenient where real captures are messy: a file cut
//!   mid-block (capture process killed) yields every complete block
//!   plus a warning instead of an error.
//!
//! Both accept multi-section files (a new Section Header Block restarts
//! the on-wire interface numbering; readers remap packet interface ids
//! onto one global list, so concatenated captures just work).

use std::io::Read;

/// Section Header Block type.
const SHB_TYPE: u32 = 0x0A0D_0D0A;
/// Byte-order magic written (and required) little-endian.
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
/// Interface Description Block type.
const IDB_TYPE: u32 = 0x0000_0001;
/// Enhanced Packet Block type.
const EPB_TYPE: u32 = 0x0000_0006;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u16 = 1;
/// Option codes.
const OPT_END: u16 = 0;
const OPT_COMMENT: u16 = 1;
const OPT_SHB_USERAPPL: u16 = 4;
const OPT_IF_NAME: u16 = 2;
const OPT_IF_TSRESOL: u16 = 9;

fn pad4(len: usize) -> usize {
    (4 - len % 4) % 4
}

/// Serializes one option (code, raw value padded to 4 bytes).
fn push_option(body: &mut Vec<u8>, code: u16, value: &[u8]) {
    body.extend_from_slice(&code.to_le_bytes());
    body.extend_from_slice(&(value.len() as u16).to_le_bytes());
    body.extend_from_slice(value);
    body.extend(std::iter::repeat(0u8).take(pad4(value.len())));
}

/// Incrementally builds a single-section pcapng file.
#[derive(Debug)]
pub struct PcapngWriter {
    out: Vec<u8>,
    interfaces: u32,
}

impl PcapngWriter {
    /// Starts a file whose Section Header Block names `application` in
    /// its `shb_userappl` option.
    pub fn new(application: &str) -> Self {
        let mut body = Vec::new();
        body.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes()); // major version
        body.extend_from_slice(&0u16.to_le_bytes()); // minor version
        body.extend_from_slice(&u64::MAX.to_le_bytes()); // section length: unknown
        push_option(&mut body, OPT_SHB_USERAPPL, application.as_bytes());
        push_option(&mut body, OPT_END, &[]);
        let mut writer = PcapngWriter { out: Vec::new(), interfaces: 0 };
        writer.push_block(SHB_TYPE, &body);
        writer
    }

    fn push_block(&mut self, block_type: u32, body: &[u8]) {
        debug_assert_eq!(body.len() % 4, 0, "block bodies are pre-padded");
        let total = (body.len() + 12) as u32;
        self.out.extend_from_slice(&block_type.to_le_bytes());
        self.out.extend_from_slice(&total.to_le_bytes());
        self.out.extend_from_slice(body);
        self.out.extend_from_slice(&total.to_le_bytes());
    }

    /// Adds an Ethernet interface named `name` with nanosecond
    /// timestamps and no snap limit; returns its interface id.
    pub fn add_interface(&mut self, name: &str) -> u32 {
        let mut body = Vec::new();
        body.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes()); // reserved
        body.extend_from_slice(&0u32.to_le_bytes()); // snaplen: unlimited
        push_option(&mut body, OPT_IF_NAME, name.as_bytes());
        push_option(&mut body, OPT_IF_TSRESOL, &[9]); // 10^-9 s
        push_option(&mut body, OPT_END, &[]);
        self.push_block(IDB_TYPE, &body);
        let id = self.interfaces;
        self.interfaces += 1;
        id
    }

    /// Appends one Enhanced Packet Block on `interface` at `ts_ns`
    /// with `comment` as its `opt_comment`.
    pub fn add_packet(&mut self, interface: u32, ts_ns: u64, bytes: &[u8], comment: &str) {
        let mut body = Vec::new();
        body.extend_from_slice(&interface.to_le_bytes());
        body.extend_from_slice(&((ts_ns >> 32) as u32).to_le_bytes());
        body.extend_from_slice(&(ts_ns as u32).to_le_bytes());
        body.extend_from_slice(&(bytes.len() as u32).to_le_bytes()); // captured
        body.extend_from_slice(&(bytes.len() as u32).to_le_bytes()); // original
        body.extend_from_slice(bytes);
        body.extend(std::iter::repeat(0u8).take(pad4(bytes.len())));
        if !comment.is_empty() {
            push_option(&mut body, OPT_COMMENT, comment.as_bytes());
            push_option(&mut body, OPT_END, &[]);
        }
        self.push_block(EPB_TYPE, &body);
    }

    /// Finishes the file and returns its bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// One decoded packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapngPacket {
    /// Index into [`PcapngFile::interfaces`].
    pub interface: usize,
    /// Timestamp in nanoseconds (scaled from the interface's tsresol).
    pub ts_ns: u64,
    /// The captured octets.
    pub bytes: Vec<u8>,
    /// The packet's `opt_comment`, empty when absent.
    pub comment: String,
}

/// A decoded capture: interface names in id order plus every packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PcapngFile {
    /// `if_name` per interface, in interface-id order ("" when unnamed).
    pub interfaces: Vec<String>,
    /// All Enhanced Packet Blocks, in file order.
    pub packets: Vec<PcapngPacket>,
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let end = end.ok_or_else(|| format!("truncated file at offset {}", self.pos))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

/// Scans a block's options region for `(code, value)` pairs.
fn options(mut region: &[u8]) -> Vec<(u16, Vec<u8>)> {
    let mut found = Vec::new();
    while region.len() >= 4 {
        let code = u16::from_le_bytes([region[0], region[1]]);
        let len = u16::from_le_bytes([region[2], region[3]]) as usize;
        region = &region[4..];
        if code == OPT_END || region.len() < len {
            break;
        }
        found.push((code, region[..len].to_vec()));
        let advance = (len + pad4(len)).min(region.len());
        region = &region[advance..];
    }
    found
}

/// Nanoseconds per tick for an `if_tsresol` byte: a power of ten when
/// the MSB is clear, a power of two when set. Sub-nanosecond
/// resolutions floor to 1 ns per tick.
fn tsresol_to_ns(tsresol: u8) -> u64 {
    if tsresol & 0x80 == 0 {
        let exp = u32::from(tsresol);
        if exp >= 9 {
            1
        } else {
            10u64.pow(9 - exp)
        }
    } else {
        let exp = u32::from(tsresol & 0x7F);
        if exp >= 30 {
            1
        } else {
            1_000_000_000u64 >> exp
        }
    }
}

/// Parses a little-endian pcapng capture. Unknown block types are
/// skipped, which is what lets third-party tools' output (or future
/// writers) still load.
pub fn parse(data: &[u8]) -> Result<PcapngFile, String> {
    let mut r = Reader { data, pos: 0 };
    let mut file = PcapngFile::default();
    let mut tsresols: Vec<u8> = Vec::new();
    let mut seen_shb = false;
    // Interface ids restart at every Section Header Block; packets are
    // remapped onto the global interface list via this base.
    let mut section_base = 0usize;
    while r.pos < data.len() {
        let block_start = r.pos;
        let block_type = r.u32()?;
        let total_len = r.u32()? as usize;
        if total_len < 12 || total_len % 4 != 0 {
            return Err(format!("bad block length {total_len} at offset {block_start}"));
        }
        let body = r.take(total_len - 12)?;
        let trailer = r.u32()? as usize;
        if trailer != total_len {
            return Err(format!("mismatched block trailer at offset {block_start}"));
        }
        if !seen_shb && block_type != SHB_TYPE {
            return Err("file does not start with a section header block".to_string());
        }
        match block_type {
            SHB_TYPE => {
                if body.len() < 4 {
                    return Err("truncated section header".to_string());
                }
                let magic = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
                if magic != BYTE_ORDER_MAGIC {
                    return Err(format!(
                        "unsupported byte-order magic {magic:#010x} (expected little-endian)"
                    ));
                }
                seen_shb = true;
                section_base = file.interfaces.len();
            }
            IDB_TYPE => {
                if body.len() < 8 {
                    return Err("truncated interface description block".to_string());
                }
                let opts = options(&body[8..]);
                let name = opts
                    .iter()
                    .find(|(code, _)| *code == OPT_IF_NAME)
                    .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
                    .unwrap_or_default();
                let tsresol = opts
                    .iter()
                    .find(|(code, _)| *code == OPT_IF_TSRESOL)
                    .and_then(|(_, v)| v.first().copied())
                    .unwrap_or(6); // the spec default: microseconds
                file.interfaces.push(name);
                tsresols.push(tsresol);
            }
            EPB_TYPE => {
                if body.len() < 20 {
                    return Err("truncated enhanced packet block".to_string());
                }
                let word =
                    |i: usize| u32::from_le_bytes(body[i..i + 4].try_into().expect("4 bytes"));
                let interface = section_base + word(0) as usize;
                if interface >= file.interfaces.len() {
                    return Err(format!("packet references unknown interface {}", word(0)));
                }
                let ts = (u64::from(word(4)) << 32) | u64::from(word(8));
                let captured = word(12) as usize;
                if body.len() < 20 + captured {
                    return Err("packet data exceeds block".to_string());
                }
                let bytes = body[20..20 + captured].to_vec();
                let opts_at = 20 + captured + pad4(captured);
                let comment = options(&body[opts_at.min(body.len())..])
                    .into_iter()
                    .find(|(code, _)| *code == OPT_COMMENT)
                    .map(|(_, v)| String::from_utf8_lossy(&v).into_owned())
                    .unwrap_or_default();
                let ts_ns = ts.saturating_mul(tsresol_to_ns(tsresols[interface]));
                file.packets.push(PcapngPacket { interface, ts_ns, bytes, comment });
            }
            _ => {} // unknown block: skip
        }
    }
    if !seen_shb {
        return Err("empty capture".to_string());
    }
    Ok(file)
}

/// Blocks larger than this are treated as corruption by the streaming
/// reader: the length field arrives before the data, and a flipped bit
/// must not become a multi-gigabyte allocation.
pub const MAX_STREAM_BLOCK: usize = 16 << 20;

/// Counters a [`PcapngStream`] keeps while pulling blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Sections (SHBs) seen.
    pub sections: u64,
    /// Blocks of any type read completely.
    pub blocks: u64,
    /// Enhanced Packet Blocks yielded.
    pub packets: u64,
    /// Blocks of types this reader does not understand (skipped).
    pub unknown_blocks: u64,
    /// Total bytes consumed from the source, trailers included.
    pub bytes: u64,
}

/// One packet lent out of a [`PcapngStream`]; `bytes` and `comment`
/// borrow the stream's internal block buffer and are valid until the
/// next [`next_packet`](PcapngStream::next_packet) call.
#[derive(Debug)]
pub struct StreamPacket<'a> {
    /// Global interface index (see [`PcapngStream::interfaces`]).
    pub interface: usize,
    /// Timestamp in nanoseconds (scaled from the interface's tsresol).
    pub ts_ns: u64,
    /// The captured octets.
    pub bytes: &'a [u8],
    /// The packet's `opt_comment`, empty when absent or not UTF-8.
    pub comment: &'a str,
}

/// What one internal block step produced (kept borrow-free so the
/// packet slice can be carved out after the read loop).
enum Step {
    /// An EPB landed in the buffer: `(interface, ts_ns, data range, comment range)`.
    Packet(usize, u64, std::ops::Range<usize>, std::ops::Range<usize>),
    /// A non-packet block was consumed.
    Skip,
    /// Clean or truncated end of input.
    End,
}

/// A pull-based pcapng reader over any [`Read`] source.
///
/// Memory use is bounded by the largest single block, independent of
/// file length — the ingest path runs arbitrarily large captures (or
/// stdin pipes) through it. See the module docs for how its truncation
/// contract differs from [`parse`].
#[derive(Debug)]
pub struct PcapngStream<R> {
    input: R,
    /// Reusable body buffer for the block being decoded.
    buf: Vec<u8>,
    interfaces: Vec<String>,
    tsresols: Vec<u8>,
    section_base: usize,
    seen_shb: bool,
    warnings: Vec<String>,
    done: bool,
    offset: u64,
    stats: StreamStats,
}

impl<R: Read> PcapngStream<R> {
    /// Wraps a byte source. Nothing is read until the first
    /// [`next_packet`](Self::next_packet) call.
    pub fn new(input: R) -> Self {
        PcapngStream {
            input,
            buf: Vec::new(),
            interfaces: Vec::new(),
            tsresols: Vec::new(),
            section_base: 0,
            seen_shb: false,
            warnings: Vec::new(),
            done: false,
            offset: 0,
            stats: StreamStats::default(),
        }
    }

    /// Interface names seen so far, across all sections, in global-id
    /// order. Grows as IDBs are read; a yielded packet's `interface`
    /// always indexes into it.
    pub fn interfaces(&self) -> &[String] {
        &self.interfaces
    }

    /// Non-fatal problems hit so far (truncated tail). At most one per
    /// stream today, but future leniencies may add more.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Reader statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Pulls the next Enhanced Packet Block, transparently consuming
    /// section headers, interface descriptions, and unknown blocks.
    /// Returns `Ok(None)` at end of input — including a *truncated* end,
    /// which is additionally surfaced via [`warnings`](Self::warnings).
    ///
    /// # Errors
    ///
    /// Structural corruption in fully-present bytes is still an error:
    /// bad leading block, bad byte-order magic, implausible or
    /// misaligned block lengths, mismatched trailers, packets citing
    /// unknown interfaces.
    pub fn next_packet(&mut self) -> Result<Option<StreamPacket<'_>>, String> {
        let (interface, ts_ns, data, comment) = loop {
            if self.done {
                return Ok(None);
            }
            match self.step()? {
                Step::Packet(interface, ts_ns, data, comment) => {
                    break (interface, ts_ns, data, comment)
                }
                Step::Skip => continue,
                Step::End => {
                    self.done = true;
                    if !self.seen_shb && self.warnings.is_empty() {
                        return Err("empty capture".to_string());
                    }
                    return Ok(None);
                }
            }
        };
        let comment = std::str::from_utf8(&self.buf[comment]).unwrap_or("");
        Ok(Some(StreamPacket { interface, ts_ns, bytes: &self.buf[data], comment }))
    }

    /// Reads exactly `buf.len()` bytes. `Ok(n)` with `n < buf.len()`
    /// means the source ended early (n may be 0: clean EOF).
    fn read_fully(&mut self, scratch: &mut [u8]) -> Result<usize, String> {
        let mut got = 0;
        while got < scratch.len() {
            match self.input.read(&mut scratch[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(format!("read error at offset {}: {e}", self.offset + got as u64))
                }
            }
        }
        self.offset += got as u64;
        self.stats.bytes += got as u64;
        Ok(got)
    }

    fn truncated(&mut self, what: &str) -> Step {
        self.warnings.push(format!(
            "capture truncated {what} at offset {}: keeping the {} complete packet(s) before it",
            self.offset, self.stats.packets
        ));
        Step::End
    }

    /// Consumes one block from the source.
    fn step(&mut self) -> Result<Step, String> {
        let block_start = self.offset;
        let mut head = [0u8; 8];
        let got = self.read_fully(&mut head)?;
        if got == 0 {
            return Ok(Step::End); // clean end between blocks
        }
        if got < head.len() {
            return Ok(self.truncated("inside a block header"));
        }
        let block_type = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
        let total_len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) as usize;
        if total_len < 12 || total_len % 4 != 0 {
            return Err(format!("bad block length {total_len} at offset {block_start}"));
        }
        if total_len > MAX_STREAM_BLOCK {
            return Err(format!(
                "implausible block length {total_len} at offset {block_start} (max {MAX_STREAM_BLOCK})"
            ));
        }
        self.buf.resize(total_len - 12, 0);
        let mut scratch = std::mem::take(&mut self.buf);
        let got = self.read_fully(&mut scratch)?;
        self.buf = scratch;
        if got < total_len - 12 {
            return Ok(self.truncated("inside a block body"));
        }
        let mut trailer = [0u8; 4];
        let got = self.read_fully(&mut trailer)?;
        if got < trailer.len() {
            return Ok(self.truncated("inside a block trailer"));
        }
        if u32::from_le_bytes(trailer) as usize != total_len {
            return Err(format!("mismatched block trailer at offset {block_start}"));
        }
        self.stats.blocks += 1;
        if !self.seen_shb && block_type != SHB_TYPE {
            return Err("file does not start with a section header block".to_string());
        }
        match block_type {
            SHB_TYPE => {
                if self.buf.len() < 4 {
                    return Err("truncated section header".to_string());
                }
                let magic = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
                if magic != BYTE_ORDER_MAGIC {
                    return Err(format!(
                        "unsupported byte-order magic {magic:#010x} (expected little-endian)"
                    ));
                }
                self.seen_shb = true;
                self.section_base = self.interfaces.len();
                self.stats.sections += 1;
                Ok(Step::Skip)
            }
            IDB_TYPE => {
                if self.buf.len() < 8 {
                    return Err("truncated interface description block".to_string());
                }
                let opts = options(&self.buf[8..]);
                let name = opts
                    .iter()
                    .find(|(code, _)| *code == OPT_IF_NAME)
                    .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
                    .unwrap_or_default();
                let tsresol = opts
                    .iter()
                    .find(|(code, _)| *code == OPT_IF_TSRESOL)
                    .and_then(|(_, v)| v.first().copied())
                    .unwrap_or(6); // the spec default: microseconds
                self.interfaces.push(name);
                self.tsresols.push(tsresol);
                Ok(Step::Skip)
            }
            EPB_TYPE => {
                if self.buf.len() < 20 {
                    return Err("truncated enhanced packet block".to_string());
                }
                let word =
                    |i: usize| u32::from_le_bytes(self.buf[i..i + 4].try_into().expect("4 bytes"));
                let local = word(0) as usize;
                let interface = self.section_base + local;
                if interface >= self.interfaces.len() {
                    return Err(format!("packet references unknown interface {local}"));
                }
                let ts = (u64::from(word(4)) << 32) | u64::from(word(8));
                let captured = word(12) as usize;
                if self.buf.len() < 20 + captured {
                    return Err("packet data exceeds block".to_string());
                }
                let opts_at = (20 + captured + pad4(captured)).min(self.buf.len());
                let comment = options(&self.buf[opts_at..])
                    .into_iter()
                    .find(|(code, _)| *code == OPT_COMMENT)
                    .map(|(_, value)| value)
                    .unwrap_or_default();
                // Relocate the comment into the buffer's tail so the
                // yielded ranges both borrow `self.buf`.
                let comment_at = self.buf.len();
                self.buf.extend_from_slice(&comment);
                let ts_ns = ts.saturating_mul(tsresol_to_ns(self.tsresols[interface]));
                self.stats.packets += 1;
                Ok(Step::Packet(
                    interface,
                    ts_ns,
                    20..20 + captured,
                    comment_at..comment_at + comment.len(),
                ))
            }
            _ => {
                self.stats.unknown_blocks += 1;
                Ok(Step::Skip)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The writer's exact framing, byte for byte — the on-disk format
    /// is a public contract with Wireshark/tshark, so it is pinned as
    /// golden bytes, not just round-tripped.
    #[test]
    fn golden_bytes_shb_idb_epb() {
        let mut w = PcapngWriter::new("app");
        let iface = w.add_interface("run-a");
        assert_eq!(iface, 0);
        w.add_packet(0, 0x1_0000_0001, &[0xAA, 0xBB, 0xCC], "c");
        let bytes = w.finish();

        // --- SHB ---
        assert_eq!(&bytes[0..4], &[0x0A, 0x0D, 0x0D, 0x0A], "SHB block type");
        let shb_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        assert_eq!(&bytes[8..12], &[0x4D, 0x3C, 0x2B, 0x1A], "little-endian byte-order magic");
        assert_eq!(&bytes[12..16], &[1, 0, 0, 0], "version 1.0");
        assert_eq!(&bytes[16..24], &[0xFF; 8], "section length unknown");
        // shb_userappl option: code 4, len 3, "app" + 1 pad byte.
        assert_eq!(&bytes[24..32], &[4, 0, 3, 0, b'a', b'p', b'p', 0]);
        assert_eq!(&bytes[32..36], &[0, 0, 0, 0], "opt_endofopt");
        assert_eq!(
            u32::from_le_bytes(bytes[shb_len - 4..shb_len].try_into().unwrap()) as usize,
            shb_len,
            "trailing block length mirrors the leading one"
        );
        assert_eq!(shb_len, 40);

        // --- IDB ---
        let idb = &bytes[shb_len..];
        assert_eq!(&idb[0..4], &[1, 0, 0, 0], "IDB block type");
        let idb_len = u32::from_le_bytes(idb[4..8].try_into().unwrap()) as usize;
        assert_eq!(&idb[8..10], &[1, 0], "LINKTYPE_ETHERNET");
        assert_eq!(&idb[10..12], &[0, 0], "reserved");
        assert_eq!(&idb[12..16], &[0, 0, 0, 0], "snaplen unlimited");
        // if_name: code 2, len 5, "run-a" + 3 pad.
        assert_eq!(&idb[16..28], &[2, 0, 5, 0, b'r', b'u', b'n', b'-', b'a', 0, 0, 0]);
        // if_tsresol: code 9, len 1, value 9 (nanoseconds) + 3 pad.
        assert_eq!(&idb[28..36], &[9, 0, 1, 0, 9, 0, 0, 0]);
        assert_eq!(&idb[36..40], &[0, 0, 0, 0], "opt_endofopt");
        assert_eq!(idb_len, 44);

        // --- EPB ---
        let epb = &idb[idb_len..];
        assert_eq!(&epb[0..4], &[6, 0, 0, 0], "EPB block type");
        let epb_len = u32::from_le_bytes(epb[4..8].try_into().unwrap()) as usize;
        assert_eq!(&epb[8..12], &[0, 0, 0, 0], "interface id 0");
        assert_eq!(u32::from_le_bytes(epb[12..16].try_into().unwrap()), 1, "timestamp high");
        assert_eq!(u32::from_le_bytes(epb[16..20].try_into().unwrap()), 1, "timestamp low");
        assert_eq!(u32::from_le_bytes(epb[20..24].try_into().unwrap()), 3, "captured length");
        assert_eq!(u32::from_le_bytes(epb[24..28].try_into().unwrap()), 3, "original length");
        assert_eq!(&epb[28..32], &[0xAA, 0xBB, 0xCC, 0], "data padded to 4");
        assert_eq!(&epb[32..40], &[1, 0, 1, 0, b'c', 0, 0, 0], "opt_comment");
        assert_eq!(&epb[40..44], &[0, 0, 0, 0], "opt_endofopt");
        assert_eq!(epb_len, 48);
        assert_eq!(bytes.len(), shb_len + idb_len + epb_len);
    }

    #[test]
    fn roundtrip_multiple_interfaces() {
        let mut w = PcapngWriter::new("arpshield");
        let a = w.add_interface("run a");
        let b = w.add_interface("run b");
        w.add_packet(a, 42, &[1, 2, 3, 4, 5, 6], "id=1 kind=deliver");
        w.add_packet(b, u64::from(u32::MAX) + 7, &[9; 60], "");
        w.add_packet(a, 43, &[7, 8], "id=2 kind=drop.lost pinned");
        let file = parse(&w.finish()).unwrap();
        assert_eq!(file.interfaces, vec!["run a".to_string(), "run b".to_string()]);
        assert_eq!(file.packets.len(), 3);
        assert_eq!(file.packets[0].interface, 0);
        assert_eq!(file.packets[0].ts_ns, 42);
        assert_eq!(file.packets[0].bytes, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(file.packets[0].comment, "id=1 kind=deliver");
        assert_eq!(file.packets[1].interface, 1);
        assert_eq!(file.packets[1].ts_ns, u64::from(u32::MAX) + 7, "64-bit timestamps survive");
        assert_eq!(file.packets[1].comment, "");
        assert_eq!(file.packets[2].comment, "id=2 kind=drop.lost pinned");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse(&[]).is_err());
        assert!(parse(&[0u8; 16]).is_err(), "not an SHB");
        let mut w = PcapngWriter::new("x");
        w.add_interface("i");
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 2);
        assert!(parse(&bytes).is_err(), "truncated trailer must not parse");
    }

    #[test]
    fn microsecond_tsresol_scales() {
        assert_eq!(tsresol_to_ns(9), 1);
        assert_eq!(tsresol_to_ns(6), 1_000);
        assert_eq!(tsresol_to_ns(0), 1_000_000_000);
        assert_eq!(tsresol_to_ns(0x80 | 10), 976_562, "2^-10 s in whole ns");
    }

    /// Collects a stream into the whole-buffer representation.
    fn collect_stream(data: &[u8]) -> Result<(PcapngFile, Vec<String>, StreamStats), String> {
        let mut stream = PcapngStream::new(data);
        let mut file = PcapngFile::default();
        while let Some(packet) = stream.next_packet()? {
            file.packets.push(PcapngPacket {
                interface: packet.interface,
                ts_ns: packet.ts_ns,
                bytes: packet.bytes.to_vec(),
                comment: packet.comment.to_string(),
            });
        }
        file.interfaces = stream.interfaces().to_vec();
        Ok((file, stream.warnings().to_vec(), stream.stats()))
    }

    #[test]
    fn streaming_matches_whole_buffer_parse() {
        let mut w = PcapngWriter::new("arpshield");
        let a = w.add_interface("run a");
        let b = w.add_interface("run b");
        w.add_packet(a, 42, &[1, 2, 3, 4, 5, 6], "id=1 kind=deliver");
        w.add_packet(b, u64::from(u32::MAX) + 7, &[9; 60], "");
        w.add_packet(a, 43, &[7, 8], "id=2 kind=drop.lost pinned");
        let bytes = w.finish();
        let whole = parse(&bytes).unwrap();
        let (streamed, warnings, stats) = collect_stream(&bytes).unwrap();
        assert_eq!(streamed, whole);
        assert!(warnings.is_empty());
        assert_eq!(stats.sections, 1);
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.bytes, bytes.len() as u64);
    }

    #[test]
    fn streaming_keeps_complete_blocks_of_a_truncated_file() {
        let mut w = PcapngWriter::new("x");
        let i = w.add_interface("i");
        w.add_packet(i, 1, &[0xAA; 20], "first");
        w.add_packet(i, 2, &[0xBB; 20], "second");
        let full = w.finish();
        // Cut the file in the middle of the last packet block.
        for cut in [full.len() - 2, full.len() - 20, full.len() - 45] {
            let (streamed, warnings, _) = collect_stream(&full[..cut]).unwrap();
            assert_eq!(streamed.packets.len(), 1, "complete packets survive a cut at {cut}");
            assert_eq!(streamed.packets[0].bytes, vec![0xAA; 20]);
            assert_eq!(warnings.len(), 1, "the cut is surfaced as a warning");
            assert!(warnings[0].contains("truncated"), "{}", warnings[0]);
            // The strict whole-buffer parse still refuses the same bytes.
            assert!(parse(&full[..cut]).is_err());
        }
    }

    #[test]
    fn multi_section_files_remap_interface_ids() {
        // Two single-section files concatenated — the classic
        // `mergecap`/appended-capture shape.
        let mut first = PcapngWriter::new("one");
        let a = first.add_interface("alpha");
        first.add_packet(a, 10, &[1; 14], "from-one");
        let mut second = PcapngWriter::new("two");
        let b = second.add_interface("beta");
        let c = second.add_interface("gamma");
        second.add_packet(c, 20, &[2; 14], "from-two");
        second.add_packet(b, 30, &[3; 14], "");
        let mut bytes = first.finish();
        bytes.extend_from_slice(&second.finish());

        let whole = parse(&bytes).expect("multi-section files parse");
        assert_eq!(whole.interfaces, vec!["alpha", "beta", "gamma"]);
        assert_eq!(
            whole.packets.iter().map(|p| p.interface).collect::<Vec<_>>(),
            vec![0, 2, 1],
            "second-section ids are remapped past the first section's"
        );
        let (streamed, warnings, stats) = collect_stream(&bytes).unwrap();
        assert_eq!(streamed, whole);
        assert!(warnings.is_empty());
        assert_eq!(stats.sections, 2);
    }

    #[test]
    fn streaming_rejects_structural_corruption() {
        assert!(PcapngStream::new(&[][..]).next_packet().is_err(), "empty capture");
        assert!(
            matches!(collect_stream(&[0u8; 64]), Err(e) if e.contains("bad block length")),
            "zeros are not a block stream"
        );
        let mut w = PcapngWriter::new("x");
        w.add_interface("i");
        let mut bytes = w.finish();
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF; // corrupt the IDB trailer
        assert!(
            matches!(collect_stream(&bytes), Err(e) if e.contains("mismatched block trailer")),
            "trailer mismatch in fully-present bytes stays fatal"
        );
        // An implausible length field must not drive a huge allocation.
        let mut huge = PcapngWriter::new("x").finish();
        huge.extend_from_slice(&EPB_TYPE.to_le_bytes());
        huge.extend_from_slice(&(u32::MAX & !3).to_le_bytes());
        assert!(matches!(collect_stream(&huge), Err(e) if e.contains("implausible block length")));
    }
}
