//! The bounded flight recorder: a per-run ring of raw frames with
//! pin-on-evict survival for alert evidence.
//!
//! Every delivered/dropped/duplicated frame the simulator dispatches
//! can be recorded here (octets copied once, stamped with simulated
//! nanoseconds). The ring bounds memory for arbitrarily long runs;
//! frames cited by scheme verdicts are *pinned* so eviction moves them
//! to a survivors list instead of discarding them — which is what
//! keeps every `scheme.verdict.*` event decodable back to the exact
//! bytes that triggered it, no matter how much traffic followed.

use std::collections::VecDeque;

/// Default ring capacity when `ARPSHIELD_RECORD_FRAMES` is unset.
pub const DEFAULT_RECORD_FRAMES: usize = 4096;

/// What happened to a frame on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FrameKind {
    /// Delivered to its destination port.
    Delivered,
    /// An impairment-injected duplicate copy, delivered.
    DuplicateDelivered,
    /// Dropped by a loss draw on an impaired link.
    DroppedLost,
    /// Dropped because a flapping link was down.
    DroppedLinkDown,
}

impl FrameKind {
    /// Stable label used in capture indexes and pcapng comments.
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::Delivered => "deliver",
            FrameKind::DuplicateDelivered => "deliver.dup",
            FrameKind::DroppedLost => "drop.lost",
            FrameKind::DroppedLinkDown => "drop.link_down",
        }
    }
}

/// One captured frame: its run-local id, sim-time stamp, fate, wire
/// endpoints (`device:port`), and the raw octets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecordedFrame {
    /// Run-local frame id, assigned 1, 2, 3, … in dispatch order. Ids
    /// keep counting past evicted frames, so an id is a stable
    /// reference even after its frame leaves the ring.
    pub id: u64,
    /// Simulation time of the record, in nanoseconds since run start.
    pub at_ns: u64,
    /// What happened to the frame.
    pub kind: FrameKind,
    /// Sending endpoint as `device:port`.
    pub src: String,
    /// Receiving (or intended) endpoint as `device:port`.
    pub dst: String,
    /// The raw octets as they crossed the wire.
    pub bytes: Vec<u8>,
    /// Whether an alert cited this frame (pinned frames survive ring
    /// eviction).
    pub pinned: bool,
}

/// A bounded ring of [`RecordedFrame`]s with pin-on-evict migration.
///
/// One recorder per run, owned by the run's
/// [`RunRecorder`](crate::RunRecorder), so captures are byte-identical
/// at any worker-thread count.
#[derive(Debug)]
pub struct FrameRecorder {
    capacity: usize,
    next_id: u64,
    ring: VecDeque<RecordedFrame>,
    /// Pinned frames that were evicted from the ring.
    survivors: Vec<RecordedFrame>,
    evicted: u64,
}

impl FrameRecorder {
    /// Creates a recorder holding at most `capacity` unpinned frames
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        FrameRecorder {
            capacity: capacity.max(1),
            next_id: 1,
            ring: VecDeque::new(),
            survivors: Vec::new(),
            evicted: 0,
        }
    }

    /// Records one frame and returns its id. When the ring is full the
    /// oldest frame makes room: pinned frames migrate to the survivors
    /// list, unpinned ones are counted and dropped.
    pub fn record(
        &mut self,
        at_ns: u64,
        kind: FrameKind,
        src: String,
        dst: String,
        bytes: &[u8],
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if self.ring.len() == self.capacity {
            let oldest = self.ring.pop_front().expect("full ring has a front");
            if oldest.pinned {
                self.survivors.push(oldest);
            } else {
                self.evicted += 1;
            }
        }
        self.ring.push_back(RecordedFrame {
            id,
            at_ns,
            kind,
            src,
            dst,
            bytes: bytes.to_vec(),
            pinned: false,
        });
        // Ring-fill gauge for `--profile` runs, decimated so a capture
        // without profiling pays one branch per 1024 frames.
        if id % 1024 == 0 {
            crate::profile::gauge("recorder.ring_fill", self.len() as u64);
        }
        id
    }

    /// Marks frame `id` as alert evidence. Returns `false` when the
    /// frame was already evicted unpinned (too late to save it).
    pub fn pin(&mut self, id: u64) -> bool {
        // Recent frames get pinned most often; scan the ring backwards.
        if let Some(frame) = self.ring.iter_mut().rev().find(|f| f.id == id) {
            frame.pinned = true;
            return true;
        }
        self.survivors.iter().any(|f| f.id == id)
    }

    /// Frames currently retained (ring plus pinned survivors).
    pub fn len(&self) -> usize {
        self.ring.len() + self.survivors.len()
    }

    /// True when nothing has been recorded or retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unpinned frames lost to eviction so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Consumes the recorder into `(frames sorted by id, evicted)`.
    pub fn into_frames(self) -> (Vec<RecordedFrame>, u64) {
        let mut frames = self.survivors;
        frames.extend(self.ring);
        frames.sort_by_key(|f| f.id);
        (frames, self.evicted)
    }
}

/// Reads the ring capacity from `ARPSHIELD_RECORD_FRAMES`, returning
/// `(capacity, warning)`. A missing variable yields the default
/// silently; a malformed one yields the default plus a warning string
/// for the caller to surface.
pub fn ring_capacity_from_env() -> (usize, Option<String>) {
    crate::env_knob::knob("ARPSHIELD_RECORD_FRAMES").parse_or(
        DEFAULT_RECORD_FRAMES,
        "a positive integer",
        |n| *n >= 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(rec: &mut FrameRecorder, n: u64) -> u64 {
        rec.record(n * 10, FrameKind::Delivered, format!("a:{n}"), "b:0".into(), &[n as u8; 4])
    }

    #[test]
    fn ids_are_sequential_from_one() {
        let mut rec = FrameRecorder::new(8);
        assert_eq!(frame(&mut rec, 1), 1);
        assert_eq!(frame(&mut rec, 2), 2);
        assert_eq!(frame(&mut rec, 3), 3);
    }

    #[test]
    fn eviction_preserves_pinned_frames() {
        let mut rec = FrameRecorder::new(4);
        for n in 1..=4 {
            frame(&mut rec, n);
        }
        assert!(rec.pin(2), "frame 2 is still in the ring");
        for n in 5..=10 {
            frame(&mut rec, n);
        }
        // Ring holds 7..=10; 1, 3, 4, 5, 6 evicted unpinned; 2 survived.
        let (frames, evicted) = rec.into_frames();
        let ids: Vec<u64> = frames.iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![2, 7, 8, 9, 10]);
        assert_eq!(evicted, 5);
        let saved = &frames[0];
        assert!(saved.pinned);
        assert_eq!(saved.bytes, vec![2u8; 4]);
        assert_eq!(saved.at_ns, 20);
    }

    #[test]
    fn pinning_an_evicted_frame_reports_loss() {
        let mut rec = FrameRecorder::new(2);
        for n in 1..=4 {
            frame(&mut rec, n);
        }
        assert!(!rec.pin(1), "frame 1 is gone; pin must report failure");
        assert!(rec.pin(4));
        assert!(rec.pin(4), "re-pinning a live frame stays true");
    }

    #[test]
    fn pinned_survivor_remains_pinnable() {
        let mut rec = FrameRecorder::new(1);
        frame(&mut rec, 1);
        rec.pin(1);
        frame(&mut rec, 2); // evicts frame 1 into the survivors list
        assert!(rec.pin(1), "survivors still count as retained evidence");
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut rec = FrameRecorder::new(0);
        frame(&mut rec, 1);
        frame(&mut rec, 2);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.evicted(), 1);
    }

    #[test]
    fn env_capacity_parses_and_warns() {
        // Serialized within this test to avoid env races with siblings.
        std::env::remove_var("ARPSHIELD_RECORD_FRAMES");
        assert_eq!(ring_capacity_from_env(), (DEFAULT_RECORD_FRAMES, None));
        std::env::set_var("ARPSHIELD_RECORD_FRAMES", "128");
        assert_eq!(ring_capacity_from_env(), (128, None));
        std::env::set_var("ARPSHIELD_RECORD_FRAMES", "zero");
        let (cap, warning) = ring_capacity_from_env();
        assert_eq!(cap, DEFAULT_RECORD_FRAMES);
        assert!(warning.unwrap().contains("zero"));
        std::env::set_var("ARPSHIELD_RECORD_FRAMES", "0");
        let (cap, warning) = ring_capacity_from_env();
        assert_eq!(cap, DEFAULT_RECORD_FRAMES);
        assert!(warning.is_some());
        std::env::remove_var("ARPSHIELD_RECORD_FRAMES");
    }
}
