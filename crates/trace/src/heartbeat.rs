//! Periodic wall-clock progress lines on stderr.
//!
//! Long runs — a 100k-host `t6s` sweep point, a multi-GB `ingest` —
//! were previously silent (or used ad-hoc `eprintln!`s) until they
//! finished. A [`Heartbeat`] emits one structured line every
//! `ARPSHIELD_HEARTBEAT_SECS` wall-seconds (default 1), in a uniform
//! format:
//!
//! ```text
//! arpshield t6s hosts=100000: heartbeat wall_s=1.00 sim_ms=812/2000 frames=412993 ...
//! arpshield t6s hosts=100000: done wall_s=2.41 frames=1020310 frames_per_wall_s=423365
//! ```
//!
//! Everything here is wall clock and therefore **stderr only** — the
//! same quarantine rule as [`profile`](crate::profile). `ARPSHIELD_QUIET=1`
//! suppresses all heartbeat output, which is what CI's byte-identity
//! diffs use to keep stderr clean.

use std::time::{Duration, Instant};

use crate::env_knob;

/// Default seconds between heartbeat lines when
/// `ARPSHIELD_HEARTBEAT_SECS` is unset.
pub const DEFAULT_HEARTBEAT_SECS: f64 = 1.0;

/// True when `ARPSHIELD_QUIET` is set truthy: all heartbeat output is
/// suppressed. Garbage values warn (via [`env_knob::report`]) and
/// default to not-quiet.
pub fn quiet() -> bool {
    let (quiet, warning) = env_knob::knob("ARPSHIELD_QUIET").flag();
    env_knob::report(warning);
    quiet
}

/// A per-task progress reporter. Construct one per long-running unit
/// (a sweep point, an ingest source), call [`Heartbeat::tick`] from the
/// work loop, and finish with [`Heartbeat::done`].
#[derive(Debug)]
pub struct Heartbeat {
    label: String,
    every: Duration,
    quiet: bool,
    started: Instant,
    last_emit: Instant,
    emitted: u64,
}

impl Heartbeat {
    /// Creates a reporter labelled `label` (shown on every line), with
    /// the interval and quiet flag read from the environment.
    pub fn new(label: impl Into<String>) -> Self {
        let (secs, warning) = env_knob::knob("ARPSHIELD_HEARTBEAT_SECS").parse_or(
            DEFAULT_HEARTBEAT_SECS,
            "a positive number of seconds",
            |v: &f64| v.is_finite() && *v > 0.0,
        );
        env_knob::report(warning);
        let now = Instant::now();
        Heartbeat {
            label: label.into(),
            every: Duration::from_secs_f64(secs),
            quiet: quiet(),
            started: now,
            last_emit: now,
            emitted: 0,
        }
    }

    /// True when output is suppressed (`ARPSHIELD_QUIET`).
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Wall time since construction.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Heartbeat lines emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Estimated seconds to completion given the fraction of work done,
    /// extrapolating the rate so far. `None` until any progress exists.
    pub fn eta_secs(&self, fraction_done: f64) -> Option<f64> {
        if !(fraction_done > 0.0) {
            return None;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        Some((elapsed * (1.0 - fraction_done.min(1.0)) / fraction_done).max(0.0))
    }

    /// Emits a heartbeat line when the interval has elapsed since the
    /// last one. `detail` is only invoked when a line is due, so tick
    /// is cheap to call from a loop (one `Instant` read); per-item hot
    /// loops should still decimate calls (e.g. every 4096 packets).
    /// Returns whether a line was emitted.
    pub fn tick(&mut self, detail: impl FnOnce(&Heartbeat) -> String) -> bool {
        if self.quiet || self.last_emit.elapsed() < self.every {
            return false;
        }
        self.last_emit = Instant::now();
        self.emitted += 1;
        let line = detail(self);
        self.emit("heartbeat", &line);
        true
    }

    /// Emits the final summary line for this task (unconditionally,
    /// unless quiet).
    pub fn done(&self, detail: &str) {
        if self.quiet {
            return;
        }
        self.emit("done", detail);
    }

    fn emit(&self, event: &str, detail: &str) {
        let wall_s = self.started.elapsed().as_secs_f64();
        eprintln!("arpshield {}: {event} wall_s={wall_s:.2} {detail}", self.label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_respects_the_interval() {
        // Bypass env reading: construct by hand to avoid races with
        // other tests over ARPSHIELD_HEARTBEAT_SECS / ARPSHIELD_QUIET.
        let now = Instant::now();
        let mut hb = Heartbeat {
            label: "test".into(),
            every: Duration::from_secs(3600),
            quiet: true, // suppress output; we only check gating logic
            started: now,
            last_emit: now,
            emitted: 0,
        };
        assert!(!hb.tick(|_| unreachable!("interval has not elapsed")));
        hb.quiet = false;
        hb.every = Duration::ZERO;
        assert!(hb.tick(|hb| format!("n={}", hb.emitted())));
        assert_eq!(hb.emitted(), 1);
    }

    #[test]
    fn quiet_suppresses_even_due_ticks() {
        let now = Instant::now();
        let mut hb = Heartbeat {
            label: "test".into(),
            every: Duration::ZERO,
            quiet: true,
            started: now,
            last_emit: now,
            emitted: 0,
        };
        assert!(!hb.tick(|_| unreachable!("quiet must short-circuit")));
        hb.done("never printed");
        assert_eq!(hb.emitted(), 0);
    }

    #[test]
    fn eta_extrapolates_from_progress() {
        let hb = Heartbeat {
            label: "test".into(),
            every: Duration::from_secs(1),
            quiet: true,
            started: Instant::now() - Duration::from_secs(10),
            last_emit: Instant::now(),
            emitted: 0,
        };
        assert!(hb.eta_secs(0.0).is_none());
        assert!(hb.eta_secs(-1.0).is_none());
        let eta = hb.eta_secs(0.5).unwrap();
        assert!((eta - 10.0).abs() < 1.0, "half done after 10s -> ~10s left, got {eta}");
        assert_eq!(hb.eta_secs(1.0).unwrap(), 0.0);
    }
}
