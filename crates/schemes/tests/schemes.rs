//! Live behaviour of every scheme against real hosts and real attacks.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::time::Duration;

use arpshield_attacks::{ArpPoisoner, GroundTruth, PoisonConfig, PoisonVariant};
use arpshield_crypto::{Akd, KeyPair};
use arpshield_host::apps::PingApp;
use arpshield_host::dhcp::{DhcpClientConfig, DhcpServerConfig};
use arpshield_host::{ArpPolicy, Host, HostConfig, HostHandle};
use arpshield_netsim::{DeviceId, PortId, SimTime, Simulator, Switch, SwitchConfig};
use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
use arpshield_schemes::{
    ActiveProbeConfig, ActiveProbeMonitor, AkdApp, Alert, AlertKind, AlertLog, AnticapHook,
    AntidoteHook, DaiConfig, DaiInspector, PassiveConfig, PassiveMonitor, SArpConfig, SArpHook,
    StatefulConfig, StatefulMonitor,
};

fn cidr() -> Ipv4Cidr {
    Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

fn mac(n: u32) -> MacAddr {
    MacAddr::from_index(n)
}

/// LAN fixture: switch with mirror port 15 (monitors attach there).
struct Lan {
    sim: Simulator,
    switch: DeviceId,
    next_port: u16,
}

impl Lan {
    fn new(seed: u64, config: SwitchConfig) -> (Self, arpshield_netsim::SwitchHandle) {
        let mut sim = Simulator::new(seed);
        let (sw, handle) = Switch::new("sw", config);
        let switch = sim.add_device(Box::new(sw));
        (Lan { sim, switch, next_port: 0 }, handle)
    }

    fn mirrored(seed: u64) -> Self {
        let (lan, _) = Lan::new(
            seed,
            SwitchConfig { ports: 16, mirror_to: Some(PortId(15)), ..Default::default() },
        );
        lan
    }

    fn attach(&mut self, device: Box<dyn arpshield_netsim::Device>) -> DeviceId {
        let port = self.next_port;
        self.next_port += 1;
        self.attach_at(device, port)
    }

    fn attach_at(&mut self, device: Box<dyn arpshield_netsim::Device>, port: u16) -> DeviceId {
        let id = self.sim.add_device(device);
        self.sim
            .connect(id, PortId(0), self.switch, PortId(port), Duration::from_micros(5))
            .unwrap();
        id
    }

    fn add_host(&mut self, config: HostConfig) -> HostHandle {
        let (host, handle) = Host::new(config);
        self.attach(Box::new(host));
        handle
    }
}

fn poisoner(variant: PoisonVariant, start_secs: u64, truth: &GroundTruth) -> ArpPoisoner {
    ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant,
            victim_ip: ip(1),
            claimed_mac: mac(66),
            target: Some((ip(2), mac(2))),
            start_delay: Duration::from_secs(start_secs),
            repeat: None,
        },
        truth.clone(),
    )
}

/// Victim pings the gateway so both legitimate bindings circulate before
/// the attack.
fn standard_victim_and_gw(lan: &mut Lan) -> (HostHandle, HostHandle) {
    let gw = lan.add_host(
        HostConfig::static_ip("gw", mac(100), ip(1), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    let (ping, _) = PingApp::new(ip(1), Duration::from_millis(250));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));
    (gw, victim_h)
}

#[test]
fn passive_monitor_detects_poisoning_on_mirror_port() {
    let mut lan = Lan::mirrored(11);
    let (_gw, _victim) = standard_victim_and_gw(&mut lan);
    let truth = GroundTruth::new();
    lan.attach(Box::new(poisoner(PoisonVariant::GratuitousReply, 3, &truth)));

    let log = AlertLog::new();
    let monitor = PassiveMonitor::new(PassiveConfig::default(), log.clone());
    lan.attach_at(Box::new(monitor), 15);

    lan.sim.run_until(SimTime::from_secs(6));
    let attack_at = truth.first_poison_at().unwrap();
    let detected_at = log
        .first_time(|a| a.kind == AlertKind::BindingChanged && a.observed_mac == Some(mac(66)))
        .expect("passive monitor should flag the flip");
    assert!(detected_at >= attack_at);
    assert!(detected_at.saturating_since(attack_at) < Duration::from_millis(10));
}

#[test]
fn passive_monitor_misses_pre_learning_forgery_until_truth_reappears() {
    let mut lan = Lan::mirrored(12);
    // The attack fires at 100 ms — before the victims have exchanged any
    // genuine ARP (ping app starts later).
    let truth = GroundTruth::new();
    let p = ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant: PoisonVariant::GratuitousRequest,
            victim_ip: ip(1),
            claimed_mac: mac(66),
            target: None,
            start_delay: Duration::from_millis(100),
            repeat: None,
        },
        truth.clone(),
    );
    lan.attach(Box::new(p));
    let (_gw, _victim) = standard_victim_and_gw(&mut lan);
    let log = AlertLog::new();
    lan.attach_at(Box::new(PassiveMonitor::new(PassiveConfig::default(), log.clone())), 15);
    lan.sim.run_until(SimTime::from_secs(3));
    // An alert fires only when the legitimate gateway later speaks — and
    // blames the *gateway's* MAC, the classic attribution inversion.
    let alerts = log.alerts();
    assert!(!alerts.is_empty());
    assert_eq!(alerts[0].observed_mac, Some(mac(100)));
    assert_eq!(alerts[0].expected_mac, Some(mac(66)));
}

#[test]
fn stateful_monitor_flags_unsolicited_reply() {
    let mut lan = Lan::mirrored(13);
    let (_gw, _victim) = standard_victim_and_gw(&mut lan);
    let truth = GroundTruth::new();
    lan.attach(Box::new(poisoner(PoisonVariant::UnicastReply, 3, &truth)));
    let log = AlertLog::new();
    lan.attach_at(Box::new(StatefulMonitor::new(StatefulConfig::default(), log.clone())), 15);
    lan.sim.run_until(SimTime::from_secs(6));
    assert!(
        log.alerts()
            .iter()
            .any(|a: &Alert| a.kind == AlertKind::UnsolicitedReply
                && a.observed_mac == Some(mac(66))),
        "alerts: {:?}",
        log.alerts()
    );
}

#[test]
fn active_probe_contradicts_forged_claim() {
    let mut lan = Lan::mirrored(14);
    let (_gw, _victim) = standard_victim_and_gw(&mut lan);
    let truth = GroundTruth::new();
    lan.attach(Box::new(poisoner(PoisonVariant::GratuitousReply, 3, &truth)));
    let log = AlertLog::new();
    let monitor = ActiveProbeMonitor::new(ActiveProbeConfig::new(mac(200)), log.clone());
    lan.attach_at(Box::new(monitor), 15);
    lan.sim.run_until(SimTime::from_secs(6));
    // The probe reaches the real gateway, which answers truthfully; the
    // forged claim is contradicted.
    assert!(
        log.alerts().iter().any(|a| matches!(
            a.kind,
            AlertKind::ProbeContradiction | AlertKind::DuplicateResponders
        ) && a.subject_ip == Some(ip(1))),
        "alerts: {:?}",
        log.alerts()
    );
}

#[test]
fn anticap_blocks_unsolicited_but_not_race() {
    // Unsolicited reply: blocked.
    let mut lan = Lan::mirrored(15);
    let log = AlertLog::new();
    let gw = lan.add_host(HostConfig::static_ip("gw", mac(100), ip(1), cidr()));
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    victim.add_hook(Box::new(AnticapHook::new(log.clone())));
    let (ping, _) = PingApp::new(ip(1), Duration::from_millis(250));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));
    let truth = GroundTruth::new();
    lan.attach(Box::new(poisoner(PoisonVariant::UnicastReply, 3, &truth)));
    lan.sim.run_until(SimTime::from_secs(6));
    let now = lan.sim.now();
    assert_eq!(
        victim_h.cache.borrow().lookup(now, ip(1)),
        Some(mac(100)),
        "anticap must keep the genuine binding"
    );
    assert!(log.alerts().iter().any(|a| a.kind == AlertKind::UnsolicitedReply));
    let _ = gw;

    // Race variant: passes (the forged reply is solicited).
    let mut lan = Lan::mirrored(16);
    let truth = GroundTruth::new();
    let racer = ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant: PoisonVariant::ReplyToRequestRace,
            victim_ip: ip(1),
            claimed_mac: mac(66),
            target: None,
            start_delay: Duration::ZERO,
            repeat: None,
        },
        truth.clone(),
    );
    lan.attach(Box::new(racer)); // port 0: wins ties
                                 // Slow gateway.
    let (gw_host, _) = Host::new(HostConfig::static_ip("gw", mac(100), ip(1), cidr()));
    let gw_id = lan.sim.add_device(Box::new(gw_host));
    lan.sim.connect(gw_id, PortId(0), lan.switch, PortId(1), Duration::from_millis(2)).unwrap();
    lan.next_port = 2;
    let log2 = AlertLog::new();
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr())
            .with_policy(ArpPolicy::NoUnsolicited),
    );
    victim.add_hook(Box::new(AnticapHook::new(log2.clone())));
    let (ping, _) = PingApp::new(ip(1), Duration::from_millis(500));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));
    lan.sim.run_until(SimTime::from_secs(4));
    assert_eq!(
        victim_h.cache.borrow().lookup(lan.sim.now(), ip(1)),
        Some(mac(66)),
        "the race defeats anticap"
    );
}

#[test]
fn antidote_rejects_takeover_of_live_binding() {
    let mut lan = Lan::mirrored(17);
    let log = AlertLog::new();
    let _gw = lan.add_host(HostConfig::static_ip("gw", mac(100), ip(1), cidr()));
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    victim.add_hook(Box::new(AntidoteHook::new(log.clone())));
    let (ping, ping_stats) = PingApp::new(ip(1), Duration::from_millis(250));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));
    let truth = GroundTruth::new();
    lan.attach(Box::new(ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant: PoisonVariant::UnicastReply,
            victim_ip: ip(1),
            claimed_mac: mac(66),
            target: Some((ip(2), mac(2))),
            start_delay: Duration::from_secs(3),
            repeat: Some(Duration::from_secs(2)),
        },
        truth.clone(),
    )));
    lan.sim.run_until(SimTime::from_secs(10));
    let now = lan.sim.now();
    assert_eq!(
        victim_h.cache.borrow().lookup(now, ip(1)),
        Some(mac(100)),
        "antidote must defend the live incumbent"
    );
    assert!(log
        .alerts()
        .iter()
        .any(|a| a.kind == AlertKind::ReplaceRejected && a.observed_mac == Some(mac(66))));
    // Connectivity preserved throughout.
    let stats = ping_stats.borrow();
    assert!(stats.received as f64 / stats.sent as f64 > 0.9);
}

#[test]
fn sarp_prevents_poisoning_and_resolves_signed() {
    let mut lan = Lan::mirrored(18);
    let log = AlertLog::new();
    let akd_registry = Rc::new(RefCell::new(Akd::new()));
    let akd_keypair = KeyPair::from_seed(9000);

    // Enrol three principals: AKD (10.0.0.9), gw (10.0.0.1), victim (10.0.0.2).
    let keys: Vec<(u8, u32, KeyPair)> = vec![
        (9, 109, KeyPair::from_seed(9)),
        (1, 100, KeyPair::from_seed(1)),
        (2, 2, KeyPair::from_seed(2)),
    ];
    for (ip_n, _, kp) in &keys {
        akd_registry.borrow_mut().register(u32::from(ip(*ip_n).to_u32()), kp.public_key());
    }

    let sarp_config = |seed_ip: u8, local: bool| SArpConfig {
        keypair: keys.iter().find(|(n, _, _)| *n == seed_ip).unwrap().2.clone(),
        akd_ip: ip(9),
        akd_mac: mac(109),
        akd_key: akd_keypair.public_key(),
        max_age: Duration::from_secs(5),
        local_akd: local.then(|| Rc::clone(&akd_registry)),
        unit_cost: arpshield_schemes::sarp::DEFAULT_UNIT_COST,
        key_fetch_retries: 0,
        key_fetch_timeout: std::time::Duration::from_millis(200),
    };

    // The AKD host.
    let (mut akd_host, _akd_h) = Host::new(
        HostConfig::static_ip("akd", mac(109), ip(9), cidr()).with_policy(ArpPolicy::StaticOnly),
    );
    akd_host.add_hook(Box::new(SArpHook::new(sarp_config(9, true), log.clone())));
    akd_host.add_app(Box::new(AkdApp::new(
        Rc::clone(&akd_registry),
        akd_keypair.clone(),
        log.clone(),
    )));
    lan.attach(Box::new(akd_host));

    // Gateway.
    let (mut gw, gw_h) = Host::new(
        HostConfig::static_ip("gw", mac(100), ip(1), cidr()).with_policy(ArpPolicy::StaticOnly),
    );
    gw.add_hook(Box::new(SArpHook::new(sarp_config(1, false), log.clone())));
    lan.attach(Box::new(gw));

    // Victim, pinging the gateway.
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::StaticOnly),
    );
    victim.add_hook(Box::new(SArpHook::new(sarp_config(2, false), log.clone())));
    let (ping, ping_stats) = PingApp::new(ip(1), Duration::from_millis(250));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));

    // Attacker tries everything.
    let truth = GroundTruth::new();
    for (i, variant) in [
        PoisonVariant::GratuitousReply,
        PoisonVariant::UnicastReply,
        PoisonVariant::ReplyToRequestRace,
    ]
    .into_iter()
    .enumerate()
    {
        lan.attach(Box::new(ArpPoisoner::new(
            PoisonConfig {
                attacker_mac: mac(66),
                variant,
                victim_ip: ip(1),
                claimed_mac: mac(66),
                target: Some((ip(2), mac(2))),
                start_delay: Duration::from_secs(2 + i as u64),
                repeat: Some(Duration::from_secs(3)),
            },
            truth.clone(),
        )));
    }

    lan.sim.run_until(SimTime::from_secs(12));
    let now = lan.sim.now();
    // Signed resolution worked: pings flow.
    let stats = ping_stats.borrow();
    assert!(stats.sent > 30);
    assert!(
        stats.received as f64 / stats.sent as f64 > 0.9,
        "S-ARP resolution should work: {}/{}",
        stats.received,
        stats.sent
    );
    // And the cache never held the attacker.
    assert_eq!(victim_h.cache.borrow().lookup(now, ip(1)), Some(mac(100)));
    // Plain forged replies were dropped and logged.
    assert!(log
        .alerts()
        .iter()
        .any(|a| a.kind == AlertKind::UnsignedReply && a.observed_mac == Some(mac(66))));
    let _ = gw_h;
}

#[test]
fn dai_blocks_forged_arp_and_snoops_leases() {
    let log = AlertLog::new();
    // Switch with DAI; port 0 (gateway/DHCP server) is trusted.
    let dai = DaiInspector::new(
        DaiConfig::new([PortId(0)])
            .with_static(ip(1), mac(100)) // gateway static binding
            .with_static(ip(2), mac(2)), // victim static binding
        log.clone(),
    );
    let table = dai.table();
    let mut sim = Simulator::new(19);
    let (mut sw, sw_handle) = Switch::new("sw", SwitchConfig { ports: 16, ..Default::default() });
    sw.set_inspector(Box::new(dai));
    let switch = sim.add_device(Box::new(sw));
    let mut lan = Lan { sim, switch, next_port: 0 };

    let gw_cfg = HostConfig::static_ip("gw", mac(100), ip(1), cidr())
        .with_dhcp_server(DhcpServerConfig::home_router(ip(100), 8, ip(1)));
    let _gw = lan.add_host(gw_cfg);
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    let (ping, ping_stats) = PingApp::new(ip(1), Duration::from_millis(250));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));

    // A DHCP client joins: its lease must be snooped into the table.
    let dhcp_h = lan.add_host(HostConfig::dhcp("laptop", mac(3), DhcpClientConfig::default()));

    let truth = GroundTruth::new();
    lan.attach(Box::new(poisoner(PoisonVariant::GratuitousReply, 4, &truth)));
    lan.attach(Box::new(poisoner(PoisonVariant::UnicastReply, 5, &truth)));

    lan.sim.run_until(SimTime::from_secs(10));
    let now = lan.sim.now();
    // Forged frames died at the switch.
    assert_eq!(victim_h.cache.borrow().lookup(now, ip(1)), Some(mac(100)));
    assert!(sw_handle.stats.borrow().dropped_inspector >= 2);
    assert!(log.alerts().iter().any(|a| a.kind == AlertKind::DaiViolation));
    // Legitimate traffic unharmed.
    let stats = ping_stats.borrow();
    assert!(stats.received as f64 / stats.sent as f64 > 0.9);
    // Lease snooped.
    let leased = dhcp_h.ip().expect("dhcp client should bind through DAI");
    assert_eq!(table.borrow().get(&(0, leased)), Some(&mac(3)));
}

#[test]
fn dai_blocks_rogue_dhcp_server() {
    let log = AlertLog::new();
    let dai = DaiInspector::new(DaiConfig::new([PortId(0)]), log.clone());
    let mut sim = Simulator::new(20);
    let (mut sw, _) = Switch::new("sw", SwitchConfig { ports: 16, ..Default::default() });
    sw.set_inspector(Box::new(dai));
    let switch = sim.add_device(Box::new(sw));
    let mut lan = Lan { sim, switch, next_port: 0 };

    let _gw = lan.add_host(
        HostConfig::static_ip("gw", mac(100), ip(1), cidr())
            .with_dhcp_server(DhcpServerConfig::home_router(ip(100), 4, ip(1))),
    );
    // Rogue server on an untrusted port, active immediately.
    let truth = GroundTruth::new();
    lan.attach(Box::new(arpshield_attacks::RogueDhcpServer::new(
        arpshield_attacks::RogueDhcpServerConfig {
            attacker_mac: mac(66),
            server_ip: ip(250),
            pool_start: ip(200),
            pool_size: 8,
            evil_gateway: ip(250),
            start_delay: Duration::ZERO,
        },
        truth.clone(),
    )));
    let client = lan.add_host(HostConfig::dhcp("laptop", mac(3), DhcpClientConfig::default()));
    lan.sim.run_until(SimTime::from_secs(8));
    // The client bound — to the legitimate server, because the rogue's
    // offers were dropped at the switch.
    let bound = client.ip().expect("client should bind");
    assert_eq!(bound, ip(100), "must bind from the legitimate pool, got {bound}");
    assert_eq!(client.iface().gateway(), Some(ip(1)));
    assert!(log.alerts().iter().any(|a| a.kind == AlertKind::DaiViolation));
}

#[test]
fn port_security_contains_mac_flooding() {
    let mut sim = Simulator::new(21);
    let (sw, handle) = Switch::new(
        "sw",
        SwitchConfig {
            ports: 16,
            cam_capacity: 256,
            port_security: Some(arpshield_netsim::PortSecurityConfig {
                max_macs_per_port: 2,
                violation: arpshield_netsim::ViolationAction::ShutdownPort,
            }),
            ..Default::default()
        },
    );
    let switch = sim.add_device(Box::new(sw));
    let mut lan = Lan { sim, switch, next_port: 0 };
    let truth = GroundTruth::new();
    lan.attach(Box::new(arpshield_attacks::MacFlooder::new(
        arpshield_attacks::MacFlooderConfig::macof_rate(mac(66)),
        truth.clone(),
    )));
    lan.sim.run_until(SimTime::from_secs(5));
    let stats = handle.stats.borrow();
    assert!(stats.shutdown_ports.contains(&PortId(0)), "flooding port must be err-disabled");
    assert!(
        handle.cam.borrow().occupancy() <= 3,
        "CAM stays tiny: {} entries",
        handle.cam.borrow().occupancy()
    );
}

#[test]
fn schemes_quiet_on_benign_traffic() {
    // No attacker: passive + stateful + probes see a healthy LAN with
    // pings and DHCP and must stay silent.
    let mut lan = Lan::mirrored(22);
    let _gw = lan.add_host(
        HostConfig::static_ip("gw", mac(100), ip(1), cidr())
            .with_dhcp_server(DhcpServerConfig::home_router(ip(100), 8, ip(1))),
    );
    for i in 2..=4u8 {
        let (mut h, _) =
            Host::new(HostConfig::static_ip(format!("h{i}"), mac(u32::from(i)), ip(i), cidr()));
        let (ping, _) = PingApp::new(ip(1), Duration::from_millis(300));
        h.add_app(Box::new(ping));
        lan.attach(Box::new(h));
    }
    let _laptop = lan.add_host(HostConfig::dhcp("laptop", mac(7), DhcpClientConfig::default()));
    let log = AlertLog::new();
    lan.attach_at(Box::new(PassiveMonitor::new(PassiveConfig::default(), log.clone())), 15);
    // Put stateful+probe monitors on their own (non-mirror) ports: they
    // still see all broadcasts.
    lan.attach(Box::new(StatefulMonitor::new(StatefulConfig::default(), log.clone())));
    lan.attach(Box::new(ActiveProbeMonitor::new(ActiveProbeConfig::new(mac(201)), log.clone())));
    lan.sim.run_until(SimTime::from_secs(10));
    let alerts = log.alerts();
    let false_positives: HashSet<_> = alerts.iter().map(|a| a.kind).collect();
    assert!(alerts.is_empty(), "benign run must be silent, got {false_positives:?}");
}
