//! Adversarial tests for the authenticated-ARP schemes: what their
//! cryptography does and does not buy.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_crypto::{Akd, KeyPair};
use arpshield_host::apps::PingApp;
use arpshield_host::{ArpPolicy, Host, HostConfig, HostHandle};
use arpshield_netsim::{
    Device, DeviceCtx, DeviceId, PortId, SimTime, Simulator, Switch, SwitchConfig,
};
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, Ipv4Cidr, MacAddr};
use arpshield_schemes::{
    sarp, tarp, AlertKind, AlertLog, SArpConfig, SArpHook, TarpConfig, TarpHook, Ticket,
};

fn cidr() -> Ipv4Cidr {
    Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

fn mac(n: u32) -> MacAddr {
    MacAddr::from_index(n)
}

/// Records every S-ARP frame it sees, then replays them all after a
/// delay — the replay attack S-ARP's timestamps exist to stop.
struct SArpReplayer {
    captured: Vec<Vec<u8>>,
    replay_at: Duration,
    replayed: bool,
}

impl Device for SArpReplayer {
    fn name(&self) -> &str {
        "sarp-replayer"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.replay_at, 1);
    }
    fn on_frame(&mut self, _ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        if let Ok(eth) = EthernetFrame::parse(frame) {
            if eth.ethertype == EtherType::SArp && !self.replayed {
                self.captured.push(frame.to_vec());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _token: u64) {
        self.replayed = true;
        for frame in self.captured.drain(..) {
            // Re-address the replay to the broadcast so the victim sees it.
            if let Ok(mut eth) = EthernetFrame::parse(&frame) {
                eth.dst = MacAddr::BROADCAST;
                ctx.send(PortId(0), eth.encode());
            }
        }
    }
}

struct Net {
    sim: Simulator,
    switch: DeviceId,
    next_port: u16,
}

impl Net {
    fn new(seed: u64) -> Self {
        let mut sim = Simulator::new(seed);
        let (sw, _) = Switch::new(
            "sw",
            SwitchConfig { ports: 16, mirror_to: Some(PortId(15)), ..Default::default() },
        );
        let switch = sim.add_device(Box::new(sw));
        Net { sim, switch, next_port: 0 }
    }

    fn attach(&mut self, device: Box<dyn Device>) -> DeviceId {
        let id = self.sim.add_device(device);
        let port = self.next_port;
        self.next_port += 1;
        self.sim
            .connect(id, PortId(0), self.switch, PortId(port), Duration::from_micros(5))
            .unwrap();
        id
    }

    fn attach_at(&mut self, device: Box<dyn Device>, port: u16) -> DeviceId {
        let id = self.sim.add_device(device);
        self.sim
            .connect(id, PortId(0), self.switch, PortId(port), Duration::from_micros(5))
            .unwrap();
        id
    }
}

fn sarp_host(
    net: &mut Net,
    name: &str,
    host_ip: Ipv4Addr,
    host_mac: MacAddr,
    registry: &Rc<RefCell<Akd>>,
    akd_keypair: &KeyPair,
    local: bool,
    alerts: &AlertLog,
) -> (HostHandle, bool) {
    let (mut host, handle) = Host::new(
        HostConfig::static_ip(name, host_mac, host_ip, cidr()).with_policy(ArpPolicy::StaticOnly),
    );
    host.add_hook(Box::new(SArpHook::new(
        SArpConfig {
            keypair: KeyPair::from_seed(u64::from(host_ip.to_u32())),
            akd_ip: ip(9),
            akd_mac: mac(109),
            akd_key: akd_keypair.public_key(),
            max_age: Duration::from_secs(5),
            local_akd: local.then(|| Rc::clone(registry)),
            unit_cost: sarp::DEFAULT_UNIT_COST,
            key_fetch_retries: 0,
            key_fetch_timeout: std::time::Duration::from_millis(200),
        },
        alerts.clone(),
    )));
    if local {
        host.add_app(Box::new(arpshield_schemes::AkdApp::new(
            Rc::clone(registry),
            akd_keypair.clone(),
            alerts.clone(),
        )));
    }
    let is_ping_host = name == "victim";
    if is_ping_host {
        let (ping, _) = PingApp::new(ip(1), Duration::from_millis(300));
        host.add_app(Box::new(ping));
    }
    net.attach(Box::new(host));
    (handle, is_ping_host)
}

#[test]
fn sarp_rejects_stale_replayed_replies() {
    let mut net = Net::new(31);
    let alerts = AlertLog::new();
    let registry = Rc::new(RefCell::new(Akd::new()));
    let akd_keypair = KeyPair::from_seed(9000);
    for n in [9u8, 1, 2] {
        registry.borrow_mut().register(
            u32::from(ip(n).to_u32()),
            KeyPair::from_seed(u64::from(ip(n).to_u32())).public_key(),
        );
    }
    sarp_host(&mut net, "akd", ip(9), mac(109), &registry, &akd_keypair, true, &alerts);
    sarp_host(&mut net, "gw", ip(1), mac(100), &registry, &akd_keypair, false, &alerts);
    let (victim, _) =
        sarp_host(&mut net, "victim", ip(2), mac(2), &registry, &akd_keypair, false, &alerts);

    // The replayer sniffs from the mirror port and replays every signed
    // reply 8 s later — beyond the 5 s freshness window.
    net.attach_at(
        Box::new(SArpReplayer {
            captured: Vec::new(),
            replay_at: Duration::from_secs(8),
            replayed: false,
        }),
        15,
    );

    net.sim.run_until(SimTime::from_secs(12));
    // The replays must be rejected as stale…
    assert!(
        alerts.alerts().iter().any(|a| a.kind == AlertKind::SignatureInvalid),
        "stale replays must be rejected: {:?}",
        alerts.alerts()
    );
    // …and the victim's cache still holds the truth.
    assert_eq!(victim.cache.borrow().lookup(net.sim.now(), ip(1)), Some(mac(100)));
}

/// The weakness TARP trades its cheapness for: a ticket stays valid
/// until it expires. An attacker that legitimately held an IP (an old
/// DHCP lease) keeps a working ticket for it, and can re-claim the IP
/// after it was reassigned — cryptography verifies, reality disagrees.
#[test]
fn tarp_stale_ticket_replays_successfully_until_expiry() {
    let lta = KeyPair::from_seed(0x17A);
    let mut net = Net::new(32);
    let alerts = AlertLog::new();

    let make_tarp_host = |name: &str, hip: Ipv4Addr, hmac: MacAddr, expires: SimTime| {
        let (mut host, handle) = Host::new(
            HostConfig::static_ip(name, hmac, hip, cidr()).with_policy(ArpPolicy::StaticOnly),
        );
        host.add_hook(Box::new(TarpHook::new(
            TarpConfig {
                ticket: Ticket::issue(&lta, hip, hmac, expires),
                lta_key: lta.public_key(),
                unit_cost: sarp::DEFAULT_UNIT_COST,
            },
            alerts.clone(),
        )));
        (host, handle)
    };

    // The gateway holds 10.0.0.1 *now*; its ticket is fresh.
    let (gw, _gw_h) = make_tarp_host("gw", ip(1), mac(100), SimTime::from_secs(3600));
    net.attach(Box::new(gw));
    // The victim pings the gateway.
    let (mut victim, victim_h) = make_tarp_host("victim", ip(2), mac(2), SimTime::from_secs(3600));
    let (ping, _) = PingApp::new(ip(1), Duration::from_millis(300));
    victim.add_app(Box::new(ping));
    net.attach(Box::new(victim));

    // The attacker previously leased 10.0.0.1 (say, before the router
    // was renumbered) and still holds an unexpired ticket binding
    // 10.0.0.1 to ITS OWN MAC. It replays a TARP reply built from it.
    struct StaleTicketAttacker {
        frame: Vec<u8>,
    }
    impl Device for StaleTicketAttacker {
        fn name(&self) -> &str {
            "stale-ticket-attacker"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.schedule_in(Duration::from_secs(3), 1);
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _token: u64) {
            ctx.send(PortId(0), self.frame.clone());
            ctx.schedule_in(Duration::from_secs(2), 1);
        }
    }
    let stale_ticket = Ticket::issue(&lta, ip(1), mac(66), SimTime::from_secs(120));
    let forged_reply = ArpPacket {
        op: ArpOp::Reply,
        sender_mac: mac(66),
        sender_ip: ip(1),
        target_mac: mac(2),
        target_ip: ip(2),
    };
    let mut payload = forged_reply.encode();
    payload.extend_from_slice(&stale_ticket.to_bytes());
    let frame = EthernetFrame::new(mac(2), mac(66), EtherType::Tarp, payload).encode();
    net.attach(Box::new(StaleTicketAttacker { frame }));

    net.sim.run_until(SimTime::from_secs(10));
    // The stale-but-valid ticket verifies: the victim IS poisoned. This
    // is TARP's documented revocation-lag weakness, reproduced.
    assert_eq!(
        victim_h.cache.borrow().lookup(net.sim.now(), ip(1)),
        Some(mac(66)),
        "an unexpired stale ticket must (regrettably) verify"
    );

    // After the stale ticket's expiry the same replay is rejected.
    net.sim.run_until(SimTime::from_secs(130));
    victim_h.cache.borrow_mut().remove(ip(1));
    net.sim.run_until(SimTime::from_secs(140));
    assert_ne!(
        victim_h.cache.borrow().lookup(net.sim.now(), ip(1)),
        Some(mac(66)),
        "expired tickets must stop verifying"
    );
    assert!(alerts.alerts().iter().any(|a| a.kind == AlertKind::SignatureInvalid));
    let _ = tarp::TICKET_LEN;
}

/// A lost AKD datagram must not strand resolution forever: with
/// key-fetch retries armed, the hook re-requests the key until the AKD
/// link returns; without them, the parked claims wait for a signed
/// reply that (with a single-shot resolver) never comes again.
#[test]
fn sarp_key_fetch_retries_recover_from_akd_outage() {
    use arpshield_host::RetryPolicy;
    use arpshield_netsim::{FlapSchedule, LinkProfile};

    /// Sends a single UDP datagram shortly after start — one resolution
    /// attempt, so recovery can only come from the scheme's own retries.
    struct OneShot;
    impl arpshield_host::apps::App for OneShot {
        fn name(&self) -> &str {
            "oneshot"
        }
        fn on_start(&mut self, api: &mut arpshield_host::HostApi<'_, '_>) {
            api.schedule(Duration::from_millis(100), 0);
        }
        fn on_timer(&mut self, api: &mut arpshield_host::HostApi<'_, '_>, _payload: u32) {
            api.send_udp(ip(1), 4000, 4001, vec![0xAB]);
        }
    }

    let run = |key_fetch_retries: u32| -> (HostHandle, SimTime, Net) {
        let mut net = Net::new(33);
        let alerts = AlertLog::new();
        let registry = Rc::new(RefCell::new(Akd::new()));
        let akd_keypair = KeyPair::from_seed(9000);
        for n in [9u8, 1, 2] {
            registry.borrow_mut().register(
                u32::from(ip(n).to_u32()),
                KeyPair::from_seed(u64::from(ip(n).to_u32())).public_key(),
            );
        }
        let sarp_config = |host_ip: Ipv4Addr, local: bool| SArpConfig {
            keypair: KeyPair::from_seed(u64::from(host_ip.to_u32())),
            akd_ip: ip(9),
            akd_mac: mac(109),
            akd_key: akd_keypair.public_key(),
            max_age: Duration::from_secs(5),
            local_akd: local.then(|| Rc::clone(&registry)),
            unit_cost: sarp::DEFAULT_UNIT_COST,
            key_fetch_retries,
            key_fetch_timeout: Duration::from_millis(200),
        };

        // The AKD's link is dark for the first second, then stays up.
        let (mut akd, _) = Host::new(
            HostConfig::static_ip("akd", mac(109), ip(9), cidr())
                .with_policy(ArpPolicy::StaticOnly),
        );
        akd.add_hook(Box::new(SArpHook::new(sarp_config(ip(9), true), alerts.clone())));
        akd.add_app(Box::new(arpshield_schemes::AkdApp::new(
            Rc::clone(&registry),
            akd_keypair.clone(),
            alerts.clone(),
        )));
        let akd_id = net.sim.add_device(Box::new(akd));
        let port = net.next_port;
        net.next_port += 1;
        net.sim
            .connect_impaired(
                akd_id,
                PortId(0),
                net.switch,
                PortId(port),
                Duration::from_micros(5),
                LinkProfile::default().with_flap(FlapSchedule {
                    offset: Duration::ZERO,
                    down_for: Duration::from_secs(1),
                    period: Duration::from_secs(3600),
                }),
            )
            .unwrap();

        let (mut gw, _) = Host::new(
            HostConfig::static_ip("gw", mac(100), ip(1), cidr()).with_policy(ArpPolicy::StaticOnly),
        );
        gw.add_hook(Box::new(SArpHook::new(sarp_config(ip(1), false), alerts.clone())));
        net.attach(Box::new(gw));

        // Single-shot resolver: one ARP request, no retransmissions, so
        // the only signed reply (and hence the only chance to fetch the
        // gateway's key) lands inside the outage window.
        let (mut victim, handle) = Host::new(
            HostConfig::static_ip("victim", mac(2), ip(2), cidr())
                .with_policy(ArpPolicy::StaticOnly)
                .with_resolver_retry(RetryPolicy::fixed(Duration::from_secs(1), 0)),
        );
        victim.add_hook(Box::new(SArpHook::new(sarp_config(ip(2), false), alerts.clone())));
        victim.add_app(Box::new(OneShot));
        net.attach(Box::new(victim));

        net.sim.run_until(SimTime::from_secs(12));
        let now = net.sim.now();
        (handle, now, net)
    };

    let (stranded, now, _net) = run(0);
    assert_eq!(
        stranded.cache.borrow().lookup(now, ip(1)),
        None,
        "without retries the lost key fetch strands the claim"
    );

    let (recovered, now, _net) = run(10);
    assert_eq!(
        recovered.cache.borrow().lookup(now, ip(1)),
        Some(mac(100)),
        "retried key fetch must verify the parked claim after the outage"
    );
    assert!(recovered.stats.borrow().ipv4_sent > 0);
}
