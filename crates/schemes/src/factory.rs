//! The scheme factory: one uniform way to deploy any [`SchemeKind`].
//!
//! Scenario builders used to wire every scheme by hand — a `match` arm
//! per kind deciding which hooks, monitors, inspectors, and auxiliary
//! stations to create. That knowledge belongs to the schemes crate:
//! [`SchemeKind::instantiate`] turns a kind plus a description of the
//! LAN ([`LanPlan`]) into a [`SchemeInstallation`], a flat list of
//! *mechanisms* the builder applies without knowing which scheme asked
//! for them.
//!
//! The factory is deterministic: for a fixed plan it performs the same
//! key generation and enrolment operations in the same order as the
//! hand-rolled wiring it replaced, so experiment outputs are
//! byte-identical.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_crypto::{Akd, KeyPair};
use arpshield_host::apps::App;
use arpshield_host::{ArpPolicy, HostHook};
use arpshield_netsim::{
    Device, FrameInspector, PortId, PortSecurityConfig, SimTime, ViolationAction,
};
use arpshield_packet::{Ipv4Addr, MacAddr};

use crate::sarp::DEFAULT_UNIT_COST;
use crate::{
    ActiveProbeConfig, ActiveProbeMonitor, AkdApp, AlertLog, AnticapHook, AntidoteHook, DaiConfig,
    DaiInspector, PassiveConfig, PassiveMonitor, RateConfig, RateMonitor, SArpConfig, SArpHook,
    SchemeKind, StatefulConfig, StatefulMonitor, TarpConfig, TarpHook, Ticket,
};

/// Fault-tolerance knobs the schemes expose for lossy links.
///
/// All zero by default: on a perfect wire no retry timer is ever armed
/// and behaviour is identical to the pre-retry implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeHardening {
    /// Extra probes [`ActiveProbeMonitor`] and [`AntidoteHook`] re-issue
    /// when a probe window elapses unanswered.
    pub probe_retries: u32,
    /// AKD lookups [`SArpHook`] re-issues when a key fetch goes
    /// unanswered.
    pub key_fetch_retries: u32,
    /// How long S-ARP waits for an AKD response before re-requesting.
    pub key_fetch_timeout: Duration,
}

impl Default for SchemeHardening {
    fn default() -> Self {
        SchemeHardening {
            probe_retries: 0,
            key_fetch_retries: 0,
            key_fetch_timeout: Duration::from_millis(200),
        }
    }
}

impl SchemeHardening {
    /// A sensible hardened profile for impaired links: a couple of probe
    /// re-issues, a few key-fetch retries.
    pub fn lossy() -> Self {
        SchemeHardening {
            probe_retries: 2,
            key_fetch_retries: 3,
            key_fetch_timeout: Duration::from_millis(200),
        }
    }
}

/// The facts about a LAN a scheme needs in order to deploy onto it.
///
/// Built once by the scenario builder and handed to
/// [`SchemeKind::instantiate`] through [`SchemeResources`].
#[derive(Debug, Clone)]
pub struct LanPlan {
    /// The gateway's binding.
    pub gateway: (Ipv4Addr, MacAddr),
    /// Workload-host bindings, in attachment order.
    pub hosts: Vec<(Ipv4Addr, MacAddr)>,
    /// Where the S-ARP key distributor lives (attached only when the
    /// S-ARP scheme is deployed).
    pub akd: (Ipv4Addr, MacAddr),
    /// Switch ports DAI treats as trusted (gateway + infrastructure).
    pub trusted_ports: Vec<PortId>,
    /// Source MAC the active-probe monitor probes from.
    pub probe_source_mac: MacAddr,
    /// Seed of the TARP local ticketing agency's keypair.
    pub tarp_lta_seed: u64,
    /// Seed of the AKD's signing keypair.
    pub akd_key_seed: u64,
    /// Lifetime of issued TARP tickets.
    pub ticket_lifetime: SimTime,
    /// S-ARP signed-reply freshness window.
    pub sarp_max_age: Duration,
    /// Fault-tolerance knobs (all zero on perfect wires).
    pub hardening: SchemeHardening,
}

impl LanPlan {
    /// Per-principal signing-key seed (the convention every S-ARP
    /// deployment in this codebase uses).
    pub fn key_seed(ip: Ipv4Addr) -> u64 {
        u64::from(ip.to_u32())
    }
}

/// Shared state threaded through a scheme instantiation.
///
/// Owns the [`LanPlan`] and the [`AlertLog`] every created mechanism
/// reports into.
#[derive(Debug)]
pub struct SchemeResources {
    plan: LanPlan,
    alerts: AlertLog,
}

impl SchemeResources {
    /// Wraps a plan and the alert log mechanisms will report into.
    pub fn new(plan: LanPlan, alerts: AlertLog) -> Self {
        SchemeResources { plan, alerts }
    }

    /// The plan this instantiation deploys onto.
    pub fn plan(&self) -> &LanPlan {
        &self.plan
    }

    /// The shared alert log.
    pub fn alerts(&self) -> &AlertLog {
        &self.alerts
    }
}

/// An extra infrastructure station a scheme needs on the LAN (the
/// S-ARP key distributor).
pub struct AuxStation {
    /// Station name.
    pub name: &'static str,
    /// Its IPv4 address.
    pub ip: Ipv4Addr,
    /// Its MAC address.
    pub mac: MacAddr,
    /// Scheme agents to install on it.
    pub hooks: Vec<Box<dyn HostHook>>,
    /// Applications to install on it.
    pub apps: Vec<Box<dyn App>>,
}

impl std::fmt::Debug for AuxStation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuxStation").field("name", &self.name).field("ip", &self.ip).finish()
    }
}

/// Factory for the per-host scheme agent, called once per protected
/// station in attachment order.
pub type HostAgentFn = Box<dyn Fn(Ipv4Addr, MacAddr) -> Box<dyn HostHook>>;

/// Everything a scenario builder must apply to deploy one scheme.
///
/// Each field is a *mechanism*; the builder applies whichever are
/// present without a single per-scheme branch.
#[derive(Default)]
pub struct SchemeInstallation {
    /// ARP acceptance policy forced on protected hosts (`None` keeps the
    /// scenario's configured policy).
    pub policy_override: Option<ArpPolicy>,
    /// Per-host agent factory (kernel-patch hooks, protocol agents).
    pub host_agent: Option<HostAgentFn>,
    /// Mirror-port monitors, in attachment order.
    pub monitors: Vec<Box<dyn Device>>,
    /// In-switch ingress inspector (DAI).
    pub inspector: Option<Box<dyn FrameInspector>>,
    /// Switch port-security hardening.
    pub port_security: Option<PortSecurityConfig>,
    /// Static bindings to preload into every protected host's cache.
    pub static_bindings: Option<Vec<(Ipv4Addr, MacAddr)>>,
    /// Extra infrastructure station to attach.
    pub aux_station: Option<AuxStation>,
}

impl std::fmt::Debug for SchemeInstallation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeInstallation")
            .field("policy_override", &self.policy_override)
            .field("monitors", &self.monitors.len())
            .field("has_inspector", &self.inspector.is_some())
            .field("port_security", &self.port_security)
            .field("has_aux_station", &self.aux_station.is_some())
            .finish()
    }
}

impl SchemeKind {
    /// Instantiates this scheme against the LAN described by
    /// `resources`, returning the mechanisms to apply.
    pub fn instantiate(self, resources: &mut SchemeResources) -> SchemeInstallation {
        let alerts = resources.alerts().clone();
        let plan = resources.plan();
        let hardening = plan.hardening;
        let mut install = SchemeInstallation::default();
        match self {
            SchemeKind::None => {}
            SchemeKind::StaticArp => {
                install.policy_override = Some(ArpPolicy::StaticOnly);
                let mut bindings = vec![plan.gateway];
                bindings.extend(plan.hosts.iter().copied());
                install.static_bindings = Some(bindings);
            }
            SchemeKind::Passive => {
                install
                    .monitors
                    .push(Box::new(PassiveMonitor::new(PassiveConfig::default(), alerts)));
            }
            SchemeKind::Stateful => {
                install
                    .monitors
                    .push(Box::new(StatefulMonitor::new(StatefulConfig::default(), alerts)));
            }
            SchemeKind::ActiveProbe => {
                install.monitors.push(Box::new(ActiveProbeMonitor::new(
                    ActiveProbeConfig::new(plan.probe_source_mac)
                        .with_probe_retries(hardening.probe_retries),
                    alerts,
                )));
            }
            SchemeKind::RateMonitor => {
                install.monitors.push(Box::new(RateMonitor::new(RateConfig::default(), alerts)));
            }
            SchemeKind::Hybrid => {
                install.monitors.push(Box::new(StatefulMonitor::new(
                    StatefulConfig::default(),
                    alerts.clone(),
                )));
                install.monitors.push(Box::new(ActiveProbeMonitor::new(
                    ActiveProbeConfig::new(plan.probe_source_mac)
                        .with_probe_retries(hardening.probe_retries),
                    alerts,
                )));
            }
            SchemeKind::Anticap => {
                install.host_agent = Some(Box::new(move |_, _| {
                    Box::new(AnticapHook::new(alerts.clone())) as Box<dyn HostHook>
                }));
            }
            SchemeKind::Antidote => {
                let retries = hardening.probe_retries;
                install.host_agent = Some(Box::new(move |_, _| {
                    Box::new(AntidoteHook::new(alerts.clone()).with_probe_retries(retries))
                        as Box<dyn HostHook>
                }));
            }
            SchemeKind::PortSecurity => {
                install.port_security = Some(PortSecurityConfig {
                    max_macs_per_port: 2,
                    violation: ViolationAction::ShutdownPort,
                });
            }
            SchemeKind::Dai => {
                let mut config = DaiConfig::new(plan.trusted_ports.iter().copied())
                    .with_static(plan.gateway.0, plan.gateway.1);
                for &(ip, mac) in &plan.hosts {
                    config = config.with_static(ip, mac);
                }
                install.inspector = Some(Box::new(DaiInspector::new(config, alerts)));
            }
            SchemeKind::SArp => {
                install.policy_override = Some(ArpPolicy::StaticOnly);
                let registry = Rc::new(RefCell::new(Akd::new()));
                let akd_keypair = KeyPair::from_seed(plan.akd_key_seed);
                // Enrolment order (gateway, AKD, hosts) is part of the
                // deterministic construction contract.
                let enrol = |ip: Ipv4Addr| {
                    let kp = KeyPair::from_seed(LanPlan::key_seed(ip));
                    registry.borrow_mut().register(u32::from(ip.to_u32()), kp.public_key());
                };
                enrol(plan.gateway.0);
                enrol(plan.akd.0);
                for &(ip, _) in &plan.hosts {
                    enrol(ip);
                }
                let (akd_ip, akd_mac) = plan.akd;
                let max_age = plan.sarp_max_age;
                let sarp_config = {
                    let registry = Rc::clone(&registry);
                    let akd_key = akd_keypair.public_key();
                    move |ip: Ipv4Addr, local: bool| SArpConfig {
                        keypair: KeyPair::from_seed(LanPlan::key_seed(ip)),
                        akd_ip,
                        akd_mac,
                        akd_key,
                        max_age,
                        local_akd: local.then(|| Rc::clone(&registry)),
                        unit_cost: DEFAULT_UNIT_COST,
                        key_fetch_retries: hardening.key_fetch_retries,
                        key_fetch_timeout: hardening.key_fetch_timeout,
                    }
                };
                install.aux_station = Some(AuxStation {
                    name: "akd",
                    ip: akd_ip,
                    mac: akd_mac,
                    hooks: vec![Box::new(SArpHook::new(sarp_config(akd_ip, true), alerts.clone()))],
                    apps: vec![Box::new(AkdApp::new(registry, akd_keypair, alerts.clone()))],
                });
                install.host_agent = Some(Box::new(move |ip, _| {
                    Box::new(SArpHook::new(sarp_config(ip, false), alerts.clone()))
                        as Box<dyn HostHook>
                }));
            }
            SchemeKind::Tarp => {
                install.policy_override = Some(ArpPolicy::StaticOnly);
                let lta = KeyPair::from_seed(plan.tarp_lta_seed);
                let lifetime = plan.ticket_lifetime;
                install.host_agent = Some(Box::new(move |ip, mac| {
                    Box::new(TarpHook::new(
                        TarpConfig {
                            ticket: Ticket::issue(&lta, ip, mac, lifetime),
                            lta_key: lta.public_key(),
                            unit_cost: DEFAULT_UNIT_COST,
                        },
                        alerts.clone(),
                    )) as Box<dyn HostHook>
                }));
            }
        }
        install
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> LanPlan {
        LanPlan {
            gateway: (Ipv4Addr::new(10, 0, 0, 1), MacAddr::from_index(100)),
            hosts: (0..4)
                .map(|i| (Ipv4Addr::new(10, 0, 0, 2 + i), MacAddr::from_index(1000 + u32::from(i))))
                .collect(),
            akd: (Ipv4Addr::new(10, 0, 0, 250), MacAddr::from_index(2500)),
            trusted_ports: vec![PortId(0), PortId(5)],
            probe_source_mac: MacAddr::from_index(9000),
            tarp_lta_seed: 0x17A,
            akd_key_seed: 0xA4D,
            ticket_lifetime: SimTime::from_secs(86_400),
            sarp_max_age: Duration::from_secs(5),
            hardening: SchemeHardening::default(),
        }
    }

    #[test]
    fn every_kind_instantiates() {
        for kind in SchemeKind::all() {
            let mut res = SchemeResources::new(plan(), AlertLog::new());
            let install = kind.instantiate(&mut res);
            // Every scheme must install *some* mechanism, except the
            // baseline.
            let has_any = install.policy_override.is_some()
                || install.host_agent.is_some()
                || !install.monitors.is_empty()
                || install.inspector.is_some()
                || install.port_security.is_some()
                || install.static_bindings.is_some()
                || install.aux_station.is_some();
            assert_eq!(has_any, kind != SchemeKind::None, "{kind:?}");
        }
    }

    #[test]
    fn monitor_schemes_declare_monitors() {
        for kind in SchemeKind::all() {
            let mut res = SchemeResources::new(plan(), AlertLog::new());
            let n = kind.instantiate(&mut res).monitors.len();
            let expected = match kind {
                SchemeKind::Passive
                | SchemeKind::Stateful
                | SchemeKind::ActiveProbe
                | SchemeKind::RateMonitor => 1,
                SchemeKind::Hybrid => 2,
                _ => 0,
            };
            assert_eq!(n, expected, "{kind:?}");
        }
    }

    #[test]
    fn static_arp_binds_gateway_and_hosts() {
        let mut res = SchemeResources::new(plan(), AlertLog::new());
        let install = SchemeKind::StaticArp.instantiate(&mut res);
        let bindings = install.static_bindings.unwrap();
        assert_eq!(bindings.len(), 5);
        assert_eq!(bindings[0], (Ipv4Addr::new(10, 0, 0, 1), MacAddr::from_index(100)));
        assert_eq!(install.policy_override, Some(ArpPolicy::StaticOnly));
    }

    #[test]
    fn sarp_installs_aux_station_and_agents() {
        let mut res = SchemeResources::new(plan(), AlertLog::new());
        let install = SchemeKind::SArp.instantiate(&mut res);
        let aux = install.aux_station.unwrap();
        assert_eq!(aux.ip, Ipv4Addr::new(10, 0, 0, 250));
        assert_eq!(aux.hooks.len(), 1);
        assert_eq!(aux.apps.len(), 1);
        assert!(install.host_agent.is_some());
    }

    #[test]
    fn hardening_flows_into_agents() {
        let mut hardened = plan();
        hardened.hardening = SchemeHardening::lossy();
        let mut res = SchemeResources::new(hardened, AlertLog::new());
        // Smoke: instantiation with hardened knobs succeeds for the
        // schemes that consume them.
        for kind in [SchemeKind::ActiveProbe, SchemeKind::Antidote, SchemeKind::SArp] {
            let _ = kind.instantiate(&mut res);
        }
    }
}
