//! The taxonomy: how the paper classifies each scheme.

/// Where the scheme's logic runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeClass {
    /// Per-host configuration or kernel modification.
    HostBased,
    /// A sniffer on a mirror/tap port.
    NetworkMonitor,
    /// A feature of the switching fabric.
    SwitchBased,
    /// A modified, authenticated ARP protocol.
    Cryptographic,
}

/// Whether the scheme detects, prevents, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Raises alerts only.
    Detection,
    /// Stops the attack outright.
    Prevention,
    /// Stops what it can, alerts on the rest.
    Both,
}

/// Whether the scheme injects traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Observation only.
    Passive,
    /// Sends probes or protocol messages.
    Active,
}

/// Qualitative deployment cost, the axis the paper weighs hardest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeployCost {
    /// Turn it on and forget it.
    Low,
    /// Requires a monitoring point or moderate configuration.
    Medium,
    /// Per-host configuration, key enrolment, or special hardware.
    High,
}

/// Static description of one scheme, the row source for taxonomy table T1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeDescriptor {
    /// Stable label used in alerts, work accounting, and reports.
    pub name: &'static str,
    /// Literature exemplar.
    pub exemplar: &'static str,
    /// Where it runs.
    pub class: SchemeClass,
    /// Detects and/or prevents.
    pub mode: Mode,
    /// Passive or active.
    pub activity: Activity,
    /// Deployment cost class.
    pub cost: DeployCost,
    /// One-line summary for the table.
    pub summary: &'static str,
}

/// Enumeration of every scheme the analysis covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No defence (the baseline row).
    None,
    /// Static ARP entries everywhere.
    StaticArp,
    /// arpwatch-style passive monitoring.
    Passive,
    /// XArp/ArpON-style probe verification.
    ActiveProbe,
    /// Snort-style request/reply stateful inspection.
    Stateful,
    /// Anticap-style kernel reply filtering.
    Anticap,
    /// Antidote-style probe-before-replace kernel patch.
    Antidote,
    /// S-ARP: signed replies with an AKD.
    SArp,
    /// Switch port security (per-port MAC limits).
    PortSecurity,
    /// DHCP snooping + Dynamic ARP Inspection.
    Dai,
    /// Stateful inspection with probe confirmation (hybrid).
    Hybrid,
    /// TARP: LTA-issued tickets attached to replies.
    Tarp,
    /// Threshold counters for volumetric L2 attacks (flood/starvation).
    RateMonitor,
}

impl SchemeKind {
    /// All schemes, in the order the report tables list them.
    pub fn all() -> [SchemeKind; 13] {
        [
            SchemeKind::None,
            SchemeKind::StaticArp,
            SchemeKind::Passive,
            SchemeKind::ActiveProbe,
            SchemeKind::Stateful,
            SchemeKind::Anticap,
            SchemeKind::Antidote,
            SchemeKind::SArp,
            SchemeKind::Tarp,
            SchemeKind::PortSecurity,
            SchemeKind::Dai,
            SchemeKind::RateMonitor,
            SchemeKind::Hybrid,
        ]
    }

    /// The static description for this scheme.
    pub fn descriptor(&self) -> SchemeDescriptor {
        use Activity::*;
        use DeployCost::*;
        use Mode::*;
        use SchemeClass::*;
        match self {
            SchemeKind::None => SchemeDescriptor {
                name: "none",
                exemplar: "—",
                class: HostBased,
                mode: Detection,
                activity: Passive,
                cost: Low,
                summary: "baseline: unmodified ARP, no monitoring",
            },
            SchemeKind::StaticArp => SchemeDescriptor {
                name: "static-arp",
                exemplar: "arp -s",
                class: HostBased,
                mode: Prevention,
                activity: Passive,
                cost: High,
                summary: "immutable per-host entries; O(n^2) management, breaks DHCP",
            },
            SchemeKind::Passive => SchemeDescriptor {
                name: "passive",
                exemplar: "arpwatch",
                class: NetworkMonitor,
                mode: Detection,
                activity: Passive,
                cost: Medium,
                summary: "IP<->MAC database diffing on a mirror port; blind during learning window",
            },
            SchemeKind::ActiveProbe => SchemeDescriptor {
                name: "active-probe",
                exemplar: "XArp / ArpON",
                class: NetworkMonitor,
                mode: Detection,
                activity: Active,
                cost: Medium,
                summary: "verifies suspicious claims with ARP probes; extra wire traffic",
            },
            SchemeKind::Stateful => SchemeDescriptor {
                name: "stateful",
                exemplar: "Snort ARP preprocessor",
                class: NetworkMonitor,
                mode: Detection,
                activity: Passive,
                cost: Medium,
                summary: "matches replies to observed requests; flags unsolicited/mismatched",
            },
            SchemeKind::Anticap => SchemeDescriptor {
                name: "anticap",
                exemplar: "Anticap",
                class: HostBased,
                mode: Prevention,
                activity: Passive,
                cost: High,
                summary: "kernel drops unsolicited replies; loses legitimate gratuitous updates",
            },
            SchemeKind::Antidote => SchemeDescriptor {
                name: "antidote",
                exemplar: "Antidote",
                class: HostBased,
                mode: Both,
                activity: Active,
                cost: High,
                summary: "probes the previous MAC before accepting a rebinding",
            },
            SchemeKind::SArp => SchemeDescriptor {
                name: "sarp",
                exemplar: "S-ARP",
                class: Cryptographic,
                mode: Prevention,
                activity: Active,
                cost: High,
                summary:
                    "signed replies + key distributor; full prevention, latency & enrolment cost",
            },
            SchemeKind::PortSecurity => SchemeDescriptor {
                name: "port-security",
                exemplar: "Cisco port security",
                class: SwitchBased,
                mode: Prevention,
                activity: Passive,
                cost: Medium,
                summary: "per-port MAC limits; stops flooding, not binding forgery",
            },
            SchemeKind::Dai => SchemeDescriptor {
                name: "dai",
                exemplar: "DHCP snooping + DAI",
                class: SwitchBased,
                mode: Both,
                activity: Passive,
                cost: Medium,
                summary: "switch validates ARP against snooped leases; needs capable switches",
            },
            SchemeKind::Tarp => SchemeDescriptor {
                name: "tarp",
                exemplar: "TARP",
                class: Cryptographic,
                mode: Prevention,
                activity: Passive,
                cost: Medium,
                summary:
                    "LTA-issued tickets on replies; one verify, no per-host keys, slow revocation",
            },
            SchemeKind::RateMonitor => SchemeDescriptor {
                name: "rate-monitor",
                exemplar: "threshold IDS",
                class: NetworkMonitor,
                mode: Detection,
                activity: Passive,
                cost: Low,
                summary: "sliding-window counters for flooding/starvation; blind to quiet forgery",
            },
            SchemeKind::Hybrid => SchemeDescriptor {
                name: "hybrid",
                exemplar: "stateful + probes",
                class: NetworkMonitor,
                mode: Detection,
                activity: Active,
                cost: Medium,
                summary: "stateful prefilter with probe confirmation; fewer false positives",
            },
        }
    }

    /// Stable label (shorthand for `descriptor().name`).
    pub fn label(&self) -> &'static str {
        self.descriptor().name
    }

    /// Resolves a stable label (as printed by [`label`](Self::label))
    /// back to its kind — the CLI's `--scheme` parser.
    pub fn from_label(label: &str) -> Option<SchemeKind> {
        SchemeKind::all().into_iter().find(|kind| kind.label() == label)
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            SchemeKind::all().iter().map(|s| s.label()).collect();
        assert_eq!(names.len(), SchemeKind::all().len());
    }

    #[test]
    fn cryptographic_schemes_prevent() {
        assert_eq!(SchemeKind::SArp.descriptor().mode, Mode::Prevention);
        assert_eq!(SchemeKind::SArp.descriptor().class, SchemeClass::Cryptographic);
    }

    #[test]
    fn cost_ordering_reflects_the_analysis() {
        // The paper's central trade-off: the only full preventions are the
        // expensive ones.
        for kind in [SchemeKind::StaticArp, SchemeKind::SArp] {
            assert_eq!(kind.descriptor().cost, DeployCost::High);
            assert_ne!(kind.descriptor().mode, Mode::Detection);
        }
        assert!(SchemeKind::Passive.descriptor().cost < DeployCost::High);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(SchemeKind::Dai.to_string(), "dai");
    }
}
