//! Static ARP entries: the oldest prevention scheme.

use arpshield_host::HostHandle;
use arpshield_netsim::SimTime;
use arpshield_packet::{Ipv4Addr, MacAddr};

/// Installs the complete set of true bindings statically into a host's
/// cache.
///
/// Combined with [`ArpPolicy::StaticOnly`](arpshield_host::ArpPolicy) on
/// the host, this is full prevention: the cache can never be rewritten
/// dynamically. The costs the analysis charges it with are managerial —
/// every host must be touched for every address change, and DHCP
/// environments cannot use it at all — which experiments quantify as the
/// `n × (n-1)` entries this function installs across a LAN.
///
/// ```rust
/// use arpshield_host::{Host, HostConfig, ArpPolicy};
/// use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
/// use arpshield_schemes::static_arp;
///
/// let (_, handle) = Host::new(
///     HostConfig::static_ip(
///         "a",
///         MacAddr::from_index(1),
///         Ipv4Addr::new(10, 0, 0, 1),
///         Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24),
///     )
///     .with_policy(ArpPolicy::StaticOnly),
/// );
/// let peers = [(Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_index(2))];
/// assert_eq!(static_arp(&handle, &peers), 1);
/// ```
pub fn static_arp(host: &HostHandle, bindings: &[(Ipv4Addr, MacAddr)]) -> usize {
    let mut cache = host.cache.borrow_mut();
    let own_ip = host.ip();
    let mut installed = 0;
    for &(ip, mac) in bindings {
        if Some(ip) == own_ip {
            continue; // no self-entry needed
        }
        cache.insert_static(SimTime::ZERO, ip, mac);
        installed += 1;
    }
    installed
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_host::{ArpPolicy, Host, HostConfig};
    use arpshield_packet::Ipv4Cidr;

    #[test]
    fn installs_all_but_self() {
        let (_, handle) = Host::new(
            HostConfig::static_ip(
                "a",
                MacAddr::from_index(1),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24),
            )
            .with_policy(ArpPolicy::StaticOnly),
        );
        let bindings: Vec<_> = (1..=5u8)
            .map(|n| (Ipv4Addr::new(10, 0, 0, n), MacAddr::from_index(u32::from(n))))
            .collect();
        assert_eq!(static_arp(&handle, &bindings), 4);
        let cache = handle.cache.borrow();
        assert_eq!(cache.len(), 4);
        assert_eq!(
            cache.lookup(SimTime::from_secs(1_000_000), Ipv4Addr::new(10, 0, 0, 3)),
            Some(MacAddr::from_index(3)),
            "static entries never expire"
        );
    }
}
