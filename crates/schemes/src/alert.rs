//! The shared alert log every scheme reports into.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use arpshield_netsim::SimTime;
use arpshield_packet::{Ipv4Addr, MacAddr};
use arpshield_trace::profile;
use arpshield_trace::Tracer;

/// What a scheme believes it saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// An IP's binding changed to a different MAC.
    BindingChanged,
    /// A reply arrived with no matching request on the wire.
    UnsolicitedReply,
    /// A reply's sender fields contradict the request it answers.
    ReplyMismatch,
    /// An active probe contradicted a claimed binding.
    ProbeContradiction,
    /// Two different MACs answered for the same IP.
    DuplicateResponders,
    /// A signature failed to verify (S-ARP).
    SignatureInvalid,
    /// An unsigned/legacy ARP reply was rejected on an S-ARP host.
    UnsignedReply,
    /// A host-side policy hook rejected a binding change (Antidote).
    ReplaceRejected,
    /// The switch dropped an ARP packet failing DAI validation.
    DaiViolation,
    /// ARP request rate suggests scanning/poisoning activity.
    RateAnomaly,
}

impl AlertKind {
    /// Stable lower-snake label, used as the trace counter suffix.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::BindingChanged => "binding_changed",
            AlertKind::UnsolicitedReply => "unsolicited_reply",
            AlertKind::ReplyMismatch => "reply_mismatch",
            AlertKind::ProbeContradiction => "probe_contradiction",
            AlertKind::DuplicateResponders => "duplicate_responders",
            AlertKind::SignatureInvalid => "signature_invalid",
            AlertKind::UnsignedReply => "unsigned_reply",
            AlertKind::ReplaceRejected => "replace_rejected",
            AlertKind::DaiViolation => "dai_violation",
            AlertKind::RateAnomaly => "rate_anomaly",
        }
    }
}

/// One detection event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// When the scheme raised it.
    pub at: SimTime,
    /// Which scheme raised it (stable label from its descriptor).
    pub scheme: &'static str,
    /// Category.
    pub kind: AlertKind,
    /// The IP whose binding is in question.
    pub subject_ip: Option<Ipv4Addr>,
    /// The MAC observed in the suspicious claim.
    pub observed_mac: Option<MacAddr>,
    /// The MAC previously/expectedly bound.
    pub expected_mac: Option<MacAddr>,
}

/// The trace counter bumped for each [`AlertKind`].
fn verdict_counter(kind: AlertKind) -> &'static str {
    match kind {
        AlertKind::BindingChanged => "scheme.verdict.binding_changed",
        AlertKind::UnsolicitedReply => "scheme.verdict.unsolicited_reply",
        AlertKind::ReplyMismatch => "scheme.verdict.reply_mismatch",
        AlertKind::ProbeContradiction => "scheme.verdict.probe_contradiction",
        AlertKind::DuplicateResponders => "scheme.verdict.duplicate_responders",
        AlertKind::SignatureInvalid => "scheme.verdict.signature_invalid",
        AlertKind::UnsignedReply => "scheme.verdict.unsigned_reply",
        AlertKind::ReplaceRejected => "scheme.verdict.replace_rejected",
        AlertKind::DaiViolation => "scheme.verdict.dai_violation",
        AlertKind::RateAnomaly => "scheme.verdict.rate_anomaly",
    }
}

#[derive(Debug, Default)]
struct Inner {
    alerts: Vec<Alert>,
    work: HashMap<&'static str, u64>,
    tracer: Tracer,
}

/// Shared, append-only alert log with per-scheme work accounting.
///
/// Cheap to clone; all clones share state (single-threaded simulation).
#[derive(Debug, Clone, Default)]
pub struct AlertLog {
    inner: Rc<RefCell<Inner>>,
}

impl AlertLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AlertLog::default()
    }

    /// Routes every raised verdict (with its evidence) into `tracer`.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// Records an alert. The capture frame being dispatched (if any)
    /// is pinned and cited as the verdict's provenance.
    pub fn raise(&self, alert: Alert) {
        self.raise_with_frames(alert, &[]);
    }

    /// Records an alert citing extra `evidence` capture frames beyond
    /// the one currently being dispatched — e.g. the frame that
    /// established the binding a [`AlertKind::BindingChanged`] verdict
    /// says was overwritten. Every cited frame is pinned so it
    /// survives flight-recorder eviction; the triggering frame leads
    /// the citation list, historical evidence follows.
    pub fn raise_with_frames(&self, alert: Alert, evidence: &[u64]) {
        let _s = profile::span("scheme.verdict");
        let mut inner = self.inner.borrow_mut();
        inner.tracer.count(verdict_counter(alert.kind), 1);
        let mut frames: Vec<u64> = inner.tracer.current_frame().into_iter().collect();
        for &id in evidence {
            if !frames.contains(&id) {
                frames.push(id);
            }
        }
        for &id in &frames {
            inner.tracer.pin_frame(id);
        }
        inner.tracer.event_frames(alert.at.as_nanos(), "scheme.verdict", || {
            let fmt_ip =
                |ip: Option<Ipv4Addr>| ip.map(|i| i.to_string()).unwrap_or_else(|| "-".to_string());
            let fmt_mac = |mac: Option<MacAddr>| {
                mac.map(|m| m.to_string()).unwrap_or_else(|| "-".to_string())
            };
            (
                alert.scheme.to_string(),
                format!(
                    "kind={} subject_ip={} observed_mac={} expected_mac={}",
                    alert.kind.label(),
                    fmt_ip(alert.subject_ip),
                    fmt_mac(alert.observed_mac),
                    fmt_mac(alert.expected_mac),
                ),
                frames,
            )
        });
        inner.alerts.push(alert);
    }

    /// Pins the capture frame currently being dispatched (the packet a
    /// scheme is inspecting) and returns its id, so schemes can keep a
    /// provenance handle to evidence they may only alert on later.
    pub fn pin_current_frame(&self) -> Option<u64> {
        self.inner.borrow().tracer.pin_current()
    }

    /// Charges `units` of abstract CPU work to `scheme`.
    pub fn add_work(&self, scheme: &'static str, units: u64) {
        *self.inner.borrow_mut().work.entry(scheme).or_insert(0) += units;
    }

    /// Snapshot of all alerts so far.
    pub fn alerts(&self) -> Vec<Alert> {
        self.inner.borrow().alerts.clone()
    }

    /// Number of alerts.
    pub fn len(&self) -> usize {
        self.inner.borrow().alerts.len()
    }

    /// True when nothing was raised.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().alerts.is_empty()
    }

    /// Time of the first alert matching `pred`.
    pub fn first_time(&self, pred: impl Fn(&Alert) -> bool) -> Option<SimTime> {
        self.inner.borrow().alerts.iter().find(|a| pred(a)).map(|a| a.at)
    }

    /// Alerts whose subject is `ip`.
    pub fn about_ip(&self, ip: Ipv4Addr) -> Vec<Alert> {
        self.inner.borrow().alerts.iter().filter(|a| a.subject_ip == Some(ip)).cloned().collect()
    }

    /// Work units charged to `scheme`.
    pub fn work_of(&self, scheme: &str) -> u64 {
        self.inner.borrow().work.get(scheme).copied().unwrap_or(0)
    }

    /// Total work across schemes.
    pub fn total_work(&self) -> u64 {
        self.inner.borrow().work.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(ms: u64, kind: AlertKind) -> Alert {
        Alert {
            at: SimTime::from_millis(ms),
            scheme: "test",
            kind,
            subject_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
            observed_mac: Some(MacAddr::from_index(66)),
            expected_mac: Some(MacAddr::from_index(1)),
        }
    }

    #[test]
    fn log_shared_across_clones() {
        let log = AlertLog::new();
        let clone = log.clone();
        clone.raise(alert(10, AlertKind::BindingChanged));
        assert_eq!(log.len(), 1);
        assert_eq!(
            log.first_time(|a| a.kind == AlertKind::BindingChanged),
            Some(SimTime::from_millis(10))
        );
        assert_eq!(log.first_time(|a| a.kind == AlertKind::DaiViolation), None);
    }

    #[test]
    fn work_accounting() {
        let log = AlertLog::new();
        log.add_work("passive", 3);
        log.add_work("passive", 4);
        log.add_work("sarp", 900);
        assert_eq!(log.work_of("passive"), 7);
        assert_eq!(log.work_of("sarp"), 900);
        assert_eq!(log.work_of("nobody"), 0);
        assert_eq!(log.total_work(), 907);
    }

    #[test]
    fn about_ip_filters() {
        let log = AlertLog::new();
        log.raise(alert(1, AlertKind::BindingChanged));
        let mut other = alert(2, AlertKind::UnsolicitedReply);
        other.subject_ip = Some(Ipv4Addr::new(10, 0, 0, 9));
        log.raise(other);
        assert_eq!(log.about_ip(Ipv4Addr::new(10, 0, 0, 1)).len(), 1);
    }
}
