//! S-ARP: authenticated ARP with signed replies and an Authoritative Key
//! Distributor (AKD).
//!
//! Deployment shape (mirroring Bruschi et al.):
//!
//! * every host gets a keypair, enrolled with the AKD out of band;
//! * every host knows the AKD's address and public key statically (the
//!   bootstrap that breaks the resolve-the-AKD circularity);
//! * ARP *requests* go out unchanged, but replies travel as signed
//!   [`EtherType::SArp`] frames: the 28-byte ARP body, an 8-byte
//!   timestamp, and a 32-byte Schnorr signature;
//! * receivers verify with the claimed IP's public key, fetched from the
//!   AKD over UDP (and cached); only verified bindings enter the cache;
//! * plain ARP replies are rejected outright — which is also why S-ARP
//!   requires universal deployment on the segment, the interoperability
//!   cost the analysis charges it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use arpshield_crypto::{Akd, KeyPair, PublicKey, Signature, SIGNATURE_LEN};
use arpshield_host::apps::App;
use arpshield_host::{ArpVerdict, FrameVerdict, HostApi, HostHook};
use arpshield_packet::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr, ARP_WIRE_LEN,
};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

const SCHEME: &str = "sarp";
/// UDP port the AKD listens on.
pub const AKD_PORT: u16 = 9612;
/// Client-side source port for key requests.
const CLIENT_PORT: u16 = 9613;

const TIMER_SEND_SIGNED: u32 = 1;
const TIMER_FINISH_VERIFY: u32 = 2;

const MSG_LOOKUP: u8 = 0x01;
const MSG_KEY: u8 = 0x02;
const MSG_UNKNOWN: u8 = 0x03;

fn signed_reply_message(arp_body: &[u8], ts: u64) -> Vec<u8> {
    let mut m = Vec::with_capacity(arp_body.len() + 8);
    m.extend_from_slice(arp_body);
    m.extend_from_slice(&ts.to_be_bytes());
    m
}

/// S-ARP host agent configuration.
#[derive(Debug)]
pub struct SArpConfig {
    /// This host's signing keypair.
    pub keypair: KeyPair,
    /// The AKD's address.
    pub akd_ip: Ipv4Addr,
    /// The AKD's hardware address (statically provisioned, installed as a
    /// static cache entry at start).
    pub akd_mac: MacAddr,
    /// The AKD's public key (statically provisioned; AKD responses are
    /// signed with it).
    pub akd_key: PublicKey,
    /// Maximum acceptable age of a signed reply (replay window).
    pub max_age: Duration,
    /// On the AKD host itself, direct access to the registry (skips the
    /// network round trip to ourselves).
    pub local_akd: Option<Rc<RefCell<Akd>>>,
    /// Simulated CPU time per work unit. Signing and verification are
    /// deferred by `work × this` so the signature cost shows up in
    /// resolution *latency*, not just in the work ledger. One
    /// microsecond per unit calibrates a ~600 µs sign / ~900 µs verify,
    /// the right order of magnitude for era-appropriate DSA on
    /// commodity hosts.
    pub unit_cost: Duration,
    /// AKD lookups re-issued when a key fetch goes unanswered — a lost
    /// datagram otherwise parks the claims behind it forever. 0 (the
    /// default on perfect wires) disables the retry timer entirely.
    pub key_fetch_retries: u32,
    /// How long to wait for an AKD response before re-requesting.
    pub key_fetch_timeout: Duration,
}

impl SArpConfig {
    /// Enables AKD key-fetch retries (for lossy links).
    pub fn with_key_fetch_retries(mut self, retries: u32, timeout: Duration) -> Self {
        self.key_fetch_retries = retries;
        self.key_fetch_timeout = timeout;
        self
    }
}

/// Default simulated CPU cost of one work unit.
pub const DEFAULT_UNIT_COST: Duration = Duration::from_micros(1);

/// The per-host S-ARP agent.
#[derive(Debug)]
pub struct SArpHook {
    config: SArpConfig,
    log: AlertLog,
    key_cache: HashMap<Ipv4Addr, PublicKey>,
    /// Signed claims parked while their key is fetched.
    pending: HashMap<Ipv4Addr, Vec<Vec<u8>>>,
    /// Key-fetch retries still available per outstanding lookup.
    key_retries: HashMap<Ipv4Addr, u32>,
    /// Signed replies waiting out their signing delay.
    outbox: std::collections::VecDeque<EthernetFrame>,
    /// Verified bindings waiting out their verification delay.
    verify_queue: std::collections::VecDeque<(Ipv4Addr, MacAddr, bool)>,
    /// Signed replies emitted.
    pub signed_replies_sent: u64,
    /// Claims verified and installed.
    pub verified: u64,
    /// Claims rejected (bad signature / stale timestamp).
    pub rejected: u64,
    /// Plain legacy replies dropped.
    pub legacy_dropped: u64,
    /// AKD round trips initiated.
    pub key_fetches: u64,
    /// Key fetches abandoned after every retry went unanswered (their
    /// parked claims were dropped).
    pub key_fetch_timeouts: u64,
}

impl SArpHook {
    /// Creates the agent, reporting into `log`.
    pub fn new(config: SArpConfig, log: AlertLog) -> Self {
        SArpHook {
            config,
            log,
            key_cache: HashMap::new(),
            pending: HashMap::new(),
            key_retries: HashMap::new(),
            outbox: std::collections::VecDeque::new(),
            verify_queue: std::collections::VecDeque::new(),
            signed_replies_sent: 0,
            verified: 0,
            rejected: 0,
            legacy_dropped: 0,
            key_fetches: 0,
            key_fetch_timeouts: 0,
        }
    }

    fn alert(&self, api: &HostApi<'_, '_>, kind: AlertKind, ip: Ipv4Addr, mac: MacAddr) {
        self.log.raise(Alert {
            at: api.now(),
            scheme: SCHEME,
            kind,
            subject_ip: Some(ip),
            observed_mac: Some(mac),
            expected_mac: None,
        });
    }

    fn send_signed_reply(&mut self, api: &mut HostApi<'_, '_>, request: &ArpPacket) {
        let my_mac = api.mac();
        let reply = ArpPacket::reply_to(request, my_mac);
        let body = reply.encode();
        let ts = api.now().as_nanos();
        let message = signed_reply_message(&body, ts);
        api.add_work(work::SIGN);
        let sig = self.config.keypair.sign(&message);
        let mut payload = message;
        payload.extend_from_slice(&sig.to_bytes());
        let frame = EthernetFrame::new(request.sender_mac, my_mac, EtherType::SArp, payload);
        // The signature costs CPU time: emit after the signing delay.
        self.outbox.push_back(frame);
        api.schedule(self.config.unit_cost * work::SIGN as u32, TIMER_SEND_SIGNED);
        self.signed_replies_sent += 1;
    }

    fn lookup_key(&mut self, api: &mut HostApi<'_, '_>, ip: Ipv4Addr) -> Option<PublicKey> {
        if let Some(key) = self.key_cache.get(&ip) {
            return Some(*key);
        }
        if let Some(akd) = &self.config.local_akd {
            api.add_work(work::KEY_LOOKUP);
            if let Ok(key) = akd.borrow_mut().lookup(u32::from(ip.to_u32())) {
                self.key_cache.insert(ip, key);
                return Some(key);
            }
            return None;
        }
        None
    }

    fn request_key(&mut self, api: &mut HostApi<'_, '_>, ip: Ipv4Addr) {
        self.key_fetches += 1;
        let mut payload = vec![MSG_LOOKUP];
        payload.extend_from_slice(&ip.octets());
        api.send_udp(self.config.akd_ip, CLIENT_PORT, AKD_PORT, payload);
    }

    fn verify_claim(&mut self, api: &mut HostApi<'_, '_>, key: PublicKey, payload: &[u8]) {
        let body = &payload[..ARP_WIRE_LEN];
        let Ok(arp) = ArpPacket::parse(body) else {
            return;
        };
        let ts = u64::from_be_bytes(payload[ARP_WIRE_LEN..ARP_WIRE_LEN + 8].try_into().unwrap());
        let now = api.now().as_nanos();
        let age = now.saturating_sub(ts);
        if age > self.config.max_age.as_nanos() as u64 {
            self.rejected += 1;
            self.alert(api, AlertKind::SignatureInvalid, arp.sender_ip, arp.sender_mac);
            return;
        }
        let message = &payload[..ARP_WIRE_LEN + 8];
        let sig_bytes = &payload[ARP_WIRE_LEN + 8..ARP_WIRE_LEN + 8 + SIGNATURE_LEN];
        api.add_work(work::VERIFY);
        let ok = Signature::from_bytes(sig_bytes).and_then(|sig| key.verify(message, &sig)).is_ok();
        // Verification costs CPU time: the outcome lands after the delay.
        self.verify_queue.push_back((arp.sender_ip, arp.sender_mac, ok));
        api.schedule(self.config.unit_cost * work::VERIFY as u32, TIMER_FINISH_VERIFY);
    }

    fn finish_verify(&mut self, api: &mut HostApi<'_, '_>) {
        if let Some((ip, mac, ok)) = self.verify_queue.pop_front() {
            if ok {
                self.verified += 1;
                api.install_verified_binding(ip, mac);
            } else {
                self.rejected += 1;
                self.alert(api, AlertKind::SignatureInvalid, ip, mac);
            }
        }
    }

    fn handle_sarp_frame(&mut self, api: &mut HostApi<'_, '_>, eth: &EthernetFrame) {
        if eth.payload.len() < ARP_WIRE_LEN + 8 + SIGNATURE_LEN {
            return;
        }
        let payload = eth.payload[..ARP_WIRE_LEN + 8 + SIGNATURE_LEN].to_vec();
        let Ok(arp) = ArpPacket::parse(&payload[..ARP_WIRE_LEN]) else {
            return;
        };
        match self.lookup_key(api, arp.sender_ip) {
            Some(key) => self.verify_claim(api, key, &payload),
            None if self.config.local_akd.is_some() => {
                // We *are* the AKD and the principal is unknown: reject.
                self.rejected += 1;
                self.alert(api, AlertKind::SignatureInvalid, arp.sender_ip, arp.sender_mac);
            }
            None => {
                let queue = self.pending.entry(arp.sender_ip).or_default();
                if queue.len() < 8 {
                    queue.push(payload);
                }
                self.request_key(api, arp.sender_ip);
                // Arm the loss-recovery timer once per outstanding fetch.
                if self.config.key_fetch_retries > 0
                    && !self.key_retries.contains_key(&arp.sender_ip)
                {
                    self.key_retries.insert(arp.sender_ip, self.config.key_fetch_retries);
                    api.schedule(self.config.key_fetch_timeout, arp.sender_ip.to_u32());
                }
            }
        }
    }

    fn handle_akd_response(&mut self, api: &mut HostApi<'_, '_>, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        match data[0] {
            MSG_KEY if data.len() >= 1 + 4 + 16 + 8 + SIGNATURE_LEN => {
                let message = &data[..1 + 4 + 16 + 8];
                let sig_bytes = &data[1 + 4 + 16 + 8..1 + 4 + 16 + 8 + SIGNATURE_LEN];
                api.add_work(work::VERIFY);
                let authentic = Signature::from_bytes(sig_bytes)
                    .and_then(|sig| self.config.akd_key.verify(message, &sig))
                    .is_ok();
                if !authentic {
                    return; // forged AKD response
                }
                let ip = Ipv4Addr::new(data[1], data[2], data[3], data[4]);
                let Ok(key) = PublicKey::from_bytes(&data[5..21]) else {
                    return;
                };
                self.key_cache.insert(ip, key);
                self.key_retries.remove(&ip);
                if let Some(claims) = self.pending.remove(&ip) {
                    for claim in claims {
                        self.verify_claim(api, key, &claim);
                    }
                }
            }
            MSG_UNKNOWN if data.len() >= 5 => {
                let ip = Ipv4Addr::new(data[1], data[2], data[3], data[4]);
                // Unenrolled principal: drop any parked claims for it.
                self.key_retries.remove(&ip);
                if self.pending.remove(&ip).is_some() {
                    self.rejected += 1;
                }
            }
            _ => {}
        }
    }
}

impl HostHook for SArpHook {
    fn name(&self) -> &str {
        SCHEME
    }

    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        // The AKD binding is provisioned statically at enrolment.
        api.install_static_binding(self.config.akd_ip, self.config.akd_mac);
    }

    fn on_arp_rx(
        &mut self,
        api: &mut HostApi<'_, '_>,
        _eth: &EthernetFrame,
        arp: &ArpPacket,
    ) -> ArpVerdict {
        api.add_work(work::INSPECT);
        match arp.op {
            ArpOp::Request => {
                if arp.is_probe() {
                    // RFC 5227 probes carry no binding; harmless, and
                    // answering them plainly keeps duplicate-address
                    // detection working in mixed deployments.
                    return ArpVerdict::Continue;
                }
                if Some(arp.target_ip) == api.ip() {
                    self.send_signed_reply(api, arp);
                }
                // The request's own sender binding is unauthenticated:
                // suppress normal learning/auto-reply.
                ArpVerdict::Drop
            }
            ArpOp::Reply => {
                // Plain replies are forbidden on an S-ARP segment.
                self.legacy_dropped += 1;
                self.alert(api, AlertKind::UnsignedReply, arp.sender_ip, arp.sender_mac);
                ArpVerdict::Drop
            }
        }
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, payload: u32) {
        match payload {
            TIMER_SEND_SIGNED => {
                if let Some(frame) = self.outbox.pop_front() {
                    api.send_frame(&frame);
                }
            }
            TIMER_FINISH_VERIFY => self.finish_verify(api),
            // Any other payload is an IPv4 address whose key fetch timed
            // out (the address space cannot collide with the two small
            // timer ids on real subnets; a stale timer for a completed
            // fetch simply finds nothing outstanding and is ignored).
            ip_raw => {
                let ip = Ipv4Addr::from_u32(ip_raw);
                if !self.pending.contains_key(&ip) {
                    self.key_retries.remove(&ip);
                    return;
                }
                match self.key_retries.get_mut(&ip) {
                    Some(left) if *left > 0 => {
                        *left -= 1;
                        self.request_key(api, ip);
                        api.schedule(self.config.key_fetch_timeout, ip_raw);
                    }
                    Some(_) => {
                        // Out of retries: give up on the fetch and the
                        // claims parked behind it.
                        self.key_retries.remove(&ip);
                        self.pending.remove(&ip);
                        self.key_fetch_timeouts += 1;
                    }
                    None => {}
                }
            }
        }
    }

    fn on_frame_rx(&mut self, api: &mut HostApi<'_, '_>, eth: &EthernetFrame) -> FrameVerdict {
        match eth.ethertype {
            EtherType::SArp => {
                self.handle_sarp_frame(api, eth);
                FrameVerdict::Consumed
            }
            EtherType::Ipv4 => {
                // Peel AKD responses out of the UDP stream ourselves; all
                // other IPv4 traffic flows to the normal stack.
                let Ok(pkt) = arpshield_packet::Ipv4Packet::parse(&eth.payload) else {
                    return FrameVerdict::Continue;
                };
                if pkt.protocol != arpshield_packet::IpProtocol::Udp {
                    return FrameVerdict::Continue;
                }
                let Ok(dgram) =
                    arpshield_packet::UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst)
                else {
                    return FrameVerdict::Continue;
                };
                if dgram.src_port == AKD_PORT && dgram.dst_port == CLIENT_PORT {
                    self.handle_akd_response(api, &dgram.payload);
                    return FrameVerdict::Consumed;
                }
                FrameVerdict::Continue
            }
            _ => FrameVerdict::Continue,
        }
    }
}

/// The AKD service, run as an [`App`] on the key-distributor host.
#[derive(Debug)]
pub struct AkdApp {
    akd: Rc<RefCell<Akd>>,
    keypair: KeyPair,
    log: AlertLog,
    /// Lookups answered.
    pub served: u64,
}

impl AkdApp {
    /// Creates the service around a shared registry, signing responses
    /// with the AKD keypair.
    pub fn new(akd: Rc<RefCell<Akd>>, keypair: KeyPair, log: AlertLog) -> Self {
        AkdApp { akd, keypair, log, served: 0 }
    }
}

impl App for AkdApp {
    fn name(&self) -> &str {
        "akd"
    }

    fn on_udp(
        &mut self,
        api: &mut HostApi<'_, '_>,
        src: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) {
        if dst_port != AKD_PORT || payload.len() < 5 || payload[0] != MSG_LOOKUP {
            return;
        }
        self.log.add_work(SCHEME, work::KEY_LOOKUP);
        let ip = Ipv4Addr::new(payload[1], payload[2], payload[3], payload[4]);
        let response = match self.akd.borrow_mut().lookup(u32::from(ip.to_u32())) {
            Ok(key) => {
                let mut msg = vec![MSG_KEY];
                msg.extend_from_slice(&ip.octets());
                msg.extend_from_slice(&key.to_bytes());
                msg.extend_from_slice(&api.now().as_nanos().to_be_bytes());
                api.add_work(work::SIGN);
                let sig = self.keypair.sign(&msg);
                msg.extend_from_slice(&sig.to_bytes());
                msg
            }
            Err(_) => {
                let mut msg = vec![MSG_UNKNOWN];
                msg.extend_from_slice(&ip.octets());
                msg
            }
        };
        self.served += 1;
        api.send_udp(src, AKD_PORT, src_port, response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_message_layout() {
        let arp = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let body = arp.encode();
        let m = signed_reply_message(&body, 0x1122_3344_5566_7788);
        assert_eq!(m.len(), ARP_WIRE_LEN + 8);
        assert_eq!(&m[..ARP_WIRE_LEN], &body[..]);
        assert_eq!(&m[ARP_WIRE_LEN..], &0x1122_3344_5566_7788u64.to_be_bytes());
    }

    #[test]
    fn signature_binds_body_and_time() {
        let kp = KeyPair::from_seed(1);
        let arp = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let reply = ArpPacket::reply_to(&arp, MacAddr::from_index(2));
        let m1 = signed_reply_message(&reply.encode(), 1000);
        let sig = kp.sign(&m1);
        assert!(kp.public_key().verify(&m1, &sig).is_ok());
        // Different timestamp -> different message -> signature fails.
        let m2 = signed_reply_message(&reply.encode(), 2000);
        assert!(kp.public_key().verify(&m2, &sig).is_err());
    }

    // Network behaviour (signed resolution end-to-end, forged replies
    // failing, AKD round trips) is exercised in `tests/schemes.rs`.
}
