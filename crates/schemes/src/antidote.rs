//! The kernel-hardening hooks: Anticap and Antidote.

use std::collections::HashMap;
use std::time::Duration;

use arpshield_host::{ArpVerdict, HostApi, HostHook};
use arpshield_packet::{ArpOp, ArpPacket, EthernetFrame, Ipv4Addr, MacAddr};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

/// Anticap-style kernel filter: drop ARP replies this host never asked
/// for.
///
/// Prevention, not detection — rejected replies simply vanish, exactly as
/// the kernel patch behaves. The weaknesses the analysis attributes to it
/// are reproduced: it breaks legitimate gratuitous updates, and the
/// reply-race variant sails through because the forged reply *is*
/// solicited.
#[derive(Debug)]
pub struct AnticapHook {
    log: AlertLog,
    /// Replies dropped.
    pub dropped: u64,
}

const SCHEME_ANTICAP: &str = "anticap";

impl AnticapHook {
    /// Creates the hook, reporting drops into `log`.
    pub fn new(log: AlertLog) -> Self {
        AnticapHook { log, dropped: 0 }
    }
}

impl HostHook for AnticapHook {
    fn name(&self) -> &str {
        SCHEME_ANTICAP
    }

    fn on_arp_rx(
        &mut self,
        api: &mut HostApi<'_, '_>,
        _eth: &EthernetFrame,
        arp: &ArpPacket,
    ) -> ArpVerdict {
        api.add_work(work::INSPECT);
        if arp.op == ArpOp::Reply && !api.is_resolving(arp.sender_ip) {
            self.dropped += 1;
            self.log.raise(Alert {
                at: api.now(),
                scheme: SCHEME_ANTICAP,
                kind: AlertKind::UnsolicitedReply,
                subject_ip: Some(arp.sender_ip),
                observed_mac: Some(arp.sender_mac),
                expected_mac: None,
            });
            return ArpVerdict::Drop;
        }
        ArpVerdict::Continue
    }
}

const SCHEME_ANTIDOTE: &str = "antidote";
const PROBE_WINDOW: Duration = Duration::from_millis(300);

#[derive(Debug)]
struct Takeover {
    challenger: MacAddr,
    /// Incumbent probes still to re-issue before accepting the
    /// challenger on silence.
    retries_left: u32,
}

/// Antidote-style kernel patch: before letting a reply *replace* an
/// existing binding, probe the previously known MAC. If the old station
/// still answers, the replacement is rejected (and the new claimant
/// presumed an attacker); if it stays silent, the change is accepted.
///
/// Catches rebinding attacks even when solicited — but cannot protect an
/// entry that never existed (first-contact forgery), and a patient
/// attacker who waits for the victim's cache to empty wins anyway. Both
/// weaknesses are visible in the coverage matrix.
#[derive(Debug)]
pub struct AntidoteHook {
    log: AlertLog,
    /// Candidate rebinding per IP: the MAC that wants to take over.
    pending: HashMap<Ipv4Addr, Takeover>,
    /// Extra incumbent probes per takeover attempt. 0 reproduces the
    /// classic single-probe patch; lossy links want more, since a lost
    /// probe otherwise hands the binding to the challenger.
    probe_retries: u32,
    /// Rebinding attempts rejected because the old MAC was alive.
    pub rejections: u64,
}

impl AntidoteHook {
    /// Creates the hook, reporting rejections into `log`.
    pub fn new(log: AlertLog) -> Self {
        AntidoteHook { log, pending: HashMap::new(), probe_retries: 0, rejections: 0 }
    }

    /// Enables incumbent-probe re-issue on silent windows (for lossy
    /// links).
    pub fn with_probe_retries(mut self, retries: u32) -> Self {
        self.probe_retries = retries;
        self
    }
}

impl HostHook for AntidoteHook {
    fn name(&self) -> &str {
        SCHEME_ANTIDOTE
    }

    fn on_arp_rx(
        &mut self,
        api: &mut HostApi<'_, '_>,
        _eth: &EthernetFrame,
        arp: &ArpPacket,
    ) -> ArpVerdict {
        api.add_work(work::INSPECT);
        if arp.sender_ip.is_unspecified() {
            return ArpVerdict::Continue;
        }
        let current = api.cache_lookup(arp.sender_ip);
        let Some(old_mac) = current else {
            return ArpVerdict::Continue; // no incumbent to defend
        };
        if arp.sender_mac == old_mac {
            // The incumbent speaks. If a takeover probe was in flight,
            // the old station is alive — reject the challenger.
            if let Some(takeover) = self.pending.remove(&arp.sender_ip) {
                self.rejections += 1;
                self.log.raise(Alert {
                    at: api.now(),
                    scheme: SCHEME_ANTIDOTE,
                    kind: AlertKind::ReplaceRejected,
                    subject_ip: Some(arp.sender_ip),
                    observed_mac: Some(takeover.challenger),
                    expected_mac: Some(old_mac),
                });
            }
            return ArpVerdict::Continue;
        }
        // A different MAC wants the binding.
        if self.pending.contains_key(&arp.sender_ip) {
            return ArpVerdict::Drop; // probe already in flight; hold the line
        }
        self.pending.insert(
            arp.sender_ip,
            Takeover { challenger: arp.sender_mac, retries_left: self.probe_retries },
        );
        api.add_work(work::PROBE);
        api.send_arp_probe(arp.sender_ip);
        api.schedule(PROBE_WINDOW, arp.sender_ip.to_u32());
        ArpVerdict::Drop
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, payload: u32) {
        let ip = Ipv4Addr::from_u32(payload);
        // Silence may be a lost probe rather than a dead incumbent:
        // re-probe while retries remain before conceding the binding.
        if let Some(takeover) = self.pending.get_mut(&ip) {
            if takeover.retries_left > 0 {
                takeover.retries_left -= 1;
                api.add_work(work::PROBE);
                api.send_arp_probe(ip);
                api.schedule(PROBE_WINDOW, payload);
                return;
            }
        }
        if let Some(takeover) = self.pending.remove(&ip) {
            // The incumbent stayed silent through every window: accept
            // the new binding (station genuinely moved / NIC replaced).
            api.install_verified_binding(ip, takeover.challenger);
        }
    }
}

#[cfg(test)]
mod tests {
    // The hooks' interesting behaviour requires live hosts exchanging
    // frames; covered in the crate integration tests (`tests/schemes.rs`)
    // and the coverage-matrix experiment.
}
