//! DHCP snooping + Dynamic ARP Inspection, as a switch ingress filter.
//!
//! The switch watches DHCP traffic on trusted ports to learn which
//! `(IP, MAC)` leases are legitimate, then validates the sender fields of
//! every ARP packet arriving on untrusted ports against that table.
//! Forged bindings never cross the switch — prevention at the fabric —
//! but only where the fabric supports it, and only for hosts whose
//! bindings the switch can learn (DHCP leases or static entries).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use arpshield_netsim::{FrameInspector, InspectVerdict, PortId, SimTime, VlanId};
use arpshield_packet::{
    ArpPacket, DhcpMessage, DhcpMessageType, EtherType, EthernetView, IpProtocol, Ipv4Addr,
    Ipv4Packet, MacAddr, UdpDatagram, DHCP_CLIENT_PORT, DHCP_SERVER_PORT,
};
use arpshield_trace::profile;

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

const SCHEME: &str = "dai";

/// DAI configuration.
#[derive(Debug, Clone)]
pub struct DaiConfig {
    /// Ports exempt from validation (uplinks, the DHCP server port).
    pub trusted_ports: HashSet<PortId>,
    /// Statically configured `(vlan, ip, mac)` bindings for non-DHCP
    /// hosts. VID 0 is the untagged domain of a VLAN-unaware switch.
    pub static_bindings: Vec<(VlanId, Ipv4Addr, MacAddr)>,
    /// Drop DHCP *server* messages (OFFER/ACK/NAK) arriving on untrusted
    /// ports — the rogue-DHCP-server guard that real DHCP snooping
    /// provides.
    pub block_untrusted_dhcp_servers: bool,
}

impl DaiConfig {
    /// A typical deployment: `trusted` ports uplink to infrastructure.
    pub fn new(trusted: impl IntoIterator<Item = PortId>) -> Self {
        DaiConfig {
            trusted_ports: trusted.into_iter().collect(),
            static_bindings: Vec::new(),
            block_untrusted_dhcp_servers: true,
        }
    }

    /// Adds a static binding for a non-DHCP host in the untagged (VID 0)
    /// domain.
    pub fn with_static(self, ip: Ipv4Addr, mac: MacAddr) -> Self {
        self.with_static_on(0, ip, mac)
    }

    /// Adds a static binding scoped to one VLAN.
    pub fn with_static_on(mut self, vlan: VlanId, ip: Ipv4Addr, mac: MacAddr) -> Self {
        self.static_bindings.push((vlan, ip, mac));
        self
    }
}

/// The snooping/inspection engine, installed into a
/// [`Switch`](arpshield_netsim::Switch) via
/// [`Switch::set_inspector`](arpshield_netsim::Switch::set_inspector).
#[derive(Debug)]
pub struct DaiInspector {
    config: DaiConfig,
    log: AlertLog,
    /// Bindings keyed per VLAN: a lease snooped on VLAN A says nothing
    /// about VLAN B, exactly as on real hardware where the snooping
    /// database is `(vlan, ip) -> mac`.
    bindings: Rc<RefCell<HashMap<(VlanId, Ipv4Addr), MacAddr>>>,
    /// Leases learned by snooping.
    pub snooped: u64,
    /// Frames denied.
    pub denied: u64,
}

impl DaiInspector {
    /// Creates an inspector reporting into `log`.
    pub fn new(config: DaiConfig, log: AlertLog) -> Self {
        let bindings: HashMap<(VlanId, Ipv4Addr), MacAddr> =
            config.static_bindings.iter().map(|&(vlan, ip, mac)| ((vlan, ip), mac)).collect();
        DaiInspector {
            config,
            log,
            bindings: Rc::new(RefCell::new(bindings)),
            snooped: 0,
            denied: 0,
        }
    }

    /// A shared handle onto the live `(vlan, ip) -> mac` binding table.
    pub fn table(&self) -> Rc<RefCell<HashMap<(VlanId, Ipv4Addr), MacAddr>>> {
        Rc::clone(&self.bindings)
    }

    fn deny(
        &mut self,
        now: SimTime,
        kind: AlertKind,
        vlan: VlanId,
        ip: Ipv4Addr,
        mac: MacAddr,
        reason: &str,
    ) -> InspectVerdict {
        self.denied += 1;
        self.log.raise(Alert {
            at: now,
            scheme: SCHEME,
            kind,
            subject_ip: Some(ip),
            observed_mac: Some(mac),
            expected_mac: self.bindings.borrow().get(&(vlan, ip)).copied(),
        });
        InspectVerdict::Deny { reason: reason.to_string() }
    }

    fn snoop_dhcp(
        &mut self,
        eth: &EthernetView<'_>,
        trusted: bool,
        vlan: VlanId,
        now: SimTime,
    ) -> Option<InspectVerdict> {
        let pkt = Ipv4Packet::parse(eth.payload()).ok()?;
        if pkt.protocol != IpProtocol::Udp {
            return None;
        }
        let dgram = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst).ok()?;
        let is_server_msg =
            dgram.src_port == DHCP_SERVER_PORT || dgram.dst_port == DHCP_CLIENT_PORT;
        let is_client_msg = dgram.dst_port == DHCP_SERVER_PORT;
        if !is_server_msg && !is_client_msg {
            return None;
        }
        let msg = DhcpMessage::parse(&dgram.payload).ok()?;
        if is_server_msg && !trusted && self.config.block_untrusted_dhcp_servers {
            return Some(self.deny(
                now,
                AlertKind::DaiViolation,
                vlan,
                pkt.src,
                eth.src(),
                "dhcp server message on untrusted port",
            ));
        }
        if trusted
            && msg.message_type() == Some(DhcpMessageType::Ack)
            && !msg.yiaddr.is_unspecified()
        {
            self.bindings.borrow_mut().insert((vlan, msg.yiaddr), msg.chaddr);
            self.snooped += 1;
        }
        if msg.message_type() == Some(DhcpMessageType::Release) {
            // Trust releases only when the lease matches the releasing MAC.
            let matches = self
                .bindings
                .borrow()
                .get(&(vlan, msg.ciaddr))
                .map(|m| *m == msg.chaddr)
                .unwrap_or(false);
            if matches {
                self.bindings.borrow_mut().remove(&(vlan, msg.ciaddr));
            }
        }
        None
    }
}

impl FrameInspector for DaiInspector {
    fn inspect(
        &mut self,
        now: SimTime,
        ingress: PortId,
        vlan: VlanId,
        eth: &EthernetView<'_>,
    ) -> InspectVerdict {
        let _s = profile::span("dai.inspect");
        let trusted = self.config.trusted_ports.contains(&ingress);
        match eth.ethertype() {
            EtherType::Ipv4 => {
                self.log.add_work(SCHEME, work::INSPECT);
                if let Some(verdict) = self.snoop_dhcp(eth, trusted, vlan, now) {
                    return verdict;
                }
                InspectVerdict::Permit
            }
            EtherType::ARP => {
                self.log.add_work(SCHEME, work::INSPECT + work::DB_OP);
                if trusted {
                    return InspectVerdict::Permit;
                }
                let Ok(arp) = ArpPacket::parse(eth.payload()) else {
                    return InspectVerdict::Deny { reason: "unparseable arp".into() };
                };
                if arp.sender_ip.is_unspecified() {
                    return InspectVerdict::Permit; // probes carry no claim
                }
                let bound = self.bindings.borrow().get(&(vlan, arp.sender_ip)).copied();
                match bound {
                    Some(mac) if mac == arp.sender_mac && eth.src() == arp.sender_mac => {
                        InspectVerdict::Permit
                    }
                    Some(_) => self.deny(
                        now,
                        AlertKind::DaiViolation,
                        vlan,
                        arp.sender_ip,
                        arp.sender_mac,
                        "arp sender does not match binding table",
                    ),
                    None => self.deny(
                        now,
                        AlertKind::DaiViolation,
                        vlan,
                        arp.sender_ip,
                        arp.sender_mac,
                        "no binding for arp sender",
                    ),
                }
            }
            _ => InspectVerdict::Permit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_packet::EthernetFrame;

    fn arp_frame(src: MacAddr, sender_ip: Ipv4Addr, sender_mac: MacAddr) -> Vec<u8> {
        let arp = ArpPacket::request(sender_mac, sender_ip, Ipv4Addr::new(10, 0, 0, 99));
        let mut arp = arp;
        arp.sender_mac = sender_mac;
        EthernetFrame::new(MacAddr::BROADCAST, src, EtherType::ARP, arp.encode()).encode()
    }

    fn view(bytes: &[u8]) -> EthernetView<'_> {
        EthernetView::parse(bytes).unwrap()
    }

    const IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 5);

    fn inspector() -> (DaiInspector, AlertLog) {
        let log = AlertLog::new();
        let config = DaiConfig::new([PortId(0)]).with_static(IP, MacAddr::from_index(5));
        (DaiInspector::new(config, log.clone()), log)
    }

    #[test]
    fn matching_binding_permits() {
        let (mut dai, log) = inspector();
        let frame = arp_frame(MacAddr::from_index(5), IP, MacAddr::from_index(5));
        assert_eq!(dai.inspect(SimTime::ZERO, PortId(1), 0, &view(&frame)), InspectVerdict::Permit);
        assert!(log.is_empty());
    }

    #[test]
    fn forged_binding_denied() {
        let (mut dai, log) = inspector();
        let frame = arp_frame(MacAddr::from_index(66), IP, MacAddr::from_index(66));
        assert!(matches!(
            dai.inspect(SimTime::ZERO, PortId(1), 0, &view(&frame)),
            InspectVerdict::Deny { .. }
        ));
        assert_eq!(log.alerts()[0].kind, AlertKind::DaiViolation);
        assert_eq!(log.alerts()[0].expected_mac, Some(MacAddr::from_index(5)));
        assert_eq!(dai.denied, 1);
    }

    #[test]
    fn l2_spoof_of_valid_binding_denied() {
        let (mut dai, _log) = inspector();
        // Correct ARP fields but the frame's L2 source is someone else.
        let frame = arp_frame(MacAddr::from_index(66), IP, MacAddr::from_index(5));
        assert!(matches!(
            dai.inspect(SimTime::ZERO, PortId(1), 0, &view(&frame)),
            InspectVerdict::Deny { .. }
        ));
    }

    #[test]
    fn unknown_binding_denied_probes_permitted() {
        let (mut dai, _) = inspector();
        let unknown =
            arp_frame(MacAddr::from_index(9), Ipv4Addr::new(10, 0, 0, 9), MacAddr::from_index(9));
        assert!(matches!(
            dai.inspect(SimTime::ZERO, PortId(1), 0, &view(&unknown)),
            InspectVerdict::Deny { .. }
        ));
        let probe =
            arp_frame(MacAddr::from_index(9), Ipv4Addr::UNSPECIFIED, MacAddr::from_index(9));
        assert_eq!(dai.inspect(SimTime::ZERO, PortId(1), 0, &view(&probe)), InspectVerdict::Permit);
    }

    #[test]
    fn trusted_port_bypasses() {
        let (mut dai, log) = inspector();
        let forged = arp_frame(MacAddr::from_index(66), IP, MacAddr::from_index(66));
        assert_eq!(
            dai.inspect(SimTime::ZERO, PortId(0), 0, &view(&forged)),
            InspectVerdict::Permit
        );
        assert!(log.is_empty());
    }

    #[test]
    fn bindings_are_scoped_per_vlan() {
        // The binding for IP lives on VLAN 10 only.
        let log = AlertLog::new();
        let config = DaiConfig::new([PortId(0)]).with_static_on(10, IP, MacAddr::from_index(5));
        let mut dai = DaiInspector::new(config, log.clone());
        let frame = arp_frame(MacAddr::from_index(5), IP, MacAddr::from_index(5));
        // The genuine claim validates on its own VLAN...
        assert_eq!(
            dai.inspect(SimTime::ZERO, PortId(1), 10, &view(&frame)),
            InspectVerdict::Permit
        );
        // ...but the identical frame on VLAN 20 finds no binding there:
        // a lease on one VLAN must not validate ARP on another.
        assert!(matches!(
            dai.inspect(SimTime::ZERO, PortId(1), 20, &view(&frame)),
            InspectVerdict::Deny { .. }
        ));
        assert_eq!(dai.denied, 1);
        assert_eq!(log.alerts()[0].expected_mac, None, "no cross-VLAN expectation leaked");
    }

    // DHCP snooping behaviour (lease learning, rogue-server blocking) is
    // exercised in the crate integration tests with live DHCP traffic.
}
