//! Running a scheme as a standalone online detector.
//!
//! The simulator evaluates every scheme inside a full LAN; this module
//! flips the direction: frames come from *outside* (a pcapng capture, a
//! pipe) and a [`Detector`] drives one scheme's inspection surface
//! frame-by-frame — the shape of Barbhuiya et al.'s host-based ARP IDS,
//! with arpshield's schemes as the interchangeable engine.
//!
//! Built on the PR-3 factory: [`SchemeKind::instantiate`] runs against a
//! *blank* [`LanPlan`] (no gateway, no host inventory — a detector
//! parachuted into an unknown LAN), and whatever monitors and inspectors
//! the installation declares are driven through a
//! [`StandaloneDriver`] per monitor. Schemes whose mechanism lives in
//! host stacks or switch fabric (static ARP, Anticap/Antidote, S-ARP,
//! TARP, port security) have no single-vantage inspection surface and
//! are rejected up front.
//!
//! DAI is a special case: its inspector normally sits in a switch with
//! trusted and untrusted ports. Standalone, IPv4 traffic is presented on
//! a *trusted* port (so DHCP snooping learns leases from the capture,
//! as if mirrored from the server uplink) and ARP on an *untrusted*
//! port (so sender claims are validated against the snooped table).
//!
//! Alerts, verdict counters, and work units flow through the same
//! [`AlertLog`]/`Tracer` machinery as a live run, so re-ingesting a
//! simulator capture from a monitor's vantage point reproduces the live
//! run's verdict counters exactly.

use std::collections::BTreeMap;

use arpshield_netsim::{Device, FrameInspector, InspectVerdict, PortId, SimTime, StandaloneDriver};
use arpshield_packet::{EtherType, EthernetView, ETHERNET_MAX_PAYLOAD};
use arpshield_trace::profile;
use arpshield_trace::{FrameKind, Tracer};

use crate::alert::{Alert, AlertLog};
use crate::factory::{LanPlan, SchemeResources};
use crate::SchemeKind;

/// Port the DAI inspector trusts (IPv4/DHCP snooping side).
const TRUSTED_PORT: PortId = PortId(0);
/// Port the DAI inspector validates (ARP side).
const UNTRUSTED_PORT: PortId = PortId(1);
/// Base seed for per-monitor deterministic randomness.
const DRIVER_SEED: u64 = 0x1D_E7EC_70;
/// How far past the last frame [`Detector::finish`] advances the clock,
/// closing probe windows that straddle the capture's end.
const FINISH_GRACE: std::time::Duration = std::time::Duration::from_secs(1);

/// Counters the ingest path keeps per detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames offered via [`Detector::observe`].
    pub frames: u64,
    /// Their total length in bytes.
    pub bytes: u64,
    /// Frames carrying ARP (including the S-ARP/TARP variants).
    pub arp: u64,
    /// Well-formed frames of any other ethertype.
    pub non_arp: u64,
    /// Frames that carried an 802.1Q/802.1ad tag.
    pub vlan_tagged: u64,
    /// Frames whose payload exceeds the standard MTU (processed anyway).
    pub jumbo: u64,
    /// Frames skipped because even lenient Ethernet parsing failed.
    pub unparseable: u64,
    /// Frames an inspector (DAI) would have dropped at the fabric.
    pub denied: u64,
    /// Frames the scheme tried to transmit (active probes). They go
    /// nowhere — there is no wire — but are counted as the scheme's
    /// on-LAN footprint.
    pub probes_emitted: u64,
    /// Scheme timers fired between frames.
    pub timers_fired: u64,
}

/// One scheme instance fed frame-by-frame from an external source.
pub struct Detector {
    kind: SchemeKind,
    alerts: AlertLog,
    tracer: Tracer,
    monitors: Vec<(Box<dyn Device>, StandaloneDriver)>,
    inspector: Option<Box<dyn FrameInspector>>,
    stats: IngestStats,
    last_at: SimTime,
    finished: bool,
}

impl std::fmt::Debug for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Detector")
            .field("kind", &self.kind)
            .field("monitors", &self.monitors.len())
            .field("has_inspector", &self.inspector.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Detector {
    /// Instantiates `kind` as a standalone detector with a disabled
    /// tracer (counters and provenance off; alerts still collected).
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for schemes with no single-vantage
    /// inspection surface — see [`Detector::supported`].
    pub fn new(kind: SchemeKind) -> Result<Self, String> {
        Self::with_tracer(kind, Tracer::disabled())
    }

    /// Like [`Detector::new`], but alerts raise verdict counters and
    /// provenance events through `tracer`, exactly as a live run would.
    pub fn with_tracer(kind: SchemeKind, tracer: Tracer) -> Result<Self, String> {
        let alerts = AlertLog::new();
        alerts.set_tracer(tracer.clone());
        let mut resources = SchemeResources::new(Self::blank_plan(), alerts.clone());
        let installation = kind.instantiate(&mut resources);
        if installation.monitors.is_empty() && installation.inspector.is_none() {
            return Err(format!(
                "scheme '{kind}' has no standalone inspection surface (its mechanism lives in \
                 host stacks or switch fabric); supported schemes: {}",
                Self::supported().iter().map(|k| k.label()).collect::<Vec<_>>().join(", ")
            ));
        }
        let monitors = installation
            .monitors
            .into_iter()
            .enumerate()
            .map(|(index, device)| {
                let mut driver = StandaloneDriver::new(DRIVER_SEED + index as u64);
                let mut device = device;
                driver.start(device.as_mut());
                (device, driver)
            })
            .collect();
        Ok(Detector {
            kind,
            alerts,
            tracer,
            monitors,
            inspector: installation.inspector,
            stats: IngestStats::default(),
            last_at: SimTime::ZERO,
            finished: false,
        })
    }

    /// The plan a detector deploys against: an unknown LAN. No gateway
    /// or host inventory (nothing to whitelist), no trusted ports, a
    /// locally-administered probe source MAC.
    fn blank_plan() -> LanPlan {
        LanPlan {
            gateway: (arpshield_packet::Ipv4Addr::UNSPECIFIED, arpshield_packet::MacAddr::ZERO),
            hosts: Vec::new(),
            akd: (arpshield_packet::Ipv4Addr::UNSPECIFIED, arpshield_packet::MacAddr::ZERO),
            trusted_ports: vec![TRUSTED_PORT],
            probe_source_mac: arpshield_packet::MacAddr::from_index(0x00D7_EC70),
            tarp_lta_seed: 0x7A59,
            akd_key_seed: 0xA4D,
            ticket_lifetime: SimTime::from_secs(86_400),
            sarp_max_age: std::time::Duration::from_secs(5),
            hardening: Default::default(),
        }
    }

    /// Scheme kinds [`Detector::new`] accepts: the network-monitor and
    /// fabric-inspection classes.
    pub fn supported() -> Vec<SchemeKind> {
        SchemeKind::all().into_iter().filter(|kind| Self::is_supported(*kind)).collect()
    }

    /// Whether `kind` has a standalone inspection surface.
    pub fn is_supported(kind: SchemeKind) -> bool {
        matches!(
            kind,
            SchemeKind::Passive
                | SchemeKind::Stateful
                | SchemeKind::ActiveProbe
                | SchemeKind::RateMonitor
                | SchemeKind::Hybrid
                | SchemeKind::Dai
        )
    }

    /// The scheme this detector runs.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Feeds one frame observed at `at` with anonymous provenance.
    pub fn observe(&mut self, at: SimTime, bytes: &[u8]) {
        self.observe_from(at, bytes, "wire", "detector");
    }

    /// Feeds one frame, attributing it to `src`/`dst` endpoints in the
    /// capture provenance (used when re-ingesting an arpshield capture,
    /// which records both). The endpoint strings are only materialized
    /// when a flight recorder is armed.
    pub fn observe_from(&mut self, at: SimTime, bytes: &[u8], src: &str, dst: &str) {
        let _s = profile::span("ingest.observe");
        self.stats.frames += 1;
        self.stats.bytes += bytes.len() as u64;
        self.last_at = self.last_at.max(at);
        let view = match EthernetView::parse(bytes) {
            Ok(view) => view,
            Err(_) => {
                self.stats.unparseable += 1;
                return;
            }
        };
        if view.vlan().is_some() {
            self.stats.vlan_tagged += 1;
        }
        if view.payload().len() > ETHERNET_MAX_PAYLOAD {
            self.stats.jumbo += 1;
        }
        match view.ethertype() {
            EtherType::ARP | EtherType::SArp | EtherType::Tarp => self.stats.arp += 1,
            _ => self.stats.non_arp += 1,
        }
        // Same provenance protocol as the simulator: record the frame,
        // mark it current so verdicts cite it, dispatch, unmark.
        let frame_id = self.tracer.record_frame(at.as_nanos(), FrameKind::Delivered, bytes, || {
            (src.to_string(), dst.to_string())
        });
        self.tracer.set_current_frame(frame_id);
        for (device, driver) in &mut self.monitors {
            driver.deliver(device.as_mut(), at, PortId(0), bytes);
        }
        let now = self.monitor_now(at);
        if let Some(inspector) = &mut self.inspector {
            // Borrowed lenient parse straight over the capture bytes —
            // the same zero-copy view contract the in-switch fast path
            // hands its inspector.
            if let Ok(eth) = EthernetView::parse(bytes) {
                let port =
                    if eth.ethertype() == EtherType::ARP { UNTRUSTED_PORT } else { TRUSTED_PORT };
                // Captures carry the wire tag (if any); untagged traffic
                // lands in the VID-0 domain, matching the switch contract.
                let vlan = eth.vlan().unwrap_or(0);
                if let InspectVerdict::Deny { .. } = inspector.inspect(now, port, vlan, &eth) {
                    self.stats.denied += 1;
                }
            }
        }
        self.tracer.set_current_frame(None);
        self.collect_driver_effects();
    }

    /// The monotonic clock frames are dispatched at (drivers refuse to
    /// move backwards on unsorted captures).
    fn monitor_now(&self, at: SimTime) -> SimTime {
        self.monitors.iter().map(|(_, driver)| driver.now()).max().unwrap_or(at).max(at)
    }

    fn collect_driver_effects(&mut self) {
        for (_, driver) in &mut self.monitors {
            self.stats.probes_emitted += driver.drain_sends().count() as u64;
        }
    }

    /// Closes out the stream: advances scheme clocks a grace period past
    /// the last frame (judging probe windows still open at end of
    /// capture) and flushes ingest counters to the tracer. Idempotent.
    pub fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            let deadline = self.last_at.checked_add(FINISH_GRACE).unwrap_or(self.last_at);
            for (device, driver) in &mut self.monitors {
                driver.advance_to(device.as_mut(), deadline);
            }
            self.collect_driver_effects();
        }
        self.stats.timers_fired = self.monitors.iter().map(|(_, driver)| driver.timers_fired).sum();
        let stats = self.stats;
        let flush = |name: &'static str, value: u64| {
            if value > 0 {
                self.tracer.count(name, value);
            }
        };
        flush("ingest.frames", stats.frames);
        flush("ingest.bytes", stats.bytes);
        flush("ingest.frames.arp", stats.arp);
        flush("ingest.frames.non_arp", stats.non_arp);
        flush("ingest.frames.vlan_tagged", stats.vlan_tagged);
        flush("ingest.frames.jumbo", stats.jumbo);
        flush("ingest.skip.unparseable", stats.unparseable);
        flush("ingest.denied", stats.denied);
        flush("ingest.probes_emitted", stats.probes_emitted);
        flush("ingest.timers_fired", stats.timers_fired);
    }

    /// Counters so far. [`IngestStats::timers_fired`] settles after
    /// [`finish`](Self::finish).
    pub fn stats(&self) -> IngestStats {
        let mut stats = self.stats;
        stats.timers_fired = self.monitors.iter().map(|(_, driver)| driver.timers_fired).sum();
        stats
    }

    /// Every alert the scheme raised, in order.
    pub fn alerts(&self) -> Vec<Alert> {
        self.alerts.alerts()
    }

    /// Alert counts keyed by verdict label — the per-scheme histogram
    /// the ingest summary prints.
    pub fn verdict_histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut histogram = BTreeMap::new();
        for alert in self.alerts.alerts() {
            *histogram.entry(alert.kind.label()).or_insert(0) += 1;
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlertKind;
    use arpshield_packet::{ArpOp, ArpPacket, EthernetFrame, Ipv4Addr, MacAddr};

    fn arp_frame(sender_mac: MacAddr, sender_ip: Ipv4Addr) -> Vec<u8> {
        let arp = ArpPacket::gratuitous(ArpOp::Reply, sender_mac, sender_ip);
        EthernetFrame::new(MacAddr::BROADCAST, sender_mac, EtherType::ARP, arp.encode()).encode()
    }

    #[test]
    fn every_supported_kind_constructs_and_the_rest_explain_why_not() {
        for kind in SchemeKind::all() {
            match Detector::new(kind) {
                Ok(_) => {
                    assert!(Detector::is_supported(kind), "{kind} unexpectedly constructed")
                }
                Err(message) => {
                    assert!(!Detector::is_supported(kind), "{kind} unexpectedly rejected");
                    assert!(message.contains("passive"), "error lists alternatives: {message}");
                }
            }
        }
    }

    #[test]
    fn passive_detector_flags_a_binding_flip() {
        let mut detector = Detector::new(SchemeKind::Passive).unwrap();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        detector.observe(SimTime::from_secs(1), &arp_frame(MacAddr::from_index(1), ip));
        detector.observe(SimTime::from_secs(2), &arp_frame(MacAddr::from_index(66), ip));
        detector.finish();
        let alerts = detector.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::BindingChanged);
        assert_eq!(detector.verdict_histogram().get("binding_changed"), Some(&1));
        let stats = detector.stats();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.arp, 2);
        assert_eq!(stats.unparseable, 0);
    }

    #[test]
    fn vlan_tagged_arp_is_inspected_not_opaque() {
        let mut detector = Detector::new(SchemeKind::Passive).unwrap();
        let ip = Ipv4Addr::new(10, 0, 0, 9);
        let tagged = |mac: MacAddr| {
            let arp = ArpPacket::gratuitous(ArpOp::Reply, mac, ip);
            EthernetFrame::new(MacAddr::BROADCAST, mac, EtherType::ARP, arp.encode())
                .with_vlan(100)
                .encode()
        };
        detector.observe(SimTime::from_secs(1), &tagged(MacAddr::from_index(1)));
        detector.observe(SimTime::from_secs(2), &tagged(MacAddr::from_index(66)));
        detector.finish();
        assert_eq!(detector.stats().vlan_tagged, 2);
        assert_eq!(detector.alerts().len(), 1, "the flip is seen through the tag");
    }

    #[test]
    fn garbage_and_jumbo_frames_are_counted_not_fatal() {
        let mut detector = Detector::new(SchemeKind::Stateful).unwrap();
        detector.observe(SimTime::from_secs(1), &[0u8; 5]); // runt
        let jumbo = EthernetFrame::new(
            MacAddr::ZERO,
            MacAddr::from_index(3),
            EtherType::Ipv4,
            vec![0; 3000],
        )
        .encode();
        detector.observe(SimTime::from_secs(2), &jumbo);
        detector.finish();
        let stats = detector.stats();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.unparseable, 1);
        assert_eq!(stats.jumbo, 1);
    }

    #[test]
    fn active_probe_emits_probes_and_judges_at_finish() {
        let mut detector = Detector::new(SchemeKind::ActiveProbe).unwrap();
        let ip = Ipv4Addr::new(10, 0, 0, 5);
        detector.observe(SimTime::from_secs(1), &arp_frame(MacAddr::from_index(1), ip));
        // A second MAC claims the same IP inside the first probe window.
        detector.observe(SimTime::from_millis(1010), &arp_frame(MacAddr::from_index(66), ip));
        detector.finish();
        let stats = detector.stats();
        assert!(stats.probes_emitted >= 1, "claims trigger probes: {stats:?}");
        assert!(stats.timers_fired >= 1, "probe windows close at finish: {stats:?}");
    }

    #[test]
    fn dai_detector_snoops_nothing_and_denies_unknown_claims() {
        let mut detector = Detector::new(SchemeKind::Dai).unwrap();
        detector.observe(
            SimTime::from_secs(1),
            &arp_frame(MacAddr::from_index(5), Ipv4Addr::new(10, 0, 0, 5)),
        );
        detector.finish();
        assert_eq!(detector.stats().denied, 1, "no snooped lease, claim denied");
        assert_eq!(detector.alerts()[0].kind, AlertKind::DaiViolation);
    }
}
