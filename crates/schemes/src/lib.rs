//! The detection and prevention schemes the paper analyzes, implemented
//! against the simulated LAN.
//!
//! Each scheme in the survey maps to a concrete mechanism here:
//!
//! | Scheme | Literature exemplar | Mechanism |
//! |---|---|---|
//! | [`StaticArp`](static_arp) | manual `arp -s` | static cache entries + static-only policy |
//! | [`PassiveMonitor`] | arpwatch | mirror-port DB of IP↔MAC pairs, alert on change |
//! | [`ActiveProbeMonitor`] | XArp, ArpON | probe suspicious claims with RFC 5227 ARP probes |
//! | [`StatefulMonitor`] | Snort ARP preprocessor | request/reply matching, unsolicited-reply detection |
//! | [`AnticapHook`] / [`AntidoteHook`] | Anticap, Antidote kernel patches | host-side reply filtering / probe-before-replace |
//! | [`SArpHook`] + [`AkdApp`] | S-ARP | signed replies, key distributor, verified-only cache |
//! | [`dai::DaiInspector`] | Cisco DHCP snooping + Dynamic ARP Inspection | switch-level ARP validation against a snooped binding table |
//! | [`TarpHook`] + [`Ticket`] | TARP | LTA-signed tickets on replies; verify-only clients |
//! | [`RateMonitor`] | threshold IDS | sliding-window counters for flooding/starvation/scans |
//! | port security | Cisco port security | per-port MAC limits (in `arpshield-netsim`) |
//!
//! Detections flow into a shared [`AlertLog`]; per-scheme CPU cost is
//! charged in abstract work units through the same log, so experiments
//! can compare overheads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active_probe;
mod alert;
mod antidote;
pub mod dai;
mod descriptor;
mod detector;
mod factory;
mod passive;
mod rate;
pub mod sarp;
mod stateful;
mod static_arp;
pub mod tarp;

pub use active_probe::{ActiveProbeConfig, ActiveProbeMonitor};
pub use alert::{Alert, AlertKind, AlertLog};
pub use antidote::{AnticapHook, AntidoteHook};
pub use dai::{DaiConfig, DaiInspector};
pub use descriptor::{Activity, DeployCost, Mode, SchemeClass, SchemeDescriptor, SchemeKind};
pub use detector::{Detector, IngestStats};
pub use factory::{
    AuxStation, HostAgentFn, LanPlan, SchemeHardening, SchemeInstallation, SchemeResources,
};
pub use passive::{PassiveConfig, PassiveMonitor};
pub use rate::{RateConfig, RateMonitor};
pub use sarp::{AkdApp, SArpConfig, SArpHook};
pub use stateful::{StatefulConfig, StatefulMonitor};
pub use static_arp::static_arp;
pub use tarp::{TarpConfig, TarpHook, Ticket};

/// Calibrated work-unit costs (the CPU proxy used in the cost analysis).
/// One unit ≈ one packet-header inspection. The signature constants model
/// era-appropriate DSA on commodity hosts (verification ~1.5× the cost of
/// signing, both two to three orders of magnitude above a header
/// inspection — the ratio the S-ARP literature reports). The
/// `sarp_latency` bench measures what this machine's 127-bit toy group
/// actually costs, for comparison; the experiments use these constants so
/// results do not depend on host speed.
pub mod work {
    /// Inspecting one sniffed packet.
    pub const INSPECT: u64 = 1;
    /// One binding-database lookup/insert.
    pub const DB_OP: u64 = 2;
    /// Emitting one active probe.
    pub const PROBE: u64 = 5;
    /// Producing one Schnorr signature.
    pub const SIGN: u64 = 600;
    /// Verifying one Schnorr signature.
    pub const VERIFY: u64 = 900;
    /// One AKD key lookup round trip (server side).
    pub const KEY_LOOKUP: u64 = 10;
}
