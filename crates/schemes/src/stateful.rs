//! Snort-style stateful ARP inspection: match replies to requests.

use std::collections::HashMap;
use std::time::Duration;

use arpshield_netsim::{Device, DeviceCtx, PortId, SimTime};
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetView, Ipv4Addr, MacAddr};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

const SCHEME: &str = "stateful";

/// Stateful monitor knobs.
#[derive(Debug, Clone, Copy)]
pub struct StatefulConfig {
    /// How long an observed request justifies a subsequent reply.
    pub request_window: Duration,
    /// Also keep a binding DB (like the passive monitor) and alert on
    /// changes — catches request-based poisoning that pure reply
    /// matching misses.
    pub track_bindings: bool,
    /// Alert when the Ethernet source differs from the ARP sender MAC —
    /// a classic forgery tell.
    pub check_l2_consistency: bool,
}

impl Default for StatefulConfig {
    fn default() -> Self {
        StatefulConfig {
            request_window: Duration::from_secs(2),
            track_bindings: true,
            check_l2_consistency: true,
        }
    }
}

/// A mirror-port monitor that models the ARP state machine: every reply
/// must answer a recent request, addressed back to the requester.
///
/// This is the detection core of the "middleware"/IDS approach the paper
/// analyzes: stronger than pure passive diffing (it catches unsolicited
/// replies even during the learning window) but still evadable by the
/// reply-race variant, which *is* solicited.
#[derive(Debug)]
pub struct StatefulMonitor {
    config: StatefulConfig,
    log: AlertLog,
    /// Requests seen: (requester ip, target ip) -> (time, requester mac).
    outstanding: HashMap<(Ipv4Addr, Ipv4Addr), (SimTime, MacAddr)>,
    bindings: HashMap<Ipv4Addr, MacAddr>,
    /// ARP packets inspected.
    pub inspected: u64,
}

impl StatefulMonitor {
    /// Creates a monitor reporting into `log`.
    pub fn new(config: StatefulConfig, log: AlertLog) -> Self {
        StatefulMonitor {
            config,
            log,
            outstanding: HashMap::new(),
            bindings: HashMap::new(),
            inspected: 0,
        }
    }

    fn raise(&self, now: SimTime, kind: AlertKind, arp: &ArpPacket, expected: Option<MacAddr>) {
        self.log.raise(Alert {
            at: now,
            scheme: SCHEME,
            kind,
            subject_ip: Some(arp.sender_ip),
            observed_mac: Some(arp.sender_mac),
            expected_mac: expected,
        });
    }

    fn track_binding(&mut self, now: SimTime, ip: Ipv4Addr, mac: MacAddr) {
        if !self.config.track_bindings || ip.is_unspecified() {
            return;
        }
        self.log.add_work(SCHEME, work::DB_OP);
        if let Some(previous) = self.bindings.insert(ip, mac) {
            if previous != mac {
                self.log.raise(Alert {
                    at: now,
                    scheme: SCHEME,
                    kind: AlertKind::BindingChanged,
                    subject_ip: Some(ip),
                    observed_mac: Some(mac),
                    expected_mac: Some(previous),
                });
            }
        }
    }

    fn inspect(&mut self, now: SimTime, l2_src: MacAddr, arp: &ArpPacket) {
        self.inspected += 1;
        self.log.add_work(SCHEME, work::INSPECT);
        if self.config.check_l2_consistency && !arp.sender_mac.is_zero() && l2_src != arp.sender_mac
        {
            self.raise(now, AlertKind::ReplyMismatch, arp, Some(l2_src));
        }
        match arp.op {
            ArpOp::Request => {
                // Probes (unspecified sender) are tracked too: their
                // answers must not read as unsolicited.
                self.outstanding.insert((arp.sender_ip, arp.target_ip), (now, arp.sender_mac));
                self.track_binding(now, arp.sender_ip, arp.sender_mac);
            }
            ArpOp::Reply => {
                // A reply from X to Y answers a request (Y -> X).
                let key = (arp.target_ip, arp.sender_ip);
                let solicited = match self.outstanding.get(&key) {
                    Some((asked_at, _)) => {
                        now.saturating_since(*asked_at) <= self.config.request_window
                    }
                    None => false,
                };
                // The request is deliberately NOT consumed on match: a
                // mirrored or retransmitted duplicate of a legitimate
                // reply must stay solicited. Entries lapse by window.
                if !solicited {
                    self.raise(now, AlertKind::UnsolicitedReply, arp, None);
                }
                self.track_binding(now, arp.sender_ip, arp.sender_mac);
            }
        }
        // Bound state: drop stale outstanding requests opportunistically.
        if self.outstanding.len() > 4096 {
            let window = self.config.request_window;
            self.outstanding.retain(|_, (t, _)| now.saturating_since(*t) <= window);
        }
    }
}

impl Device for StatefulMonitor {
    fn name(&self) -> &str {
        "stateful-monitor"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        let Ok(eth) = EthernetView::parse(frame) else {
            return;
        };
        if eth.ethertype() != EtherType::ARP {
            return;
        }
        let Ok(arp) = ArpPacket::parse(eth.payload()) else {
            return;
        };
        self.inspect(ctx.now(), eth.src(), &arp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> (StatefulMonitor, AlertLog) {
        let log = AlertLog::new();
        (StatefulMonitor::new(StatefulConfig::default(), log.clone()), log)
    }

    fn request(from: u32, from_ip: u8, for_ip: u8) -> ArpPacket {
        ArpPacket::request(
            MacAddr::from_index(from),
            Ipv4Addr::new(10, 0, 0, from_ip),
            Ipv4Addr::new(10, 0, 0, for_ip),
        )
    }

    #[test]
    fn solicited_reply_is_silent() {
        let (mut m, log) = monitor();
        let req = request(1, 1, 2);
        m.inspect(SimTime::from_secs(1), req.sender_mac, &req);
        let reply = ArpPacket::reply_to(&req, MacAddr::from_index(2));
        m.inspect(SimTime::from_millis(1100), reply.sender_mac, &reply);
        assert!(log.is_empty(), "alerts: {:?}", log.alerts());
    }

    #[test]
    fn unsolicited_reply_detected_even_with_empty_db() {
        let (mut m, log) = monitor();
        let forged = ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::from_index(66),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::from_index(2),
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        };
        m.inspect(SimTime::from_secs(5), forged.sender_mac, &forged);
        assert_eq!(log.alerts()[0].kind, AlertKind::UnsolicitedReply);
    }

    #[test]
    fn reply_outside_window_is_unsolicited() {
        let (mut m, log) = monitor();
        let req = request(1, 1, 2);
        m.inspect(SimTime::from_secs(1), req.sender_mac, &req);
        let reply = ArpPacket::reply_to(&req, MacAddr::from_index(2));
        m.inspect(SimTime::from_secs(10), reply.sender_mac, &reply);
        assert_eq!(log.alerts()[0].kind, AlertKind::UnsolicitedReply);
    }

    #[test]
    fn race_variant_evades_reply_matching_but_binding_db_catches_flip() {
        let (mut m, log) = monitor();
        // Victim asks for gw.
        let req = request(2, 2, 1);
        m.inspect(SimTime::from_secs(1), req.sender_mac, &req);
        // Attacker's forged reply wins the race — it is solicited.
        let forged = ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::from_index(66),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::from_index(2),
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        };
        m.inspect(SimTime::from_millis(1010), forged.sender_mac, &forged);
        assert!(log.is_empty(), "solicited forgery passes reply matching");
        // The genuine reply lands second: binding DB flags the flip.
        let genuine = ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::from_index(1),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::from_index(2),
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        };
        m.inspect(SimTime::from_millis(1020), genuine.sender_mac, &genuine);
        let kinds: Vec<_> = log.alerts().iter().map(|a| a.kind).collect();
        // The genuine reply is now "unsolicited" (request consumed) and
        // the binding flip fires: the race is *noticed*, but attribution
        // points at the victim's legitimate gateway — a documented
        // weakness of the approach.
        assert!(kinds.contains(&AlertKind::BindingChanged));
    }

    #[test]
    fn l2_inconsistency_detected() {
        let (mut m, log) = monitor();
        let forged = request(66, 1, 2); // claims sender mac 66...
                                        // ...but the frame is sourced from 99.
        m.inspect(SimTime::from_secs(1), MacAddr::from_index(99), &forged);
        assert!(log.alerts().iter().any(|a| a.kind == AlertKind::ReplyMismatch));
    }

    #[test]
    fn gratuitous_request_poisoning_caught_by_binding_db() {
        let (mut m, log) = monitor();
        let honest = request(1, 1, 2);
        m.inspect(SimTime::from_secs(1), honest.sender_mac, &honest);
        let forged = ArpPacket::gratuitous(
            ArpOp::Request,
            MacAddr::from_index(66),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        m.inspect(SimTime::from_secs(2), forged.sender_mac, &forged);
        assert!(log.alerts().iter().any(|a| a.kind == AlertKind::BindingChanged));
    }
}
