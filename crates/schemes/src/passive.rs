//! The arpwatch-style passive monitor.

use std::collections::HashMap;

use arpshield_netsim::{Device, DeviceCtx, PortId, SimTime};
use arpshield_packet::{ArpPacket, EtherType, EthernetView, Ipv4Addr, MacAddr};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

const SCHEME: &str = "passive";

/// Passive monitor knobs.
#[derive(Debug, Clone, Copy)]
pub struct PassiveConfig {
    /// Also alert the first time a station is seen (arpwatch's "new
    /// station" report). Off by default: on a busy LAN it is pure noise.
    pub alert_on_new_station: bool,
    /// Suppress repeat alerts for the same (ip, mac) pair within this
    /// window, mirroring arpwatch's report throttling.
    pub dedup_window: std::time::Duration,
}

impl Default for PassiveConfig {
    fn default() -> Self {
        PassiveConfig {
            alert_on_new_station: false,
            dedup_window: std::time::Duration::from_secs(10),
        }
    }
}

/// A monitored binding: the believed MAC plus the capture frame that
/// established the belief (pinned in the flight recorder, so a later
/// `BindingChanged` verdict can still cite the original octets).
#[derive(Debug, Clone, Copy)]
struct Binding {
    mac: MacAddr,
    frame: Option<u64>,
}

/// An arpwatch-style sniffer for a switch mirror port.
///
/// It builds a database of IP→MAC pairs from every ARP packet it sees and
/// raises [`AlertKind::BindingChanged`] when a pair flips. Its two
/// structural weaknesses — faithfully reproduced — are (a) the learning
/// window: a binding forged *before* the monitor first sees the true one
/// is recorded as truth, and (b) benign churn (DHCP reassignment, NIC
/// swaps) is indistinguishable from poisoning.
#[derive(Debug)]
pub struct PassiveMonitor {
    config: PassiveConfig,
    log: AlertLog,
    db: HashMap<Ipv4Addr, Binding>,
    last_alert: HashMap<(Ipv4Addr, MacAddr), SimTime>,
    /// ARP packets inspected.
    pub inspected: u64,
}

impl PassiveMonitor {
    /// Creates a monitor reporting into `log`.
    pub fn new(config: PassiveConfig, log: AlertLog) -> Self {
        PassiveMonitor { config, log, db: HashMap::new(), last_alert: HashMap::new(), inspected: 0 }
    }

    /// Number of stations currently in the database.
    pub fn db_len(&self) -> usize {
        self.db.len()
    }

    /// The database's current belief for `ip`.
    pub fn binding(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.db.get(&ip).map(|b| b.mac)
    }

    /// Feeds one observed sender binding into the database, as if the
    /// ARP packet carrying it had been sniffed. Public so captures from
    /// other sources (or benchmarks) can drive the monitor directly.
    pub fn observe(&mut self, now: SimTime, ip: Ipv4Addr, mac: MacAddr) {
        if ip.is_unspecified() {
            return; // ARP probes carry no binding
        }
        self.log.add_work(SCHEME, work::DB_OP);
        match self.db.get(&ip).copied() {
            None => {
                // Pin the frame that establishes the baseline belief:
                // when poisoning later flips this binding, the verdict
                // cites these original octets as its evidence.
                let frame = self.log.pin_current_frame();
                self.db.insert(ip, Binding { mac, frame });
                if self.config.alert_on_new_station {
                    self.log.raise(Alert {
                        at: now,
                        scheme: SCHEME,
                        kind: AlertKind::BindingChanged,
                        subject_ip: Some(ip),
                        observed_mac: Some(mac),
                        expected_mac: None,
                    });
                }
            }
            Some(previous) if previous.mac != mac => {
                let frame = self.log.pin_current_frame();
                self.db.insert(ip, Binding { mac, frame });
                let key = (ip, mac);
                let throttled = self
                    .last_alert
                    .get(&key)
                    .map(|t| now.saturating_since(*t) < self.config.dedup_window)
                    .unwrap_or(false);
                if !throttled {
                    self.last_alert.insert(key, now);
                    let evidence: Vec<u64> = previous.frame.into_iter().collect();
                    self.log.raise_with_frames(
                        Alert {
                            at: now,
                            scheme: SCHEME,
                            kind: AlertKind::BindingChanged,
                            subject_ip: Some(ip),
                            observed_mac: Some(mac),
                            expected_mac: Some(previous.mac),
                        },
                        &evidence,
                    );
                }
            }
            // A same-MAC refresh keeps the frame that first
            // established the binding: it remains the provenance.
            Some(_) => {}
        }
    }
}

impl Device for PassiveMonitor {
    fn name(&self) -> &str {
        "passive-monitor"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        // Lenient borrowed-view parse: no per-frame allocation, and
        // VLAN-tagged or jumbo ARP stays visible off a real capture.
        let Ok(eth) = EthernetView::parse(frame) else {
            return;
        };
        if eth.ethertype() != EtherType::ARP {
            return;
        }
        let Ok(arp) = ArpPacket::parse(eth.payload()) else {
            return;
        };
        self.inspected += 1;
        self.log.add_work(SCHEME, work::INSPECT);
        self.observe(ctx.now(), arp.sender_ip, arp.sender_mac);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> (PassiveMonitor, AlertLog) {
        let log = AlertLog::new();
        (PassiveMonitor::new(PassiveConfig::default(), log.clone()), log)
    }

    #[test]
    fn learns_then_alerts_on_flip() {
        let (mut m, log) = monitor();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        m.observe(SimTime::from_secs(1), ip, MacAddr::from_index(1));
        assert!(log.is_empty(), "first sighting is silent by default");
        m.observe(SimTime::from_secs(2), ip, MacAddr::from_index(1));
        assert!(log.is_empty(), "stable binding is silent");
        m.observe(SimTime::from_secs(3), ip, MacAddr::from_index(66));
        assert_eq!(log.len(), 1);
        let alert = &log.alerts()[0];
        assert_eq!(alert.kind, AlertKind::BindingChanged);
        assert_eq!(alert.expected_mac, Some(MacAddr::from_index(1)));
        assert_eq!(alert.observed_mac, Some(MacAddr::from_index(66)));
    }

    #[test]
    fn learning_window_blindness() {
        // The structural weakness: if the forged binding arrives first,
        // it IS the baseline — and the *legitimate* traffic later raises
        // the alert (pointing at the victim).
        let (mut m, log) = monitor();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        m.observe(SimTime::from_secs(1), ip, MacAddr::from_index(66)); // forged first
        assert!(log.is_empty());
        m.observe(SimTime::from_secs(2), ip, MacAddr::from_index(1)); // truth second
        assert_eq!(log.len(), 1);
        assert_eq!(log.alerts()[0].observed_mac, Some(MacAddr::from_index(1)));
    }

    #[test]
    fn alert_throttling() {
        let (mut m, log) = monitor();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        m.observe(SimTime::from_secs(1), ip, MacAddr::from_index(1));
        for s in 2..8 {
            m.observe(SimTime::from_secs(s), ip, MacAddr::from_index(66));
            m.observe(SimTime::from_secs(s), ip, MacAddr::from_index(1));
        }
        // Flip-flop every second for 6 s with a 10 s dedup window: one
        // alert per direction.
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn probes_are_ignored() {
        let (mut m, log) = monitor();
        m.observe(SimTime::from_secs(1), Ipv4Addr::UNSPECIFIED, MacAddr::from_index(5));
        assert_eq!(m.db_len(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn new_station_alerts_when_enabled() {
        let log = AlertLog::new();
        let mut m = PassiveMonitor::new(
            PassiveConfig { alert_on_new_station: true, ..Default::default() },
            log.clone(),
        );
        m.observe(SimTime::from_secs(1), Ipv4Addr::new(10, 0, 0, 1), MacAddr::from_index(1));
        assert_eq!(log.len(), 1);
    }
}
