//! TARP: Ticket-based Address Resolution Protocol (Lootah, Enck &
//! McDaniel).
//!
//! Where S-ARP makes every host a signer, TARP concentrates signing in a
//! Local Ticketing Agent (LTA): at provisioning time the LTA issues each
//! host a *ticket* — a signature over `(ip, mac, expiry)`. Hosts attach
//! their ticket to ARP replies; receivers verify one signature against
//! the LTA's (statically known) public key and need no per-host keys, no
//! online key distributor, and no signing at resolution time. That makes
//! TARP strictly cheaper than S-ARP on the wire and on the CPU — the
//! trade-off is ticket lifetime: a binding cannot be revoked before its
//! ticket expires, which is why TARP and fast DHCP churn coexist poorly.

use std::time::Duration;

use arpshield_crypto::{KeyPair, PublicKey, Signature, SIGNATURE_LEN};
use arpshield_host::{ArpVerdict, FrameVerdict, HostApi, HostHook};
use arpshield_netsim::SimTime;
use arpshield_packet::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr, ARP_WIRE_LEN,
};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

const SCHEME: &str = "tarp";

/// On-wire length of a ticket: ip(4) + mac(6) + expiry(8) + signature.
pub const TICKET_LEN: usize = 4 + 6 + 8 + SIGNATURE_LEN;

/// A ticket: the LTA's signature over one `(ip, mac, expiry)` binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// The bound protocol address.
    pub ip: Ipv4Addr,
    /// The bound hardware address.
    pub mac: MacAddr,
    /// Expiry instant (simulation clock).
    pub expires: SimTime,
    /// The LTA's signature over the three fields above.
    pub signature: Signature,
}

impl Ticket {
    fn message(ip: Ipv4Addr, mac: MacAddr, expires: SimTime) -> Vec<u8> {
        let mut m = Vec::with_capacity(18);
        m.extend_from_slice(&ip.octets());
        m.extend_from_slice(mac.as_bytes());
        m.extend_from_slice(&expires.as_nanos().to_be_bytes());
        m
    }

    /// Issues a ticket, signed by the LTA keypair. This is the
    /// provisioning-time operation; it never happens on the wire.
    pub fn issue(lta: &KeyPair, ip: Ipv4Addr, mac: MacAddr, expires: SimTime) -> Ticket {
        let signature = lta.sign(&Self::message(ip, mac, expires));
        Ticket { ip, mac, expires, signature }
    }

    /// Verifies the ticket against the LTA public key and checks expiry.
    pub fn verify(&self, lta_key: &PublicKey, now: SimTime) -> bool {
        now < self.expires
            && lta_key
                .verify(&Self::message(self.ip, self.mac, self.expires), &self.signature)
                .is_ok()
    }

    /// Serializes to [`TICKET_LEN`] bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TICKET_LEN);
        out.extend_from_slice(&self.ip.octets());
        out.extend_from_slice(self.mac.as_bytes());
        out.extend_from_slice(&self.expires.as_nanos().to_be_bytes());
        out.extend_from_slice(&self.signature.to_bytes());
        out
    }

    /// Parses from bytes; `None` on truncation or malformed signature.
    pub fn from_bytes(bytes: &[u8]) -> Option<Ticket> {
        if bytes.len() < TICKET_LEN {
            return None;
        }
        let ip = Ipv4Addr::parse(&bytes[0..4]).ok()?;
        let mac = MacAddr::parse(&bytes[4..10]).ok()?;
        let expires = SimTime::from_nanos(u64::from_be_bytes(bytes[10..18].try_into().ok()?));
        let signature = Signature::from_bytes(&bytes[18..18 + SIGNATURE_LEN]).ok()?;
        Some(Ticket { ip, mac, expires, signature })
    }
}

/// TARP host agent configuration.
#[derive(Debug, Clone)]
pub struct TarpConfig {
    /// This host's own ticket, issued at provisioning.
    pub ticket: Ticket,
    /// The LTA's public key (statically provisioned everywhere).
    pub lta_key: PublicKey,
    /// Simulated CPU time per work unit (see the S-ARP agent).
    pub unit_cost: Duration,
}

/// The per-host TARP agent: attach our ticket to replies, verify
/// everyone else's, reject the unticketed.
#[derive(Debug)]
pub struct TarpHook {
    config: TarpConfig,
    log: AlertLog,
    outbox: std::collections::VecDeque<EthernetFrame>,
    verify_queue: std::collections::VecDeque<(Ipv4Addr, MacAddr, bool)>,
    /// Ticketed replies sent.
    pub replies_sent: u64,
    /// Claims verified and installed.
    pub verified: u64,
    /// Claims rejected.
    pub rejected: u64,
}

const TIMER_SEND: u32 = 1;
const TIMER_VERIFY: u32 = 2;

impl TarpHook {
    /// Creates the agent.
    pub fn new(config: TarpConfig, log: AlertLog) -> Self {
        TarpHook {
            config,
            log,
            outbox: std::collections::VecDeque::new(),
            verify_queue: std::collections::VecDeque::new(),
            replies_sent: 0,
            verified: 0,
            rejected: 0,
        }
    }

    fn alert(&self, at: SimTime, kind: AlertKind, ip: Ipv4Addr, mac: MacAddr) {
        self.log.raise(Alert {
            at,
            scheme: SCHEME,
            kind,
            subject_ip: Some(ip),
            observed_mac: Some(mac),
            expected_mac: None,
        });
    }
}

impl HostHook for TarpHook {
    fn name(&self) -> &str {
        SCHEME
    }

    fn on_arp_rx(
        &mut self,
        api: &mut HostApi<'_, '_>,
        _eth: &EthernetFrame,
        arp: &ArpPacket,
    ) -> ArpVerdict {
        api.add_work(work::INSPECT);
        match arp.op {
            ArpOp::Request => {
                if arp.is_probe() {
                    return ArpVerdict::Continue;
                }
                if Some(arp.target_ip) == api.ip() {
                    // Reply with our ticket attached. Attaching costs
                    // nothing: the signature was made at provisioning.
                    let my_mac = api.mac();
                    let reply = ArpPacket::reply_to(arp, my_mac);
                    let mut payload = reply.encode();
                    payload.extend_from_slice(&self.config.ticket.to_bytes());
                    let frame =
                        EthernetFrame::new(arp.sender_mac, my_mac, EtherType::Tarp, payload);
                    self.outbox.push_back(frame);
                    // Only header assembly; one inspection unit of delay.
                    api.schedule(self.config.unit_cost, TIMER_SEND);
                    self.replies_sent += 1;
                }
                ArpVerdict::Drop
            }
            ArpOp::Reply => {
                // Unticketed replies are forbidden on a TARP segment.
                self.rejected += 1;
                self.alert(api.now(), AlertKind::UnsignedReply, arp.sender_ip, arp.sender_mac);
                ArpVerdict::Drop
            }
        }
    }

    fn on_frame_rx(&mut self, api: &mut HostApi<'_, '_>, eth: &EthernetFrame) -> FrameVerdict {
        if eth.ethertype != EtherType::Tarp {
            return FrameVerdict::Continue;
        }
        if eth.payload.len() < ARP_WIRE_LEN + TICKET_LEN {
            return FrameVerdict::Consumed;
        }
        let Ok(arp) = ArpPacket::parse(&eth.payload[..ARP_WIRE_LEN]) else {
            return FrameVerdict::Consumed;
        };
        let Some(ticket) = Ticket::from_bytes(&eth.payload[ARP_WIRE_LEN..]) else {
            self.rejected += 1;
            self.alert(api.now(), AlertKind::SignatureInvalid, arp.sender_ip, arp.sender_mac);
            return FrameVerdict::Consumed;
        };
        api.add_work(work::VERIFY);
        // The ticket must verify AND name exactly the claimed binding.
        let ok = ticket.verify(&self.config.lta_key, api.now())
            && ticket.ip == arp.sender_ip
            && ticket.mac == arp.sender_mac;
        self.verify_queue.push_back((arp.sender_ip, arp.sender_mac, ok));
        api.schedule(self.config.unit_cost * work::VERIFY as u32, TIMER_VERIFY);
        FrameVerdict::Consumed
    }

    fn on_timer(&mut self, api: &mut HostApi<'_, '_>, payload: u32) {
        match payload {
            TIMER_SEND => {
                if let Some(frame) = self.outbox.pop_front() {
                    api.send_frame(&frame);
                }
            }
            TIMER_VERIFY => {
                if let Some((ip, mac, ok)) = self.verify_queue.pop_front() {
                    if ok {
                        self.verified += 1;
                        api.install_verified_binding(ip, mac);
                    } else {
                        self.rejected += 1;
                        self.alert(api.now(), AlertKind::SignatureInvalid, ip, mac);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_roundtrip_and_verify() {
        let lta = KeyPair::from_seed(1);
        let t = Ticket::issue(
            &lta,
            Ipv4Addr::new(10, 0, 0, 1),
            MacAddr::from_index(1),
            SimTime::from_secs(3600),
        );
        let parsed = Ticket::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(parsed, t);
        assert!(parsed.verify(&lta.public_key(), SimTime::from_secs(10)));
    }

    #[test]
    fn expired_ticket_rejected() {
        let lta = KeyPair::from_seed(1);
        let t = Ticket::issue(
            &lta,
            Ipv4Addr::new(10, 0, 0, 1),
            MacAddr::from_index(1),
            SimTime::from_secs(100),
        );
        assert!(t.verify(&lta.public_key(), SimTime::from_secs(99)));
        assert!(!t.verify(&lta.public_key(), SimTime::from_secs(100)));
    }

    #[test]
    fn forged_ticket_rejected() {
        let lta = KeyPair::from_seed(1);
        let mallory = KeyPair::from_seed(666);
        let forged = Ticket::issue(
            &mallory,
            Ipv4Addr::new(10, 0, 0, 1),
            MacAddr::from_index(66),
            SimTime::from_secs(3600),
        );
        assert!(!forged.verify(&lta.public_key(), SimTime::from_secs(1)));
    }

    #[test]
    fn tampered_binding_rejected() {
        let lta = KeyPair::from_seed(1);
        let t = Ticket::issue(
            &lta,
            Ipv4Addr::new(10, 0, 0, 1),
            MacAddr::from_index(1),
            SimTime::from_secs(3600),
        );
        let mut stolen = t;
        stolen.mac = MacAddr::from_index(66); // rebind to the attacker
        assert!(!stolen.verify(&lta.public_key(), SimTime::from_secs(1)));
    }

    #[test]
    fn truncated_bytes_rejected() {
        assert!(Ticket::from_bytes(&[0u8; TICKET_LEN - 1]).is_none());
    }
}
