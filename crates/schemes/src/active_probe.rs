//! XArp/ArpON-style active verification: probe suspicious claims.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, PortId, SimTime};
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetView, Ipv4Addr, MacAddr};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

const SCHEME: &str = "active-probe";

/// Active prober knobs.
#[derive(Debug, Clone, Copy)]
pub struct ActiveProbeConfig {
    /// The prober's own hardware address (probes are sourced from it).
    pub mac: MacAddr,
    /// How long to collect probe answers before judging.
    pub probe_window: Duration,
    /// Re-verify a binding at most this often (limits wire overhead).
    pub reverify_cooldown: Duration,
    /// Extra probes re-issued when a verification window closes with no
    /// answer at all — a lost probe (or lost reply) otherwise turns into
    /// a silently trusted claim. 0 reproduces the classic single-probe
    /// behaviour.
    pub probe_retries: u32,
}

impl ActiveProbeConfig {
    /// Defaults tuned for millisecond-scale LANs.
    pub fn new(mac: MacAddr) -> Self {
        ActiveProbeConfig {
            mac,
            probe_window: Duration::from_millis(300),
            reverify_cooldown: Duration::from_secs(5),
            probe_retries: 0,
        }
    }

    /// Enables probe re-issue on silent verification windows (for lossy
    /// links).
    pub fn with_probe_retries(mut self, retries: u32) -> Self {
        self.probe_retries = retries;
        self
    }
}

#[derive(Debug)]
struct ProbeState {
    claimed: MacAddr,
    answers: HashSet<MacAddr>,
    previous: Option<MacAddr>,
    /// Silent-window re-probes still allowed for this verification.
    retries_left: u32,
}

/// A monitor that verifies ARP claims by asking the network.
///
/// On every claim that is *new* or *contradicts* its database, it emits
/// an RFC 5227 ARP probe (zero sender IP, so it never pollutes caches)
/// for the claimed address and waits a window for answers:
///
/// * the claimed MAC answers, alone → claim verified, DB updated;
/// * a different MAC answers → [`AlertKind::ProbeContradiction`];
/// * multiple distinct MACs answer → [`AlertKind::DuplicateResponders`]
///   (two stations think they own the IP — a live poisoning fight).
///
/// The probe traffic itself is the scheme's cost, measured in experiment
/// F2.
#[derive(Debug)]
pub struct ActiveProbeMonitor {
    config: ActiveProbeConfig,
    log: AlertLog,
    db: HashMap<Ipv4Addr, MacAddr>,
    last_verified: HashMap<Ipv4Addr, SimTime>,
    pending: HashMap<Ipv4Addr, ProbeState>,
    /// Probes emitted.
    pub probes_sent: u64,
    /// ARP packets inspected.
    pub inspected: u64,
}

impl ActiveProbeMonitor {
    /// Creates a prober reporting into `log`.
    pub fn new(config: ActiveProbeConfig, log: AlertLog) -> Self {
        ActiveProbeMonitor {
            config,
            log,
            db: HashMap::new(),
            last_verified: HashMap::new(),
            pending: HashMap::new(),
            probes_sent: 0,
            inspected: 0,
        }
    }

    /// The database's current belief for `ip`.
    pub fn binding(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.db.get(&ip).copied()
    }

    fn start_probe(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        ip: Ipv4Addr,
        claimed: MacAddr,
        contradiction: bool,
    ) {
        if self.pending.contains_key(&ip) {
            return; // verification already in flight
        }
        // The cooldown only throttles re-probing of *new* stations; a
        // claim that contradicts an established binding is always worth a
        // probe — that is the scheme's whole point.
        if !contradiction {
            if let Some(at) = self.last_verified.get(&ip) {
                if ctx.now().saturating_since(*at) < self.config.reverify_cooldown {
                    return;
                }
            }
        }
        let previous = self.db.get(&ip).copied();
        self.pending.insert(
            ip,
            ProbeState {
                claimed,
                answers: HashSet::new(),
                previous,
                retries_left: self.config.probe_retries,
            },
        );
        self.emit_probe(ctx, ip);
    }

    fn emit_probe(&mut self, ctx: &mut DeviceCtx<'_>, ip: Ipv4Addr) {
        let probe = ArpPacket::request(self.config.mac, Ipv4Addr::UNSPECIFIED, ip);
        ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, self.config.mac, EtherType::ARP, &probe));
        self.probes_sent += 1;
        self.log.add_work(SCHEME, work::PROBE);
        ctx.schedule_in(self.config.probe_window, u64::from(ip.to_u32()));
    }

    fn judge(&mut self, now: SimTime, ip: Ipv4Addr) {
        let Some(state) = self.pending.remove(&ip) else {
            return;
        };
        self.last_verified.insert(ip, now);
        match state.answers.len() {
            0 => {
                // Nobody defends the IP. The claim might be a station that
                // is simply quiet, or a forged binding for a live-but-mute
                // host. Record it provisionally (XArp behaves likewise).
                self.db.insert(ip, state.claimed);
            }
            1 => {
                let answer = *state.answers.iter().next().unwrap();
                self.db.insert(ip, answer);
                if answer != state.claimed {
                    self.log.raise(Alert {
                        at: now,
                        scheme: SCHEME,
                        kind: AlertKind::ProbeContradiction,
                        subject_ip: Some(ip),
                        observed_mac: Some(state.claimed),
                        expected_mac: Some(answer),
                    });
                }
            }
            _ => {
                self.log.raise(Alert {
                    at: now,
                    scheme: SCHEME,
                    kind: AlertKind::DuplicateResponders,
                    subject_ip: Some(ip),
                    observed_mac: Some(state.claimed),
                    expected_mac: state.previous,
                });
            }
        }
    }
}

impl Device for ActiveProbeMonitor {
    fn name(&self) -> &str {
        "active-probe-monitor"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        let Ok(eth) = EthernetView::parse(frame) else {
            return;
        };
        if eth.ethertype() != EtherType::ARP {
            return;
        }
        let Ok(arp) = ArpPacket::parse(eth.payload()) else {
            return;
        };
        if arp.sender_mac == self.config.mac {
            return; // our own probes, mirrored back
        }
        self.inspected += 1;
        self.log.add_work(SCHEME, work::INSPECT);
        if arp.sender_ip.is_unspecified() {
            return; // someone else's probe
        }
        // Answers to an in-flight probe: replies for the probed IP.
        if arp.op == ArpOp::Reply {
            if let Some(state) = self.pending.get_mut(&arp.sender_ip) {
                state.answers.insert(arp.sender_mac);
                return; // judged when the window closes
            }
        }
        match self.db.get(&arp.sender_ip) {
            Some(known) if *known == arp.sender_mac => {} // stable claim
            Some(_) => self.start_probe(ctx, arp.sender_ip, arp.sender_mac, true),
            None => self.start_probe(ctx, arp.sender_ip, arp.sender_mac, false),
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        let ip = Ipv4Addr::from_u32(token as u32);
        // A window that closed without a single answer may mean the
        // probe (or every reply) was lost on an impaired link; burn a
        // retry before concluding anything.
        if let Some(state) = self.pending.get_mut(&ip) {
            if state.answers.is_empty() && state.retries_left > 0 {
                state.retries_left -= 1;
                self.emit_probe(ctx, ip);
                return;
            }
        }
        self.judge(ctx.now(), ip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prober() -> (ActiveProbeMonitor, AlertLog) {
        let log = AlertLog::new();
        (
            ActiveProbeMonitor::new(ActiveProbeConfig::new(MacAddr::from_index(200)), log.clone()),
            log,
        )
    }

    const IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    #[test]
    fn contradicted_claim_alerts() {
        let (mut m, log) = prober();
        m.pending.insert(
            IP,
            ProbeState {
                claimed: MacAddr::from_index(66),
                answers: HashSet::from([MacAddr::from_index(1)]),
                previous: None,
                retries_left: 0,
            },
        );
        m.judge(SimTime::from_secs(1), IP);
        assert_eq!(log.alerts()[0].kind, AlertKind::ProbeContradiction);
        assert_eq!(m.binding(IP), Some(MacAddr::from_index(1)), "probe answer wins");
    }

    #[test]
    fn confirmed_claim_is_silent() {
        let (mut m, log) = prober();
        m.pending.insert(
            IP,
            ProbeState {
                claimed: MacAddr::from_index(1),
                answers: HashSet::from([MacAddr::from_index(1)]),
                previous: None,
                retries_left: 0,
            },
        );
        m.judge(SimTime::from_secs(1), IP);
        assert!(log.is_empty());
        assert_eq!(m.binding(IP), Some(MacAddr::from_index(1)));
    }

    #[test]
    fn duplicate_responders_alert() {
        let (mut m, log) = prober();
        m.pending.insert(
            IP,
            ProbeState {
                claimed: MacAddr::from_index(66),
                answers: HashSet::from([MacAddr::from_index(1), MacAddr::from_index(66)]),
                previous: Some(MacAddr::from_index(1)),
                retries_left: 0,
            },
        );
        m.judge(SimTime::from_secs(1), IP);
        assert_eq!(log.alerts()[0].kind, AlertKind::DuplicateResponders);
    }

    #[test]
    fn silent_ip_recorded_provisionally() {
        let (mut m, log) = prober();
        m.pending.insert(
            IP,
            ProbeState {
                claimed: MacAddr::from_index(7),
                answers: HashSet::new(),
                previous: None,
                retries_left: 0,
            },
        );
        m.judge(SimTime::from_secs(1), IP);
        assert!(log.is_empty());
        assert_eq!(m.binding(IP), Some(MacAddr::from_index(7)));
    }

    // Wire-level behaviour (probe emission, cooldown, live contradiction
    // against real hosts) is exercised in the crate integration tests.
}
