//! Threshold-counter anomaly detection for the volumetric L2 attacks
//! (MAC flooding, DHCP starvation, ARP sweeps).
//!
//! Binding-verification schemes are blind to attacks that do not forge
//! bindings at all; this monitor covers that flank with the
//! sliding-window counters practical IDS deployments use: distinct
//! source MACs per window (flooding), DHCP DISCOVERs per window
//! (starvation), and ARP requests per window (scanning). The detection
//! logic is deliberately simple — and so are its limits: thresholds must
//! be sized to the LAN, and a slow attacker ducks under them (measured
//! in experiment T6).

use std::collections::{HashSet, VecDeque};
use std::time::Duration;

use arpshield_netsim::{Device, DeviceCtx, PortId, SimTime};
use arpshield_packet::{
    DhcpMessage, DhcpMessageType, EtherType, EthernetFrame, EthernetView, IpProtocol, Ipv4Packet,
    MacAddr, UdpDatagram, DHCP_SERVER_PORT,
};

use crate::alert::{Alert, AlertKind, AlertLog};
use crate::work;

const SCHEME: &str = "rate-monitor";

/// Rate-monitor thresholds, all per [`RateConfig::window`].
#[derive(Debug, Clone, Copy)]
pub struct RateConfig {
    /// Sliding window length.
    pub window: Duration,
    /// Distinct source MACs tolerated per window before flooding is
    /// suspected. Size to the station population plus headroom.
    pub max_new_macs: usize,
    /// DHCP DISCOVERs tolerated per window before starvation is
    /// suspected (a whole office powering on is the false-positive
    /// hazard).
    pub max_dhcp_discovers: usize,
    /// ARP requests tolerated per window before a sweep is suspected.
    pub max_arp_requests: usize,
    /// Re-alert suppression: one alert per kind per this interval.
    pub alert_cooldown: Duration,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig {
            window: Duration::from_secs(1),
            max_new_macs: 30,
            max_dhcp_discovers: 10,
            max_arp_requests: 60,
            alert_cooldown: Duration::from_secs(5),
        }
    }
}

/// A mirror-port monitor running sliding-window threshold counters.
#[derive(Debug)]
pub struct RateMonitor {
    config: RateConfig,
    log: AlertLog,
    mac_events: VecDeque<(SimTime, arpshield_packet::MacAddr)>,
    discover_events: VecDeque<SimTime>,
    arp_request_events: VecDeque<SimTime>,
    last_alert: [Option<SimTime>; 3],
    /// Frames inspected.
    pub inspected: u64,
}

impl RateMonitor {
    /// Creates a monitor reporting into `log`.
    pub fn new(config: RateConfig, log: AlertLog) -> Self {
        RateMonitor {
            config,
            log,
            mac_events: VecDeque::new(),
            discover_events: VecDeque::new(),
            arp_request_events: VecDeque::new(),
            last_alert: [None; 3],
            inspected: 0,
        }
    }

    fn expire(&mut self, now: SimTime) {
        let w = self.config.window;
        while self.mac_events.front().map(|(t, _)| now.saturating_since(*t) > w).unwrap_or(false) {
            self.mac_events.pop_front();
        }
        while self.discover_events.front().map(|t| now.saturating_since(*t) > w).unwrap_or(false) {
            self.discover_events.pop_front();
        }
        while self.arp_request_events.front().map(|t| now.saturating_since(*t) > w).unwrap_or(false)
        {
            self.arp_request_events.pop_front();
        }
    }

    fn maybe_alert(&mut self, now: SimTime, which: usize, kind: AlertKind) {
        let cooled = self.last_alert[which]
            .map(|t| now.saturating_since(t) >= self.config.alert_cooldown)
            .unwrap_or(true);
        if cooled {
            self.last_alert[which] = Some(now);
            self.log.raise(Alert {
                at: now,
                scheme: SCHEME,
                kind,
                subject_ip: None,
                observed_mac: None,
                expected_mac: None,
            });
        }
    }

    fn check_thresholds(&mut self, now: SimTime) {
        let distinct: HashSet<_> = self.mac_events.iter().map(|(_, m)| *m).collect();
        if distinct.len() > self.config.max_new_macs {
            self.maybe_alert(now, 0, AlertKind::RateAnomaly);
        }
        if self.discover_events.len() > self.config.max_dhcp_discovers {
            self.maybe_alert(now, 1, AlertKind::RateAnomaly);
        }
        if self.arp_request_events.len() > self.config.max_arp_requests {
            self.maybe_alert(now, 2, AlertKind::RateAnomaly);
        }
    }

    /// Feeds one sniffed frame through the counters (also the bench
    /// entry point).
    pub fn observe(&mut self, now: SimTime, eth: &EthernetFrame) {
        self.observe_parts(now, eth.src, eth.ethertype, &eth.payload);
    }

    /// [`observe`](Self::observe) without the owned frame: the borrowed
    /// pieces a zero-copy [`EthernetView`] hands out.
    pub fn observe_parts(
        &mut self,
        now: SimTime,
        src: MacAddr,
        ethertype: EtherType,
        payload: &[u8],
    ) {
        self.inspected += 1;
        self.log.add_work(SCHEME, work::INSPECT);
        self.expire(now);
        if src.is_unicast() && !src.is_zero() {
            self.mac_events.push_back((now, src));
        }
        match ethertype {
            EtherType::ARP => {
                if let Ok(arp) = arpshield_packet::ArpPacket::parse(payload) {
                    if arp.op == arpshield_packet::ArpOp::Request && !arp.is_probe() {
                        self.arp_request_events.push_back(now);
                    }
                }
            }
            EtherType::Ipv4 => {
                if let Ok(pkt) = Ipv4Packet::parse(payload) {
                    if pkt.protocol == IpProtocol::Udp {
                        if let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) {
                            if dgram.dst_port == DHCP_SERVER_PORT {
                                if let Ok(msg) = DhcpMessage::parse(&dgram.payload) {
                                    if msg.message_type() == Some(DhcpMessageType::Discover) {
                                        self.discover_events.push_back(now);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        self.check_thresholds(now);
    }
}

impl Device for RateMonitor {
    fn name(&self) -> &str {
        "rate-monitor"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        if let Ok(eth) = EthernetView::parse(frame) {
            self.observe_parts(ctx.now(), eth.src(), eth.ethertype(), eth.payload());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_packet::MacAddr;

    fn frame_from(src: u32) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_index(src),
            EtherType::Other(0x1234),
            vec![0; 46],
        )
    }

    #[test]
    fn mac_flood_threshold_fires_once_per_cooldown() {
        let log = AlertLog::new();
        let mut m =
            RateMonitor::new(RateConfig { max_new_macs: 5, ..Default::default() }, log.clone());
        for i in 0..50u32 {
            m.observe(SimTime::from_millis(u64::from(i) * 10), &frame_from(i));
        }
        assert_eq!(log.len(), 1, "cooldown must throttle repeats");
        assert_eq!(log.alerts()[0].kind, AlertKind::RateAnomaly);
    }

    #[test]
    fn stable_population_is_silent() {
        let log = AlertLog::new();
        let mut m =
            RateMonitor::new(RateConfig { max_new_macs: 5, ..Default::default() }, log.clone());
        for i in 0..200u32 {
            m.observe(SimTime::from_millis(u64::from(i) * 10), &frame_from(i % 4));
        }
        assert!(log.is_empty());
    }

    #[test]
    fn window_expiry_forgets_old_macs() {
        let log = AlertLog::new();
        let mut m =
            RateMonitor::new(RateConfig { max_new_macs: 5, ..Default::default() }, log.clone());
        // Five distinct MACs per second, but spread so no window holds
        // more than five: silent.
        for i in 0..50u32 {
            m.observe(SimTime::from_millis(u64::from(i) * 250), &frame_from(i));
        }
        assert!(log.is_empty());
    }

    #[test]
    fn discover_burst_fires() {
        use arpshield_packet::{Ipv4Addr, DHCP_CLIENT_PORT};
        let log = AlertLog::new();
        let mut m = RateMonitor::new(
            RateConfig { max_dhcp_discovers: 3, ..Default::default() },
            log.clone(),
        );
        for i in 0..6u32 {
            let msg = DhcpMessage::discover(i, MacAddr::from_index(i));
            let dgram = UdpDatagram::new(DHCP_CLIENT_PORT, DHCP_SERVER_PORT, msg.encode())
                .encode(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST);
            let pkt =
                Ipv4Packet::new(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, IpProtocol::Udp, dgram);
            let eth = EthernetFrame::new(
                MacAddr::BROADCAST,
                MacAddr::from_index(i),
                EtherType::Ipv4,
                pkt.encode(),
            );
            m.observe(SimTime::from_millis(u64::from(i) * 50), &eth);
        }
        assert_eq!(log.len(), 1);
    }
}
