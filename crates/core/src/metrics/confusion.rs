//! Outcome scoring for attack runs.

use std::time::Duration;

use arpshield_netsim::SimTime;

use crate::scenario::CompletedRun;

/// The scored result of one (scheme × attack) run — one cell of the
/// coverage matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// The victim's cache never held a forged binding after the attack
    /// began.
    pub prevented: bool,
    /// At least one alert tied to the attack fired after it began.
    pub detected: bool,
    /// Delay from the first attack emission to the first such alert.
    pub detection_latency: Option<Duration>,
    /// Fraction of post-attack samples in which the victim was poisoned.
    pub poisoned_fraction: f64,
    /// Victim's ping delivery ratio over the whole run (connectivity
    /// under attack / under defence).
    pub victim_delivery: f64,
    /// Total alerts raised during the run.
    pub alerts: usize,
}

impl AttackOutcome {
    /// The compact cell label used in coverage tables:
    /// `P` prevented, `D` detected, `P+D`, or `-` (missed).
    pub fn cell(&self) -> String {
        match (self.prevented, self.detected) {
            (true, true) => "P+D".to_string(),
            (true, false) => "P".to_string(),
            (false, true) => match self.detection_latency {
                Some(lat) => format!("D({}ms)", lat.as_millis()),
                None => "D".to_string(),
            },
            (false, false) => "-".to_string(),
        }
    }
}

/// Scores a completed attack run.
///
/// *Prevention* is judged from ground-truth cache samples: no post-attack
/// sample may show the victim poisoned. *Detection* is judged by matching
/// alerts against the attack: an alert counts if it fires at/after the
/// first attacker emission and names either the forged IP or the
/// attacker's claimed MAC. (An alert that blames the victim's legitimate
/// binding for the same IP still counts — it rang about the right
/// incident, even if attribution is inverted; the passive monitor's
/// learning-window weakness shows up this way.)
pub fn score_attack_run(run: &CompletedRun) -> AttackOutcome {
    let first_emission: Option<SimTime> = run.lan.truth.events().first().map(|e| e.at);
    let samples = run.samples.borrow();
    let poisoned_fraction = samples.poisoned_fraction_since(run.attack_start);
    let prevented = !samples.ever_poisoned();

    let events = run.lan.truth.events();
    let forged_ips: Vec<_> = events.iter().filter_map(|e| e.forged_ip).collect();
    let claimed_macs: Vec<_> = events.iter().filter_map(|e| e.claimed_mac).collect();

    let mut detection_at: Option<SimTime> = None;
    if let Some(start) = first_emission {
        for alert in run.lan.alerts.alerts() {
            if alert.at < start {
                continue;
            }
            let names_ip = alert.subject_ip.map(|ip| forged_ips.contains(&ip)).unwrap_or(false);
            let names_mac = alert.observed_mac.map(|m| claimed_macs.contains(&m)).unwrap_or(false);
            if names_ip || names_mac {
                detection_at = Some(alert.at);
                break;
            }
        }
    }

    let p = run.lan.pings[0].borrow();
    let victim_delivery = if p.sent == 0 { 0.0 } else { p.received as f64 / p.sent as f64 };

    AttackOutcome {
        prevented,
        detected: detection_at.is_some(),
        detection_latency: detection_at.zip(first_emission).map(|(d, s)| d.saturating_since(s)),
        poisoned_fraction,
        victim_delivery,
        alerts: run.lan.alerts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(prevented: bool, detected: bool) -> AttackOutcome {
        AttackOutcome {
            prevented,
            detected,
            detection_latency: detected.then(|| Duration::from_millis(7)),
            poisoned_fraction: 0.0,
            victim_delivery: 1.0,
            alerts: 0,
        }
    }

    #[test]
    fn cell_labels() {
        assert_eq!(outcome(true, true).cell(), "P+D");
        assert_eq!(outcome(true, false).cell(), "P");
        assert_eq!(outcome(false, true).cell(), "D(7ms)");
        assert_eq!(outcome(false, false).cell(), "-");
    }

    // Whole-run scoring is exercised through the scenario tests and the
    // coverage-matrix experiment.
}
