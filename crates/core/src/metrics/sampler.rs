//! Periodic ground-truth sampling of victim ARP caches.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_host::HostHandle;
use arpshield_netsim::{Device, DeviceCtx, PortId, SimTime};
use arpshield_packet::{Ipv4Addr, MacAddr};

/// One cache binding under watch: "in `host`'s cache, `ip` must map to
/// `legitimate_mac`".
#[derive(Debug, Clone)]
pub struct Watch {
    /// The host whose cache is observed.
    pub host: HostHandle,
    /// The IP whose binding matters (typically the gateway's).
    pub ip: Ipv4Addr,
    /// The true owner of that IP.
    pub legitimate_mac: MacAddr,
}

/// The samples a [`CacheSampler`] collects.
#[derive(Debug, Default, Clone)]
pub struct SampleLog {
    /// `(time, any-watched-cache-poisoned)` in sampling order.
    pub samples: Vec<(SimTime, bool)>,
}

impl SampleLog {
    /// First sample time at which a watched cache was poisoned.
    pub fn first_poisoned_at(&self) -> Option<SimTime> {
        self.samples.iter().find(|(_, p)| *p).map(|(t, _)| *t)
    }

    /// True if any sample ever observed poisoning.
    pub fn ever_poisoned(&self) -> bool {
        self.samples.iter().any(|(_, p)| *p)
    }

    /// Fraction of samples at or after `since` that observed poisoning.
    pub fn poisoned_fraction_since(&self, since: SimTime) -> f64 {
        let relevant: Vec<_> = self.samples.iter().filter(|(t, _)| *t >= since).collect();
        if relevant.is_empty() {
            return 0.0;
        }
        relevant.iter().filter(|(_, p)| *p).count() as f64 / relevant.len() as f64
    }
}

/// A measurement device that polls watched ARP caches on a fixed period
/// and records whether any of them is poisoned.
///
/// It is pure instrumentation: it owns no ports' traffic and transmits
/// nothing (it attaches to a switch port only because every device needs
/// a seat; the port stays silent).
#[derive(Debug)]
pub struct CacheSampler {
    watches: Vec<Watch>,
    period: Duration,
    log: Rc<RefCell<SampleLog>>,
}

impl CacheSampler {
    /// Creates a sampler and the shared log it fills.
    pub fn new(watches: Vec<Watch>, period: Duration) -> (Self, Rc<RefCell<SampleLog>>) {
        let log = Rc::new(RefCell::new(SampleLog::default()));
        (CacheSampler { watches, period, log: Rc::clone(&log) }, log)
    }
}

impl Device for CacheSampler {
    fn name(&self) -> &str {
        "cache-sampler"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.period, 0);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _token: u64) {
        let now = ctx.now();
        let poisoned = self
            .watches
            .iter()
            .any(|w| w.host.cache.borrow().is_poisoned(now, w.ip, w.legitimate_mac));
        self.log.borrow_mut().samples.push((now, poisoned));
        ctx.schedule_in(self.period, 0);
    }

    fn on_frame(&mut self, _ctx: &mut DeviceCtx<'_>, _port: PortId, _frame: &[u8]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_log_math() {
        let log = SampleLog {
            samples: vec![
                (SimTime::from_secs(1), false),
                (SimTime::from_secs(2), true),
                (SimTime::from_secs(3), true),
                (SimTime::from_secs(4), false),
            ],
        };
        assert!(log.ever_poisoned());
        assert_eq!(log.first_poisoned_at(), Some(SimTime::from_secs(2)));
        assert!((log.poisoned_fraction_since(SimTime::from_secs(2)) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(log.poisoned_fraction_since(SimTime::from_secs(9)), 0.0);
    }
}
