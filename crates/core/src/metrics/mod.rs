//! Scoring: turning ground truth, alerts, and cache samples into
//! outcomes.

mod confusion;
mod sampler;

pub use confusion::{score_attack_run, AttackOutcome};
pub use sampler::{CacheSampler, SampleLog, Watch};
