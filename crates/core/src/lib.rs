//! The analysis framework: scenarios, metrics, and experiments that
//! reproduce the paper's evaluation of ARP-cache-poisoning defences.
//!
//! This crate is the reproduction's primary contribution. It composes the
//! substrates — the LAN simulator, host stacks, attacker toolkit, and the
//! scheme implementations — into scored experiments:
//!
//! * [`scenario`] builds deterministic LANs with a chosen
//!   [`SchemeKind`](arpshield_schemes::SchemeKind) deployed and attacks
//!   or benign churn injected;
//! * [`metrics`] turns ground truth + alerts + cache samples into
//!   prevention/detection outcomes, latencies, and false-positive
//!   counts;
//! * [`experiment`] runs each table and figure of the evaluation
//!   (T1–T5, F1–F6 in `DESIGN.md`);
//! * [`parallel`] fans independent seeded runs across cores while
//!   keeping every experiment's output byte-identical to a sequential
//!   run (`ARPSHIELD_THREADS` overrides the worker count);
//! * [`report`] renders the results as aligned text tables, ASCII
//!   series, and CSV.
//!
//! # Example: one cell of the coverage matrix
//!
//! ```rust
//! use arpshield_core::scenario::{AttackScenario, ScenarioConfig};
//! use arpshield_core::metrics::score_attack_run;
//! use arpshield_schemes::SchemeKind;
//! use arpshield_attacks::PoisonVariant;
//!
//! let config = ScenarioConfig::new(42).with_scheme(SchemeKind::Passive);
//! let run = AttackScenario::poisoning(config, PoisonVariant::GratuitousReply).run();
//! let outcome = score_attack_run(&run);
//! assert!(outcome.detected, "arpwatch-style monitoring flags the flip");
//! assert!(!outcome.prevented, "...but cannot stop it");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod metrics;
pub mod parallel;
pub mod report;
pub mod scenario;
pub mod taxonomy;

pub use metrics::{score_attack_run, AttackOutcome};
pub use report::{Series, Table};
pub use scenario::{AttackScenario, CompletedRun, ScenarioConfig};
