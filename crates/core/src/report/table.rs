//! Aligned text tables.

use std::fmt;

use arpshield_trace::csv_escape;

/// A rectangular result table with a title and column headers.
///
/// ```rust
/// use arpshield_core::Table;
///
/// let mut t = Table::new("T-demo: example", &["scheme", "result"]);
/// t.row(["passive", "detected"]);
/// t.row(["s-arp", "prevented"]);
/// let text = t.render();
/// assert!(text.contains("scheme"));
/// assert!(text.contains("prevented"));
/// assert_eq!(t.to_csv().lines().count(), 3); // header + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column), for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Renders an aligned, boxed text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let rule: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .chain(std::iter::once("+".to_string()))
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!("| {cell:<w$} "));
            }
            line.push('|');
            line.push('\n');
            line
        };
        out.push_str(&rule);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push_str(&rule);
        out.push('\n');
        out
    }

    /// Renders as CSV (header + rows). Cells go through the
    /// workspace-wide [`csv_escape`], which quotes commas, quotes, and
    /// embedded newlines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| csv_escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_shape() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(["x", "y", "z"]);
        t.row(["longer-cell", "s", "t"]);
        let text = t.render();
        let lines: Vec<_> = text.lines().collect();
        // title + 3 rules + header + 2 rows
        assert_eq!(lines.len(), 7);
        let widths: std::collections::HashSet<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "all body lines equally wide: {text}");
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(["only"]);
        t.row(["x", "y"]);
        assert_eq!(t.cell(0, 1), Some(""));
        assert_eq!(t.cell(1, 1), Some("y"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["k", "v"]);
        t.row(["a,b", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.starts_with("k,v\n"));
    }

    #[test]
    fn csv_escapes_embedded_newlines() {
        let mut t = Table::new("demo", &["k", "v"]);
        t.row(["multi\nline", "ok"]);
        assert!(t.to_csv().contains("\"multi\nline\",ok"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = Table::new("bad", &[]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("d", &["x"]);
        t.row(["1"]);
        assert_eq!(t.to_string(), t.render());
    }
}
