//! Result rendering: text tables, ASCII series, CSV.

mod series;
mod table;

pub use arpshield_trace::csv_escape;
pub use series::Series;
pub use table::Table;
