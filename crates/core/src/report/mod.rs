//! Result rendering: text tables, ASCII series, CSV.

mod series;
mod table;

pub use series::Series;
pub use table::Table;
