//! Numeric series for figures: ASCII plots plus CSV.

use std::fmt;

use arpshield_trace::csv_escape;

/// One named data series of `(x, y)` points, the unit figures are built
/// from.
///
/// ```rust
/// use arpshield_core::Series;
///
/// let mut s = Series::new("F-demo: latency CDF", "latency_ms", "fraction");
/// s.push(1.0, 0.5);
/// s.push(2.0, 1.0);
/// assert_eq!(s.len(), 2);
/// assert!(s.to_csv().contains("latency_ms,fraction"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    title: String,
    x_label: String,
    y_label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Series {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// The series title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points exist.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest y value, if any.
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|(_, y)| *y).fold(None, |acc, y| {
            Some(match acc {
                Some(m) if m >= y => m,
                _ => y,
            })
        })
    }

    /// Renders a horizontal-bar ASCII plot: one line per point, bar
    /// length proportional to `y`.
    pub fn render(&self) -> String {
        const BAR: usize = 50;
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&format!("   {} vs {}\n", self.y_label, self.x_label));
        let max = self.max_y().unwrap_or(0.0).max(f64::MIN_POSITIVE);
        for (x, y) in &self.points {
            let filled = ((y / max) * BAR as f64).round().clamp(0.0, BAR as f64) as usize;
            out.push_str(&format!(
                "  {x:>12.3} | {}{} {y:.4}\n",
                "#".repeat(filled),
                " ".repeat(BAR - filled)
            ));
        }
        out
    }

    /// Renders as CSV with the axis labels as header. All fields go
    /// through the workspace-wide [`csv_escape`], so labels containing
    /// commas, quotes, or newlines survive a round-trip.
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},{}\n", csv_escape(&self.x_label), csv_escape(&self.y_label));
        for (x, y) in &self.points {
            out.push_str(&format!(
                "{},{}\n",
                csv_escape(&x.to_string()),
                csv_escape(&y.to_string())
            ));
        }
        out
    }

    /// Builds an empirical CDF series from raw samples (any order).
    pub fn cdf(
        title: impl Into<String>,
        x_label: impl Into<String>,
        mut samples: Vec<f64>,
    ) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut s = Series::new(title, x_label, "cum_fraction");
        let n = samples.len();
        for (i, x) in samples.into_iter().enumerate() {
            s.push(x, (i + 1) as f64 / n as f64);
        }
        s
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_ending_at_one() {
        let s = Series::cdf("cdf", "ms", vec![3.0, 1.0, 2.0, 2.0]);
        let pts = s.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].0, 1.0);
        assert!((pts[3].1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn render_scales_bars() {
        let mut s = Series::new("demo", "x", "y");
        s.push(1.0, 10.0);
        s.push(2.0, 5.0);
        let text = s.render();
        let full = text.lines().nth(2).unwrap().matches('#').count();
        let half = text.lines().nth(3).unwrap().matches('#').count();
        assert_eq!(full, 50);
        assert_eq!(half, 25);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut s = Series::new("demo", "hosts", "bytes");
        s.push(10.0, 123.0);
        let csv = s.to_csv();
        assert_eq!(csv, "hosts,bytes\n10,123\n");
    }

    #[test]
    fn csv_escapes_labels_including_newlines() {
        let mut s = Series::new("demo", "hosts, active", "bytes\nper-run");
        s.push(10.0, 123.0);
        assert_eq!(s.to_csv(), "\"hosts, active\",\"bytes\nper-run\"\n10,123\n");
    }

    #[test]
    fn max_y_handles_empty() {
        let s = Series::new("demo", "x", "y");
        assert_eq!(s.max_y(), None);
        assert!(s.is_empty());
    }
}
