//! A std-only scoped thread pool for fanning independent seeded
//! simulations across cores — deterministically.
//!
//! The evaluation is a grid of embarrassingly parallel jobs: every cell
//! of T3, every run of an F1 latency sweep, every LAN size of an F2
//! overhead curve is a pure function of its `(seed, config)` pair. The
//! runner executes those jobs on `std::thread::scope` workers pulling
//! from a shared index counter, then merges results **in index order**,
//! so the output of every experiment is byte-identical whether it ran
//! on one thread or sixteen. `ARPSHIELD_THREADS=1` forces sequential
//! execution (and is the reference the determinism suite compares
//! against); unset, the worker count follows
//! [`std::thread::available_parallelism`].
//!
//! Zero registry dependencies by design (see the README's
//! "Zero registry dependencies" section): no rayon, no crossbeam — the
//! whole pool is a counter, a mutex per slot, and scoped threads.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads [`run_indexed`] will use: the `ARPSHIELD_THREADS`
/// override when set to a positive integer, otherwise the machine's
/// available parallelism.
///
/// An invalid override is reported through the installed trace
/// collector (it lands in the run manifest's `warnings`) when one is
/// active, and on stderr otherwise.
pub fn thread_count() -> usize {
    let (count, warning) = arpshield_trace::env_knob::knob("ARPSHIELD_THREADS")
        .parse_opt("a positive integer", |n: &usize| *n >= 1);
    arpshield_trace::env_knob::report(warning);
    count.unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(1))
}

/// Runs independent jobs, possibly concurrently, and returns their
/// results in job order.
///
/// Each job must be a pure function of its captures (in this workspace:
/// a seed and a scenario config). Scheduling order is unspecified, but
/// the result vector is always index-ordered, so callers observe
/// identical output regardless of the thread count. Jobs run on the
/// caller's thread when the effective thread count is 1 — no spawn, no
/// synchronisation.
///
/// # Panics
///
/// Propagates the first (lowest-index) panicking job's payload,
/// prefixed with the job index when the payload is a string. Every job
/// still runs to completion first — workers catch panics instead of
/// unwinding through the pool, so no mutex is ever poisoned and no
/// second panic can abort the process mid-unwind.
pub fn run_indexed<R, F>(jobs: Vec<F>) -> Vec<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let threads = thread_count().min(jobs.len());
    if threads <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    // Tracing and profiling are thread-local: capture the submitting
    // thread's collectors and re-install them inside every worker, so
    // runs traced under a `reproduce --trace` experiment keep flushing
    // to that experiment's manifest — and spans opened inside jobs land
    // in that experiment's profile — no matter which worker executes
    // them. Each worker's profile tree flushes into the shared
    // collector when its guard drops at scope exit; the merge is
    // associative and commutative, so the merged profile's shape is
    // independent of scheduling.
    let collector = arpshield_trace::current();
    let profiler = arpshield_trace::profile::current();
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<R>>>> =
        slots.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _guard = collector.clone().map(arpshield_trace::install);
                let _profile_guard = profiler.clone().map(arpshield_trace::profile::install);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let job = slots[i].lock().unwrap().take().expect("each index claimed once");
                    let result = catch_unwind(AssertUnwindSafe(job));
                    *results[i].lock().unwrap() = Some(result);
                }
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let result = slot.into_inner().expect("no worker panics, so no poisoned slots");
            match result.expect("scope joined every worker") {
                Ok(value) => value,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned());
                    match msg {
                        Some(msg) => panic!("parallel job {i} panicked: {msg}"),
                        // Non-string payload: re-raise it untouched so
                        // downcasting callers still work.
                        None => resume_unwind(payload),
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn results_come_back_in_index_order() {
        let jobs: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
        let expected: Vec<_> = (0..64u64).map(|i| i * i).collect();
        assert_eq!(run_indexed(jobs), expected);
    }

    #[test]
    fn empty_and_single_job_lists_work() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert_eq!(run_indexed(none), Vec::<u8>::new());
        assert_eq!(run_indexed(vec![|| 7u8]), vec![7]);
    }

    /// One test covers every env-var interaction: the harness runs tests
    /// concurrently in one process, so splitting these would race on
    /// `ARPSHIELD_THREADS`.
    #[test]
    fn thread_count_override_and_parallel_determinism() {
        std::env::set_var("ARPSHIELD_THREADS", "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("ARPSHIELD_THREADS", "0");
        assert!(thread_count() >= 1, "invalid override falls back");

        let run = |threads: &str| {
            std::env::set_var("ARPSHIELD_THREADS", threads);
            let jobs: Vec<_> = (0..40u64)
                .map(|i| {
                    move || {
                        // A little CPU work so threads genuinely interleave.
                        (0..1000).fold(i, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
                    }
                })
                .collect();
            run_indexed(jobs)
        };
        assert_eq!(run("1"), run("8"));

        // A panicking job must surface as a single panic naming the
        // job, not poison the pool or abort the process.
        std::env::set_var("ARPSHIELD_THREADS", "4");
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("boom at {i}");
                    }
                    i
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| run_indexed(jobs))).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "parallel job 5 panicked: boom at 5");

        std::env::remove_var("ARPSHIELD_THREADS");
        assert!(thread_count() >= 1);
    }
}
