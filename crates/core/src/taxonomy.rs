//! Experiment T1: the scheme taxonomy table.

use arpshield_schemes::{Activity, DeployCost, Mode, SchemeClass, SchemeKind};

use crate::report::Table;

fn class_label(c: SchemeClass) -> &'static str {
    match c {
        SchemeClass::HostBased => "host",
        SchemeClass::NetworkMonitor => "network-monitor",
        SchemeClass::SwitchBased => "switch",
        SchemeClass::Cryptographic => "cryptographic",
    }
}

fn mode_label(m: Mode) -> &'static str {
    match m {
        Mode::Detection => "detect",
        Mode::Prevention => "prevent",
        Mode::Both => "detect+prevent",
    }
}

fn activity_label(a: Activity) -> &'static str {
    match a {
        Activity::Passive => "passive",
        Activity::Active => "active",
    }
}

fn cost_label(c: DeployCost) -> &'static str {
    match c {
        DeployCost::Low => "low",
        DeployCost::Medium => "medium",
        DeployCost::High => "high",
    }
}

/// Builds the taxonomy table (T1) from the scheme descriptors.
pub fn table() -> Table {
    let mut t = Table::new(
        "T1: taxonomy of ARP-poisoning defence schemes",
        &["scheme", "exemplar", "class", "mode", "activity", "deploy-cost", "summary"],
    );
    for kind in SchemeKind::all() {
        let d = kind.descriptor();
        t.row([
            d.name,
            d.exemplar,
            class_label(d.class),
            mode_label(d.mode),
            activity_label(d.activity),
            cost_label(d.cost),
            d.summary,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_scheme() {
        let t = table();
        assert_eq!(t.len(), SchemeKind::all().len());
    }

    #[test]
    fn key_claims_present() {
        let text = table().render();
        assert!(text.contains("S-ARP"));
        assert!(text.contains("arpwatch"));
        assert!(text.contains("cryptographic"));
        assert!(text.contains("detect+prevent"));
    }
}
