//! F6: attack dynamics — CAM fill under MAC flooding and DHCP-pool
//! drain under starvation, with and without the switch-level defences.

use std::time::Duration;

use arpshield_attacks::{
    DhcpStarver, DhcpStarverConfig, GroundTruth, MacFlooder, MacFlooderConfig,
};
use arpshield_host::dhcp::DhcpServerConfig;
use arpshield_host::{Host, HostConfig};
use arpshield_netsim::{
    PortId, PortSecurityConfig, SimTime, Simulator, Switch, SwitchConfig, ViolationAction,
};
use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};

use crate::report::Series;
use crate::scenario::lan::addr;

/// F6a: CAM-table occupancy over time under `macof`-rate flooding, with
/// the plain switch vs one running port security.
///
/// The plain switch fills to capacity within seconds (and from then on
/// floods unknown traffic — the fail-open eavesdropping window); port
/// security err-disables the offending port almost immediately.
pub fn f6_flood_dynamics(seed: u64) -> Vec<Series> {
    let mut out = Vec::new();
    for (label, secured) in [("plain-switch", false), ("port-security", true)] {
        let mut sim = Simulator::new(seed);
        let config = SwitchConfig {
            ports: 8,
            cam_capacity: 1024,
            port_security: secured.then_some(PortSecurityConfig {
                max_macs_per_port: 2,
                violation: ViolationAction::ShutdownPort,
            }),
            ..Default::default()
        };
        let (switch, handle) = Switch::new("sw", config);
        let switch = sim.add_device(Box::new(switch));
        let flooder =
            MacFlooder::new(MacFlooderConfig::macof_rate(addr::attacker_mac()), GroundTruth::new());
        let f = sim.add_device(Box::new(flooder));
        sim.connect(f, PortId(0), switch, PortId(1), Duration::from_micros(5)).unwrap();

        let mut series = Series::new(
            format!("F6a[{label}]: CAM occupancy vs time under MAC flooding"),
            "time_s",
            "cam_entries",
        );
        for step in 0..=40u64 {
            sim.run_until(SimTime::from_millis(step * 100));
            series.push(step as f64 * 0.1, handle.cam.borrow().occupancy() as f64);
        }
        out.push(series);
    }
    out
}

/// F6b: free DHCP-pool addresses over time under starvation (pool of
/// 20, handshake-completing starver at 50 discovers/s).
pub fn f6_starvation_dynamics(seed: u64) -> Series {
    let mut sim = Simulator::new(seed);
    let (switch, _) = Switch::new("sw", SwitchConfig { ports: 8, ..Default::default() });
    let switch = sim.add_device(Box::new(switch));

    let gw_ip = Ipv4Addr::new(192, 168, 88, 1);
    let pool_size = 20u32;
    let (gateway, gw_handle) = Host::new(
        HostConfig::static_ip("gw", MacAddr::from_index(100), gw_ip, Ipv4Cidr::new(gw_ip, 24))
            .with_dhcp_server(DhcpServerConfig::home_router(
                Ipv4Addr::new(192, 168, 88, 100),
                pool_size,
                gw_ip,
            )),
    );
    let g = sim.add_device(Box::new(gateway));
    sim.connect(g, PortId(0), switch, PortId(0), Duration::from_micros(5)).unwrap();

    let starver = DhcpStarver::new(
        DhcpStarverConfig {
            attacker_mac: addr::attacker_mac(),
            start_delay: Duration::from_millis(500),
            rate_per_sec: 50,
            complete_handshake: true,
            total: None,
        },
        GroundTruth::new(),
    );
    let s = sim.add_device(Box::new(starver));
    sim.connect(s, PortId(0), switch, PortId(1), Duration::from_micros(5)).unwrap();

    let server = gw_handle.dhcp_server.as_ref().unwrap().clone();
    let mut series =
        Series::new("F6b: free DHCP pool addresses vs time under starvation", "time_s", "free");
    for step in 0..=20u64 {
        sim.run_until(SimTime::from_millis(step * 200));
        let free = pool_size as usize - server.borrow().taken().min(pool_size as usize);
        series.push(step as f64 * 0.2, free as f64);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_fills_plain_switch_but_not_secured_one() {
        let series = f6_flood_dynamics(6);
        let plain_final = series[0].points().last().unwrap().1;
        let secured_final = series[1].points().last().unwrap().1;
        assert!(plain_final >= 1024.0, "plain CAM should fill: {plain_final}");
        assert!(secured_final <= 3.0, "port security should contain: {secured_final}");
    }

    #[test]
    fn starvation_drains_the_pool() {
        let series = f6_starvation_dynamics(6);
        let first = series.points().first().unwrap().1;
        let last = series.points().last().unwrap().1;
        assert_eq!(first, 20.0);
        assert_eq!(last, 0.0, "pool should be empty by the end");
    }
}
