//! T4: false positives under benign churn.

use std::collections::BTreeMap;
use std::time::Duration;

use arpshield_schemes::SchemeKind;

use crate::parallel::run_indexed;
use crate::report::Table;
use crate::scenario::{BenignScenario, ChurnConfig, ScenarioConfig};

/// T4: alerts raised by each scheme on an attack-free LAN with DHCP
/// lease churn, roaming clients, gratuitous boot announcements, and one
/// NIC replacement.
///
/// Every alert here is a false positive. The expected shape: binding-
/// database schemes (passive, stateful, hybrid) pay for churn; probing
/// schemes pay less (the probe answer matches the new reality); S-ARP
/// and DAI pay nothing for *churn* but can deny service to unenrolled
/// stations instead (visible in their columns).
pub fn t4_false_positives(seed: u64) -> Table {
    let mut table = Table::new(
        "T4: false positives under benign churn (30 s, 3 DHCP roamers, pool=2, 1 NIC swap)",
        &["scheme", "false-positives", "dominant-alert-kinds"],
    );
    // One 30 s benign-churn run per scheme, fanned out.
    let jobs: Vec<_> = SchemeKind::all()
        .map(|scheme| {
            move || {
                let config = ScenarioConfig::new(seed)
                    .with_hosts(3)
                    .with_scheme(scheme)
                    .with_duration(Duration::from_secs(30));
                let run = BenignScenario::new(config, ChurnConfig::default()).run();
                let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
                for alert in run.lan.alerts.alerts() {
                    *kinds.entry(format!("{:?}", alert.kind)).or_insert(0) += 1;
                }
                let breakdown = if kinds.is_empty() {
                    "—".to_string()
                } else {
                    kinds.iter().map(|(k, n)| format!("{k}×{n}")).collect::<Vec<_>>().join(" ")
                };
                [scheme.label().to_string(), run.false_positives.to_string(), breakdown]
            }
        })
        .into_iter()
        .collect();
    for row in run_indexed(jobs) {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_key_contrasts() {
        let t = t4_false_positives(7);
        assert_eq!(t.len(), SchemeKind::all().len());
        let fp_of = |name: &str| -> usize {
            for r in 0..t.len() {
                if t.cell(r, 0) == Some(name) {
                    return t.cell(r, 1).unwrap().parse().unwrap();
                }
            }
            panic!("no row for {name}");
        };
        assert_eq!(fp_of("none"), 0);
        assert_eq!(fp_of("static-arp"), 0);
        assert!(fp_of("passive") > 0, "churn must trip arpwatch");
    }
}
