//! T6S: simulator scalability sweep — 10^3 to 10^5 stations.
//!
//! Unlike T1–T5 this experiment measures the *simulator*, not a
//! detection scheme: the timing-wheel scheduler, the recycling frame
//! pool, and the flat port arena all exist so one simulation can hold
//! an enterprise-sized segment. The sweep runs the two-tier fabric
//! from [`crate::scenario::scale`] at increasing station counts and
//! reports deterministic wire-level rates.
//!
//! Wall-clock throughput is printed to **stderr** only: elapsed time
//! varies run to run, and the CSVs on stdout must stay byte-identical
//! across reruns and thread counts (the CI smoke diffs
//! `ARPSHIELD_THREADS=1` against `4`).

use std::time::Instant;

use crate::parallel::run_indexed;
use crate::report::Series;
use crate::scenario::scale::{build, ScaleConfig};

/// The default host counts the published sweep covers.
pub const T6S_SIZES: &[usize] = &[1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000];

/// Spoofing stations in the defended sweep — fixed like the churner
/// set, so the attack rate stays constant as the fabric grows.
const T6SD_SPOOFERS: usize = 8;

/// T6S: wire throughput and per-host traffic versus station count.
///
/// Two series: frames per simulated second (grows linearly with hosts
/// while per-station rates are constant — any super-linear bend means
/// broadcast fan-out or CAM thrash crept in), and wire bytes per host
/// (flat, for the same reason).
pub fn t6_scale(seed: u64, sizes: &[usize]) -> Vec<Series> {
    let jobs: Vec<_> = sizes
        .iter()
        .map(|&n| {
            move || {
                let config = ScaleConfig::new(seed, n);
                let mut lan = build(config);
                let started = Instant::now();
                lan.sim.run_until(arpshield_netsim::SimTime::ZERO + config.duration);
                let stats = lan.sim.wire_stats();
                (stats.frames, stats.bytes, config.duration.as_secs_f64(), started.elapsed())
            }
        })
        .collect();

    let mut frames_rate =
        Series::new("T6S: frames per simulated second vs hosts", "hosts", "frames_per_sim_sec");
    let mut bytes_per_host =
        Series::new("T6S: wire bytes per host vs hosts", "hosts", "bytes_per_host");
    for (&n, (frames, bytes, sim_secs, elapsed)) in sizes.iter().zip(run_indexed(jobs)) {
        frames_rate.push(n as f64, frames as f64 / sim_secs);
        bytes_per_host.push(n as f64, bytes as f64 / n as f64);
        // Wall-clock rate is machine-dependent diagnostics, not data.
        eprintln!(
            "t6s: {n} hosts, {frames} frames in {:.2}s wall ({:.0} frames/s wall)",
            elapsed.as_secs_f64(),
            frames as f64 / elapsed.as_secs_f64().max(1e-9),
        );
    }
    vec![frames_rate, bytes_per_host]
}

/// T6SD: detection overhead *inside* the scaled fabric.
///
/// Each sweep point builds the per-leaf VLAN fabric twice with an
/// identical offered load — background refresh chatter, DHCP churners,
/// and a fixed set of gateway spoofers — once undefended and once with
/// per-VLAN DAI on the root and every leaf uplink. Four series come
/// out: wire throughput for both variants (their gap is the traffic
/// DAI absorbed plus fan-out it prevented), the DAI denial count, and
/// DAI's accounted work units. Only deterministic sim counters are
/// reported — wall-clock rates go to stderr, so the CSVs stay
/// byte-identical at any `ARPSHIELD_THREADS`.
pub fn t6_scale_defended(seed: u64, sizes: &[usize]) -> Vec<Series> {
    let jobs: Vec<_> = sizes
        .iter()
        .map(|&n| {
            move || {
                let run = |config: ScaleConfig| {
                    let mut lan = build(config);
                    let started = Instant::now();
                    lan.sim.run_until(arpshield_netsim::SimTime::ZERO + config.duration);
                    let denied = lan.inspector_drops();
                    let work = lan.alerts.as_ref().map_or(0, |log| log.work_of("dai"));
                    (lan.sim.wire_stats().frames, denied, work, started.elapsed())
                };
                let base = ScaleConfig::new(seed, n).with_spoofers(T6SD_SPOOFERS);
                let (open_frames, _, _, open_wall) = run(base.with_vlan_fabric());
                let (dai_frames, denied, work, dai_wall) = run(base.with_dai());
                let sim_secs = base.duration.as_secs_f64();
                (open_frames, dai_frames, denied, work, sim_secs, open_wall, dai_wall)
            }
        })
        .collect();

    let mut open_rate = Series::new(
        "T6SD: frames per simulated second vs hosts (undefended VLAN fabric)",
        "hosts",
        "frames_per_sim_sec",
    );
    let mut dai_rate = Series::new(
        "T6SD: frames per simulated second vs hosts (DAI in fabric)",
        "hosts",
        "frames_per_sim_sec",
    );
    let mut dai_denied = Series::new("T6SD: DAI denied frames vs hosts", "hosts", "denied_frames");
    let mut dai_work = Series::new("T6SD: DAI work units vs hosts", "hosts", "dai_work_units");
    for (&n, (open_frames, dai_frames, denied, work, sim_secs, open_wall, dai_wall)) in
        sizes.iter().zip(run_indexed(jobs))
    {
        open_rate.push(n as f64, open_frames as f64 / sim_secs);
        dai_rate.push(n as f64, dai_frames as f64 / sim_secs);
        dai_denied.push(n as f64, denied as f64);
        dai_work.push(n as f64, work as f64);
        // Wall-clock rate is machine-dependent diagnostics, not data.
        eprintln!(
            "t6sd: {n} hosts, open {open_frames} frames in {:.2}s wall, \
             dai {dai_frames} frames in {:.2}s wall ({denied} denied, {work} work units)",
            open_wall.as_secs_f64(),
            dai_wall.as_secs_f64(),
        );
    }
    vec![open_rate, dai_rate, dai_denied, dai_work]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_host_traffic_stays_flat_as_the_lan_grows() {
        let series = t6_scale(5, &[500, 2_000]);
        let frames = series[0].points();
        let per_host = series[1].points();
        // Linear scaling: 4x hosts => ~4x frames/sec.
        let ratio = frames[1].1 / frames[0].1;
        assert!((3.0..5.0).contains(&ratio), "frames/sec ratio {ratio}");
        // Bytes per host within 20% across sizes (churners amortise).
        let drift = (per_host[1].1 - per_host[0].1).abs() / per_host[0].1;
        assert!(drift < 0.2, "bytes/host drifted {drift}");
    }

    #[test]
    fn defended_sweep_reports_denials_and_costs_throughput() {
        let series = t6_scale_defended(5, &[700]);
        let open = series[0].points()[0].1;
        let dai = series[1].points()[0].1;
        let denied = series[2].points()[0].1;
        let work = series[3].points()[0].1;
        // Spoofed frames die at the leaf inspectors, so the defended
        // fabric carries strictly fewer frames than the open one.
        assert!(denied > 0.0, "spoofers must trip DAI");
        assert!(work > 0.0, "DAI work must be accounted");
        assert!(dai < open, "defended rate {dai} should trail open rate {open}");
    }
}
