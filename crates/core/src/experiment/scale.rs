//! T6S: simulator scalability sweep — 10^3 to 10^5 stations.
//!
//! Unlike T1–T5 this experiment measures the *simulator*, not a
//! detection scheme: the timing-wheel scheduler, the recycling frame
//! pool, and the flat port arena all exist so one simulation can hold
//! an enterprise-sized segment. The sweep runs the two-tier fabric
//! from [`crate::scenario::scale`] at increasing station counts and
//! reports deterministic wire-level rates.
//!
//! Wall-clock throughput is printed to **stderr** only: elapsed time
//! varies run to run, and the CSVs on stdout must stay byte-identical
//! across reruns and thread counts (the CI smoke diffs
//! `ARPSHIELD_THREADS=1` against `4`).

use std::time::Instant;

use crate::parallel::run_indexed;
use crate::report::Series;
use crate::scenario::scale::{build, ScaleConfig};

/// The default host counts the published sweep covers.
pub const T6S_SIZES: &[usize] = &[1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000];

/// T6S: wire throughput and per-host traffic versus station count.
///
/// Two series: frames per simulated second (grows linearly with hosts
/// while per-station rates are constant — any super-linear bend means
/// broadcast fan-out or CAM thrash crept in), and wire bytes per host
/// (flat, for the same reason).
pub fn t6_scale(seed: u64, sizes: &[usize]) -> Vec<Series> {
    let jobs: Vec<_> = sizes
        .iter()
        .map(|&n| {
            move || {
                let config = ScaleConfig::new(seed, n);
                let mut lan = build(config);
                let started = Instant::now();
                lan.sim.run_until(arpshield_netsim::SimTime::ZERO + config.duration);
                let stats = lan.sim.wire_stats();
                (stats.frames, stats.bytes, config.duration.as_secs_f64(), started.elapsed())
            }
        })
        .collect();

    let mut frames_rate =
        Series::new("T6S: frames per simulated second vs hosts", "hosts", "frames_per_sim_sec");
    let mut bytes_per_host =
        Series::new("T6S: wire bytes per host vs hosts", "hosts", "bytes_per_host");
    for (&n, (frames, bytes, sim_secs, elapsed)) in sizes.iter().zip(run_indexed(jobs)) {
        frames_rate.push(n as f64, frames as f64 / sim_secs);
        bytes_per_host.push(n as f64, bytes as f64 / n as f64);
        // Wall-clock rate is machine-dependent diagnostics, not data.
        eprintln!(
            "t6s: {n} hosts, {frames} frames in {:.2}s wall ({:.0} frames/s wall)",
            elapsed.as_secs_f64(),
            frames as f64 / elapsed.as_secs_f64().max(1e-9),
        );
    }
    vec![frames_rate, bytes_per_host]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_host_traffic_stays_flat_as_the_lan_grows() {
        let series = t6_scale(5, &[500, 2_000]);
        let frames = series[0].points();
        let per_host = series[1].points();
        // Linear scaling: 4x hosts => ~4x frames/sec.
        let ratio = frames[1].1 / frames[0].1;
        assert!((3.0..5.0).contains(&ratio), "frames/sec ratio {ratio}");
        // Bytes per host within 20% across sizes (churners amortise).
        let drift = (per_host[1].1 - per_host[0].1).abs() / per_host[0].1;
        assert!(drift < 0.2, "bytes/host drifted {drift}");
    }
}
