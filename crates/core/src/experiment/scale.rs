//! T6S: simulator scalability sweep — 10^3 to 10^5 stations.
//!
//! Unlike T1–T5 this experiment measures the *simulator*, not a
//! detection scheme: the timing-wheel scheduler, the recycling frame
//! pool, and the flat port arena all exist so one simulation can hold
//! an enterprise-sized segment. The sweep runs the two-tier fabric
//! from [`crate::scenario::scale`] at increasing station counts and
//! reports deterministic wire-level rates.
//!
//! Wall-clock telemetry goes to **stderr** only, through the shared
//! [`Heartbeat`] reporter: elapsed time varies run to run, and the CSVs
//! on stdout must stay byte-identical across reruns and thread counts
//! (the CI smoke diffs `ARPSHIELD_THREADS=1` against `4`).
//! `ARPSHIELD_QUIET=1` silences the reporter entirely. Each sweep
//! point advances the simulator in fixed sim-time chunks so the
//! reporter gets periodic wall-clock sampling opportunities — the chunk
//! boundaries are deterministic simulated instants, so chunking cannot
//! perturb event order or any exported counter.

use std::time::{Duration, Instant};

use arpshield_netsim::SimTime;
use arpshield_trace::{profile, Heartbeat};

use crate::parallel::run_indexed;
use crate::report::Series;
use crate::scenario::scale::{build, ScaleConfig, ScaleLan};

/// The default host counts the published sweep covers.
pub const T6S_SIZES: &[usize] = &[1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000];

/// Spoofing stations in the defended sweep — fixed like the churner
/// set, so the attack rate stays constant as the fabric grows.
const T6SD_SPOOFERS: usize = 8;

/// Sim-time chunks per sweep point: each boundary is a heartbeat and
/// gauge sampling opportunity. 64 keeps per-chunk overhead invisible
/// while giving a multi-second point plenty of progress lines.
const RUN_CHUNKS: u32 = 64;

/// Drives `lan` to `duration` in deterministic sim-time chunks,
/// heartbeating progress and sampling the runtime gauges at every
/// boundary. Returns the reporter so the caller can emit its `done`
/// line with experiment-specific detail.
fn run_measured(lan: &mut ScaleLan, duration: Duration, label: String) -> Heartbeat {
    let mut hb = Heartbeat::new(label);
    let _run = profile::span("sim.run");
    let end = SimTime::ZERO + duration;
    let chunk = (duration / RUN_CHUNKS).max(Duration::from_nanos(1));
    let mut next = SimTime::ZERO;
    while next < end {
        next = (next + chunk).min(end);
        {
            let _s = profile::span("sim.run_until");
            lan.sim.run_until(next);
        }
        profile::gauge("wheel.occupancy", lan.sim.queue_depth() as u64);
        profile::gauge("wheel.fallback_depth", lan.sim.queue_fallback_depth() as u64);
        let pool = arpshield_netsim::pool_stats();
        profile::gauge("pool.hit_rate_pct", (pool.hit_rate() * 100.0) as u64);
        // The in-switch sampling point rides the CAM aging sweep, whose
        // interval can exceed a short sweep's whole duration — sample
        // the root CAM here too so every t6s profile carries it.
        profile::gauge("switch.cam.size", lan.root.cam.borrow().occupancy() as u64);
        let stats = lan.sim.wire_stats();
        hb.tick(|hb| {
            let wall_s = hb.elapsed().as_secs_f64().max(1e-9);
            let fraction = next.as_nanos() as f64 / end.as_nanos().max(1) as f64;
            let eta = hb.eta_secs(fraction).unwrap_or(0.0);
            format!(
                "sim_ms={}/{} frames={} frames_per_wall_s={:.0} events_per_wall_s={:.0} \
                 wheel={} fallback={} pool_hit_pct={:.0} eta_s={eta:.1}",
                next.as_nanos() / 1_000_000,
                end.as_nanos() / 1_000_000,
                stats.frames,
                stats.frames as f64 / wall_s,
                (stats.frames + stats.timers) as f64 / wall_s,
                lan.sim.queue_depth(),
                lan.sim.queue_fallback_depth(),
                pool.hit_rate() * 100.0,
            )
        });
    }
    hb
}

/// T6S: wire throughput and per-host traffic versus station count.
///
/// Two series: frames per simulated second (grows linearly with hosts
/// while per-station rates are constant — any super-linear bend means
/// broadcast fan-out or CAM thrash crept in), and wire bytes per host
/// (flat, for the same reason).
pub fn t6_scale(seed: u64, sizes: &[usize]) -> Vec<Series> {
    let jobs: Vec<_> = sizes
        .iter()
        .map(|&n| {
            move || {
                // The job root span makes sum(self over the whole tree)
                // telescope to this job's wall time, which is what the
                // profile coverage gate in ci.sh checks.
                let _job = profile::span("t6s.job");
                let config = ScaleConfig::new(seed, n);
                let mut lan = {
                    let _s = profile::span("t6s.build");
                    build(config)
                };
                let started = Instant::now();
                let hb = run_measured(&mut lan, config.duration, format!("t6s hosts={n}"));
                let stats = lan.sim.wire_stats();
                hb.done(&format!(
                    "frames={} frames_per_wall_s={:.0}",
                    stats.frames,
                    stats.frames as f64 / hb.elapsed().as_secs_f64().max(1e-9),
                ));
                (stats.frames, stats.bytes, config.duration.as_secs_f64(), started.elapsed())
            }
        })
        .collect();

    let mut frames_rate =
        Series::new("T6S: frames per simulated second vs hosts", "hosts", "frames_per_sim_sec");
    let mut bytes_per_host =
        Series::new("T6S: wire bytes per host vs hosts", "hosts", "bytes_per_host");
    for (&n, (frames, bytes, sim_secs, _elapsed)) in sizes.iter().zip(run_indexed(jobs)) {
        frames_rate.push(n as f64, frames as f64 / sim_secs);
        bytes_per_host.push(n as f64, bytes as f64 / n as f64);
    }
    vec![frames_rate, bytes_per_host]
}

/// T6SD: detection overhead *inside* the scaled fabric.
///
/// Each sweep point builds the per-leaf VLAN fabric twice with an
/// identical offered load — background refresh chatter, DHCP churners,
/// and a fixed set of gateway spoofers — once undefended and once with
/// per-VLAN DAI on the root and every leaf uplink. Four series come
/// out: wire throughput for both variants (their gap is the traffic
/// DAI absorbed plus fan-out it prevented), the DAI denial count, and
/// DAI's accounted work units. Only deterministic sim counters are
/// reported — wall-clock rates go to stderr, so the CSVs stay
/// byte-identical at any `ARPSHIELD_THREADS`.
pub fn t6_scale_defended(seed: u64, sizes: &[usize]) -> Vec<Series> {
    let jobs: Vec<_> = sizes
        .iter()
        .map(|&n| {
            move || {
                let _job = profile::span("t6sd.job");
                let run = |config: ScaleConfig, variant: &str| {
                    let mut lan = {
                        let _s = profile::span("t6sd.build");
                        build(config)
                    };
                    let hb = run_measured(
                        &mut lan,
                        config.duration,
                        format!("t6sd[{variant}] hosts={n}"),
                    );
                    let denied = lan.inspector_drops();
                    let work = lan.alerts.as_ref().map_or(0, |log| log.work_of("dai"));
                    let frames = lan.sim.wire_stats().frames;
                    hb.done(&format!("frames={frames} denied={denied} work_units={work}"));
                    (frames, denied, work)
                };
                let base = ScaleConfig::new(seed, n).with_spoofers(T6SD_SPOOFERS);
                let (open_frames, _, _) = run(base.with_vlan_fabric(), "open");
                let (dai_frames, denied, work) = run(base.with_dai(), "dai");
                let sim_secs = base.duration.as_secs_f64();
                (open_frames, dai_frames, denied, work, sim_secs)
            }
        })
        .collect();

    let mut open_rate = Series::new(
        "T6SD: frames per simulated second vs hosts (undefended VLAN fabric)",
        "hosts",
        "frames_per_sim_sec",
    );
    let mut dai_rate = Series::new(
        "T6SD: frames per simulated second vs hosts (DAI in fabric)",
        "hosts",
        "frames_per_sim_sec",
    );
    let mut dai_denied = Series::new("T6SD: DAI denied frames vs hosts", "hosts", "denied_frames");
    let mut dai_work = Series::new("T6SD: DAI work units vs hosts", "hosts", "dai_work_units");
    for (&n, (open_frames, dai_frames, denied, work, sim_secs)) in
        sizes.iter().zip(run_indexed(jobs))
    {
        open_rate.push(n as f64, open_frames as f64 / sim_secs);
        dai_rate.push(n as f64, dai_frames as f64 / sim_secs);
        dai_denied.push(n as f64, denied as f64);
        dai_work.push(n as f64, work as f64);
    }
    vec![open_rate, dai_rate, dai_denied, dai_work]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_host_traffic_stays_flat_as_the_lan_grows() {
        let series = t6_scale(5, &[500, 2_000]);
        let frames = series[0].points();
        let per_host = series[1].points();
        // Linear scaling: 4x hosts => ~4x frames/sec.
        let ratio = frames[1].1 / frames[0].1;
        assert!((3.0..5.0).contains(&ratio), "frames/sec ratio {ratio}");
        // Bytes per host within 20% across sizes (churners amortise).
        let drift = (per_host[1].1 - per_host[0].1).abs() / per_host[0].1;
        assert!(drift < 0.2, "bytes/host drifted {drift}");
    }

    #[test]
    fn defended_sweep_reports_denials_and_costs_throughput() {
        let series = t6_scale_defended(5, &[700]);
        let open = series[0].points()[0].1;
        let dai = series[1].points()[0].1;
        let denied = series[2].points()[0].1;
        let work = series[3].points()[0].1;
        // Spoofed frames die at the leaf inspectors, so the defended
        // fabric carries strictly fewer frames than the open one.
        assert!(denied > 0.0, "spoofers must trip DAI");
        assert!(work > 0.0, "DAI work must be accounted");
        assert!(dai < open, "defended rate {dai} should trail open rate {open}");
    }
}
