//! T2 (attack × policy susceptibility) and T3 (scheme × attack
//! coverage), the two matrices at the heart of the analysis.

use std::time::Duration;

use arpshield_attacks::PoisonVariant;
use arpshield_host::ArpPolicy;
use arpshield_schemes::SchemeKind;

use crate::metrics::score_attack_run;
use crate::parallel::run_indexed;
use crate::report::Table;
use crate::scenario::{AttackScenario, ScenarioConfig};

fn quick_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig::new(seed)
        .with_hosts(4)
        .with_duration(Duration::from_secs(10))
        // Short cache lifetime so victims re-resolve during the run —
        // the reply-race variant needs a genuine request to answer.
        .with_arp_timeout(Duration::from_secs(4))
}

/// T2: which poisoning variants succeed against which unprotected ARP
/// acceptance policies.
///
/// Rows are attack variants, columns cache policies; a cell reads
/// `poisoned` when the victim's cache held the forged binding at any
/// point after the attack began.
pub fn t2_susceptibility(seed: u64) -> Table {
    let policies = ArpPolicy::all();
    let mut headers: Vec<&str> = vec!["attack \\ policy"];
    headers.extend(policies.iter().map(|p| p.label()));
    let mut table = Table::new(
        "T2: poisoning-variant susceptibility by ARP acceptance policy (unprotected hosts)",
        &headers,
    );
    // Every cell is an independent seeded run; fan the grid out and
    // merge in index order (row-major), so the table is byte-identical
    // to a sequential fill.
    let mut jobs = Vec::new();
    for variant in PoisonVariant::all() {
        for policy in policies {
            jobs.push(move || {
                let run = AttackScenario::poisoning(
                    quick_config(seed ^ variant.label().len() as u64).with_policy(policy),
                    variant,
                )
                .run();
                let poisoned = run.samples.borrow().ever_poisoned();
                poisoned
            });
        }
    }
    let mut cells = run_indexed(jobs).into_iter();
    for variant in PoisonVariant::all() {
        let mut row = vec![variant.label().to_string()];
        for _ in policies {
            let poisoned = cells.next().expect("one result per cell");
            row.push(if poisoned { "poisoned".to_string() } else { "safe".to_string() });
        }
        table.row(row);
    }
    table
}

/// The attack columns of the coverage matrix.
pub(crate) fn t3_attacks() -> Vec<PoisonVariant> {
    PoisonVariant::all().to_vec()
}

/// T3: scheme × attack coverage.
///
/// Cells: `P` prevented, `D(latency)` detected, `P+D`, `-` missed. The
/// victim runs the `Standard` policy (the common default), except where
/// a scheme mandates its own.
pub fn t3_coverage(seed: u64) -> Table {
    let attacks = t3_attacks();
    let mut headers: Vec<String> = vec!["scheme \\ attack".to_string()];
    headers.extend(attacks.iter().map(|a| a.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table =
        Table::new("T3: scheme x attack coverage (P=prevented, D=detected)", &header_refs);
    // Row-major fan-out over the whole scheme × attack grid. The seed
    // derivation mirrors the sequential fill (`row.len()` was 1 + the
    // 0-based attack column when each cell was built).
    let mut jobs = Vec::new();
    for scheme in SchemeKind::all() {
        for (column, variant) in attacks.iter().enumerate() {
            let variant = *variant;
            jobs.push(move || {
                // Promiscuous victim for the baseline-sensitivity attacks, so
                // prevention differences come from the scheme, not the OS
                // policy; schemes that mandate a policy override it anyway.
                let config = quick_config(seed ^ (column as u64 + 1) << 8)
                    .with_scheme(scheme)
                    .with_policy(ArpPolicy::Promiscuous);
                let run = AttackScenario::poisoning(config, variant).run();
                score_attack_run(&run).cell()
            });
        }
    }
    let mut cells = run_indexed(jobs).into_iter();
    for scheme in SchemeKind::all() {
        let mut row = vec![scheme.label().to_string()];
        for _ in &attacks {
            row.push(cells.next().expect("one result per cell"));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_shape_and_extremes() {
        let t = t2_susceptibility(1);
        assert_eq!(t.len(), PoisonVariant::all().len());
        // Static-only column is entirely safe; promiscuous column is
        // entirely poisoned.
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 1), Some("poisoned"), "promiscuous row {row}");
            assert_eq!(t.cell(row, 4), Some("safe"), "static-only row {row}");
        }
    }

    #[test]
    fn t2_standard_policy_nuances() {
        let t = t2_susceptibility(1);
        // Row order = PoisonVariant::all(). Standard policy (column 2):
        // gratuitous-reply updates the existing entry -> poisoned;
        // unicast-request creates (addressed to us) -> poisoned.
        let label = |r: usize| t.cell(r, 0).unwrap().to_string();
        for r in 0..t.len() {
            match label(r).as_str() {
                "gratuitous-reply" | "unicast-request" | "reply-race" | "unicast-reply" => {
                    assert_eq!(t.cell(r, 2), Some("poisoned"), "{}", label(r));
                }
                _ => {}
            }
        }
        // No-unsolicited (column 3) stops plain unsolicited replies but
        // not the race.
        for r in 0..t.len() {
            match label(r).as_str() {
                "unicast-reply" | "blackhole-dos" => {
                    assert_eq!(t.cell(r, 3), Some("safe"), "{}", label(r));
                }
                "reply-race" => assert_eq!(t.cell(r, 3), Some("poisoned")),
                _ => {}
            }
        }
    }

    // T3 is exercised end-to-end by the integration suite (it is the
    // most expensive table); key individual cells are asserted in
    // `tests/coverage_matrix.rs` at the workspace root.
}
