//! T5: the per-scheme cost ledger (CPU proxy, wire footprint).

use std::time::Duration;

use arpshield_attacks::PoisonVariant;
use arpshield_schemes::SchemeKind;

use crate::report::Table;
use crate::scenario::{AttackScenario, ScenarioConfig};

/// T5: what each scheme costs, measured over an identical 15-second
/// workload (6 hosts pinging the gateway, one persistent unicast-reply
/// poisoner).
///
/// Columns:
/// * `work-units` — abstract CPU charged by the scheme (1 ≈ one header
///   inspection; a signature verification is ~900, see
///   [`arpshield_schemes::work`]);
/// * `host-work` — work charged inside host stacks (hooks, S-ARP
///   signing);
/// * `wire-frames`/`wire-kB` — total frames/bytes the LAN carried, so
///   active schemes' probe and key traffic shows up as the delta over
///   the `none` row.
pub fn t5_cost(seed: u64) -> Table {
    let mut table = Table::new(
        "T5: per-scheme cost over an identical 15 s attacked workload",
        &["scheme", "work-units", "host-work", "wire-frames", "wire-kB"],
    );
    for scheme in SchemeKind::all() {
        let config = ScenarioConfig::new(seed)
            .with_hosts(6)
            .with_scheme(scheme)
            .with_duration(Duration::from_secs(15));
        let run = AttackScenario::poisoning(config, PoisonVariant::UnicastReply).run();
        let scheme_work = run.lan.alerts.total_work();
        let host_work: u64 = run.lan.hosts.iter().map(|h| h.stats.borrow().work_units).sum::<u64>()
            + run.lan.gateway.stats.borrow().work_units;
        let wire = run.lan.sim.wire_stats();
        table.row([
            scheme.label().to_string(),
            scheme_work.to_string(),
            host_work.to_string(),
            wire.frames.to_string(),
            format!("{:.1}", wire.bytes as f64 / 1024.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crypto_dominates_cost() {
        let t = t5_cost(3);
        let col = |name: &str, c: usize| -> f64 {
            for r in 0..t.len() {
                if t.cell(r, 0) == Some(name) {
                    return t.cell(r, c).unwrap().parse().unwrap();
                }
            }
            panic!("no row {name}");
        };
        // S-ARP's signature work dwarfs the passive monitor's header
        // inspections — the paper's central cost contrast.
        let sarp_total = col("sarp", 1) + col("sarp", 2);
        let passive_total = col("passive", 1) + col("passive", 2);
        assert!(sarp_total > 5.0 * passive_total, "sarp {sarp_total} vs passive {passive_total}");
        // The baseline spends nothing.
        assert_eq!(col("none", 1), 0.0);
        assert_eq!(col("none", 2), 0.0);
    }
}
