//! The evaluation experiments, one function per table/figure.
//!
//! Every experiment is deterministic: same seed, same bytes out. The
//! `reproduce` binary in `arpshield-bench` prints them all; the mapping
//! to the paper's evaluation is documented in `DESIGN.md` and the
//! measured results in `EXPERIMENTS.md`.

mod cost;
mod dos_coverage;
mod dynamics;
mod fp;
mod latency;
mod matrix;
mod overhead;
mod poisoned;
mod resilience;
mod scale;

pub use cost::t5_cost;
pub use dos_coverage::t6_dos_coverage;
pub use dynamics::{f6_flood_dynamics, f6_starvation_dynamics};
pub use fp::t4_false_positives;
pub use latency::{f1_detection_latency, f3_resolution_latency};
pub use matrix::{t2_susceptibility, t3_coverage};
pub use overhead::{f2_overhead, f5_passive_scale};
pub use poisoned::f4_poisoned_time;
pub use resilience::{t5_resilience, LOSS_GRID};
pub use scale::{t6_scale, t6_scale_defended, T6S_SIZES};

/// The scheme subset the detection-latency figure sweeps (the ones that
/// raise alerts at all).
pub(crate) fn detecting_schemes() -> Vec<arpshield_schemes::SchemeKind> {
    use arpshield_schemes::SchemeKind::*;
    vec![Passive, Stateful, ActiveProbe, Hybrid, Antidote, Dai, SArp]
}
