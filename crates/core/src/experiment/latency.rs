//! F1 (detection latency CDFs) and F3 (address-resolution latency under
//! S-ARP).

use std::time::Duration;

use arpshield_attacks::PoisonVariant;
use arpshield_schemes::SchemeKind;

use crate::experiment::detecting_schemes;
use crate::metrics::score_attack_run;
use crate::parallel::run_indexed;
use crate::report::{Series, Table};
use crate::scenario::{AttackScenario, ScenarioConfig};

/// F1: per-scheme CDFs of detection latency over `runs` seeded attacks
/// (alternating gratuitous-reply and unicast-reply poisoning).
///
/// Returns one CDF per detecting scheme; schemes that missed every run
/// return an empty series (which the report prints as such).
pub fn f1_detection_latency(seed: u64, runs: u32) -> Vec<Series> {
    // Each (scheme, run) pair is an independent seeded attack; fan the
    // whole sweep out and regroup per scheme in index order.
    let schemes = detecting_schemes();
    let mut jobs = Vec::new();
    for &scheme in &schemes {
        for i in 0..runs {
            jobs.push(move || {
                let variant = if i % 2 == 0 {
                    PoisonVariant::GratuitousReply
                } else {
                    PoisonVariant::UnicastReply
                };
                let config = ScenarioConfig::new(seed.wrapping_add(u64::from(i) * 7919))
                    .with_hosts(4)
                    .with_scheme(scheme)
                    .with_duration(Duration::from_secs(8))
                    .with_policy(arpshield_host::ArpPolicy::Promiscuous);
                let run = AttackScenario::poisoning(config, variant).run();
                score_attack_run(&run).detection_latency.map(|l| l.as_secs_f64() * 1e3)
            });
        }
    }
    let latencies = run_indexed(jobs);
    schemes
        .iter()
        .enumerate()
        .map(|(s, scheme)| {
            let per_scheme = &latencies[s * runs as usize..(s + 1) * runs as usize];
            let samples_ms: Vec<f64> = per_scheme.iter().filter_map(|l| *l).collect();
            Series::cdf(
                format!(
                    "F1[{}]: detection latency CDF ({} of {} attacks detected)",
                    scheme.label(),
                    samples_ms.len(),
                    runs
                ),
                "latency_ms",
                samples_ms,
            )
        })
        .collect()
}

/// F3: mean ARP resolution latency — plain ARP vs S-ARP vs TARP (first,
/// key-cold resolution vs later, key-warm ones).
///
/// Measured on a dedicated two-host exchange: host A resolves the
/// gateway, the entry is flushed, A resolves again. Under S-ARP the
/// first resolution pays sign + AKD round trip + verify; the repeat pays
/// sign + verify only; plain ARP pays neither.
pub fn f3_resolution_latency(seed: u64) -> Table {
    let mut table = Table::new(
        "F3: address-resolution latency, plain ARP vs S-ARP",
        &["configuration", "cold_us", "warm_us", "overhead_vs_plain_cold"],
    );
    let measure = |scheme: SchemeKind| -> (f64, f64) {
        let config = ScenarioConfig::new(seed)
            .with_hosts(1)
            .with_scheme(scheme)
            .with_duration(Duration::from_secs(4));
        let mut lan = crate::scenario::lan::build(config);
        // Segment 1: cold resolution happens with the first ping.
        lan.sim.run_until(arpshield_netsim::SimTime::from_secs(2));
        let (cold_total, cold_n) = {
            let stats = lan.hosts[0].stats.borrow();
            (stats.resolution_latency_total, stats.resolutions_completed)
        };
        // Flush and resolve again: warm (keys cached under S-ARP).
        lan.hosts[0].cache.borrow_mut().remove(crate::scenario::lan::addr::GATEWAY_IP);
        lan.sim.run_until(arpshield_netsim::SimTime::from_secs(4));
        let (total, n) = {
            let stats = lan.hosts[0].stats.borrow();
            (stats.resolution_latency_total, stats.resolutions_completed)
        };
        assert!(cold_n >= 1 && n > cold_n, "resolution did not occur: {cold_n}/{n}");
        let cold = cold_total.as_secs_f64() / cold_n as f64 * 1e6;
        let warm = (total - cold_total).as_secs_f64() / (n - cold_n) as f64 * 1e6;
        (cold, warm)
    };
    // Three independent configurations; run them concurrently.
    let measured = run_indexed(
        [SchemeKind::None, SchemeKind::SArp, SchemeKind::Tarp]
            .map(|scheme| move || measure(scheme))
            .into_iter()
            .collect(),
    );
    let [(plain_cold, plain_warm), (sarp_cold, sarp_warm), (tarp_cold, tarp_warm)] =
        measured[..].try_into().expect("one measurement per configuration");
    table.row([
        "plain-arp".to_string(),
        format!("{plain_cold:.1}"),
        format!("{plain_warm:.1}"),
        "1.0x".to_string(),
    ]);
    table.row([
        "sarp (key-cold / key-warm)".to_string(),
        format!("{sarp_cold:.1}"),
        format!("{sarp_warm:.1}"),
        format!("{:.1}x", sarp_cold / plain_cold),
    ]);
    table.row([
        "tarp (ticket verify only)".to_string(),
        format!("{tarp_cold:.1}"),
        format!("{tarp_warm:.1}"),
        format!("{:.1}x", tarp_cold / plain_cold),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_sarp_pays_more_cold_than_warm() {
        let t = f3_resolution_latency(5);
        let cold: f64 = t.cell(1, 1).unwrap().parse().unwrap();
        let warm: f64 = t.cell(1, 2).unwrap().parse().unwrap();
        let plain: f64 = t.cell(0, 1).unwrap().parse().unwrap();
        assert!(cold > warm, "key fetch must cost something: cold {cold} warm {warm}");
        assert!(cold > plain, "sarp cold {cold} must exceed plain {plain}");
        // TARP: no key distribution, so cold == warm, and cheaper than
        // S-ARP warm (verify-only, no signing delay at resolution...
        // actually the responder still defers by one inspection unit;
        // the dominant saving is no AKD round trip and no signing).
        let tarp_cold: f64 = t.cell(2, 1).unwrap().parse().unwrap();
        let tarp_warm: f64 = t.cell(2, 2).unwrap().parse().unwrap();
        assert!((tarp_cold - tarp_warm).abs() < 1.0, "tarp has no cold/warm split");
        assert!(tarp_warm < warm, "tarp {tarp_warm} must beat sarp warm {warm}");
        assert!(tarp_cold > plain, "tickets still cost a verification");
    }

    #[test]
    fn f1_produces_a_series_per_scheme() {
        let series = f1_detection_latency(2, 4);
        assert_eq!(series.len(), detecting_schemes().len());
        // The passive monitor detects these variants fast.
        let passive = &series[0];
        assert!(passive.title().contains("passive"));
        assert!(!passive.is_empty());
    }
}
