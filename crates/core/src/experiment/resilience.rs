//! T5R: detection and resolution resilience under link impairment.
//!
//! The survey's schemes are compared on clean wires everywhere else;
//! this table re-runs the persistent-poisoning scenario with every link
//! dropping a fraction of frames, and reports what loss does to each
//! scheme's detection recall, to the victim's poisoned time, and to the
//! host stacks' ability to resolve at all. Lossy cells deploy the
//! hardened retry profiles (exponential resolver backoff, probe
//! re-issue, AKD key-fetch retries); the loss-free column keeps the
//! legacy fixed-interval defaults, making it byte-identical to an
//! unimpaired run.

use std::time::Duration;

use arpshield_attacks::PoisonVariant;
use arpshield_host::RetryPolicy;
use arpshield_netsim::LinkProfile;
use arpshield_schemes::{SchemeHardening, SchemeKind};

use crate::metrics::score_attack_run;
use crate::parallel::run_indexed;
use crate::report::Table;
use crate::scenario::{AttackScenario, ScenarioConfig};

/// Frame-loss probabilities the sweep applies to every link direction
/// (a switched frame crosses two impaired links, so the end-to-end loss
/// is roughly double).
pub const LOSS_GRID: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

const TRIALS: u64 = 3;

fn schemes() -> Vec<SchemeKind> {
    use SchemeKind::*;
    vec![None, Passive, ActiveProbe, Hybrid, Antidote, Dai, SArp, Tarp]
}

/// T5R: scheme × frame-loss sweep under a persistent unicast-reply
/// poisoner (30 s, re-poisoned every 2 s, 3 s cache timeout so hosts
/// keep re-resolving and the resolver's give-up path is exercised).
///
/// Per cell, over three trial seeds: `recall` is the fraction of trials
/// in which the attack was detected; `poisoned_min` the mean time the
/// victim spent poisoned (minutes); `resolution_fail_rate` the pooled
/// fraction of ARP resolutions that exhausted their retries;
/// `victim_delivery` the mean victim ping delivery ratio.
pub fn t5_resilience(seed: u64) -> Table {
    let mut table = Table::new(
        "T5R: resilience under frame loss (persistent poisoning, hardened retries when lossy)",
        &[
            "scheme",
            "loss_pct",
            "recall",
            "poisoned_min",
            "resolution_fail_rate",
            "victim_delivery",
        ],
    );
    let mut cells = Vec::new();
    for scheme in schemes() {
        for loss in LOSS_GRID {
            cells.push((scheme, loss));
        }
    }
    let jobs: Vec<_> = cells
        .into_iter()
        .enumerate()
        .map(|(cell, (scheme, loss))| {
            move || {
                let mut detected_trials = 0u64;
                let mut poisoned_fraction = 0.0f64;
                let mut delivery = 0.0f64;
                let mut failed = 0u64;
                let mut completed = 0u64;
                for trial in 0..TRIALS {
                    let trial_seed = seed ^ (((cell as u64 + 1) << 8) | (trial + 1));
                    let mut config = ScenarioConfig::new(trial_seed)
                        .with_hosts(4)
                        .with_scheme(scheme)
                        .with_duration(Duration::from_secs(30))
                        .with_arp_timeout(Duration::from_secs(3))
                        .with_policy(arpshield_host::ArpPolicy::Promiscuous);
                    if loss > 0.0 {
                        config = config
                            .with_impairment(LinkProfile::default().with_loss(loss))
                            .with_resolver_retry(RetryPolicy::exponential(
                                Duration::from_millis(250),
                                3,
                                Duration::from_secs(2),
                            ))
                            .with_hardening(SchemeHardening::lossy());
                    }
                    let run = AttackScenario::poisoning(config, PoisonVariant::UnicastReply).run();
                    let outcome = score_attack_run(&run);
                    if outcome.detected {
                        detected_trials += 1;
                    }
                    poisoned_fraction += outcome.poisoned_fraction;
                    delivery += outcome.victim_delivery;
                    let mut tally = |stats: &arpshield_host::HostStats| {
                        failed += stats.resolutions_failed;
                        completed += stats.resolutions_completed;
                    };
                    tally(&run.lan.gateway.stats.borrow());
                    for host in &run.lan.hosts {
                        tally(&host.stats.borrow());
                    }
                }
                let trials = TRIALS as f64;
                let window = Duration::from_secs(30) - Duration::from_secs(3);
                let poisoned_min = (poisoned_fraction / trials) * window.as_secs_f64() / 60.0;
                let attempts = failed + completed;
                let fail_rate = if attempts == 0 { 0.0 } else { failed as f64 / attempts as f64 };
                [
                    scheme.label().to_string(),
                    format!("{:.0}", loss * 100.0),
                    format!("{:.2}", detected_trials as f64 / trials),
                    format!("{:.3}", poisoned_min),
                    format!("{:.4}", fail_rate),
                    format!("{:.3}", delivery / trials),
                ]
            }
        })
        .collect();
    for row in run_indexed(jobs) {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_f64(t: &Table, scheme: &str, loss: &str, col: usize) -> f64 {
        for r in 0..t.len() {
            if t.cell(r, 0) == Some(scheme) && t.cell(r, 1) == Some(loss) {
                return t.cell(r, col).unwrap().parse().unwrap();
            }
        }
        panic!("no row ({scheme}, {loss})");
    }

    #[test]
    fn loss_degrades_probe_and_crypto_schemes_measurably() {
        let t = t5_resilience(77);
        // Clean wires: nothing fails to resolve.
        for scheme in ["active-probe", "sarp", "tarp", "none"] {
            assert_eq!(cell_f64(&t, scheme, "0", 4), 0.0, "{scheme} clean fail rate");
        }
        // 10% per-hop loss must move *something* for the probe-based and
        // cryptographic schemes: resolutions fail or recall drops.
        for scheme in ["active-probe", "sarp"] {
            let recall_delta = cell_f64(&t, scheme, "0", 2) - cell_f64(&t, scheme, "10", 2);
            let fail_delta = cell_f64(&t, scheme, "10", 4) - cell_f64(&t, scheme, "0", 4);
            assert!(
                recall_delta.abs() > 0.0 || fail_delta > 0.0,
                "{scheme}: loss changed nothing (recall Δ {recall_delta}, fail Δ {fail_delta})"
            );
        }
        // A preventing scheme keeps the victim mostly connected even at
        // 10% per-hop loss (~34% round-trip loss for a 4-hop ping).
        assert!(cell_f64(&t, "dai", "10", 5) > 0.3, "victim delivery collapsed under DAI");
    }
}
