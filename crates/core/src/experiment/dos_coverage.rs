//! T6: coverage of the volumetric L2 attacks (MAC flooding, DHCP
//! starvation) — the flank the binding-verification schemes do not see.

use std::time::Duration;

use arpshield_attacks::{
    ArpScanner, ArpScannerConfig, DhcpStarver, DhcpStarverConfig, GroundTruth, MacFlooder,
    MacFlooderConfig,
};
use arpshield_host::dhcp::DhcpServerConfig;
use arpshield_host::{Host, HostConfig};
use arpshield_netsim::{
    PortId, PortSecurityConfig, SimTime, Simulator, Switch, SwitchConfig, ViolationAction,
};
use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
use arpshield_schemes::{AlertLog, DaiConfig, DaiInspector, RateConfig, RateMonitor, SchemeKind};

use crate::report::Table;

/// The switch-or-monitor defences T6 compares.
fn dos_schemes() -> Vec<SchemeKind> {
    vec![SchemeKind::None, SchemeKind::PortSecurity, SchemeKind::Dai, SchemeKind::RateMonitor]
}

struct DosRun {
    contained: bool,
    detected: bool,
}

fn flood_run(seed: u64, scheme: SchemeKind) -> DosRun {
    let alerts = AlertLog::new();
    let mut sim = Simulator::new(seed);
    let mut config = SwitchConfig { ports: 8, cam_capacity: 512, ..Default::default() };
    if scheme == SchemeKind::PortSecurity {
        config.port_security = Some(PortSecurityConfig {
            max_macs_per_port: 2,
            violation: ViolationAction::ShutdownPort,
        });
    }
    // Mirror to the monitor port for the rate monitor.
    if scheme == SchemeKind::RateMonitor {
        config.mirror_to = Some(PortId(7));
    }
    let (mut sw, handle) = Switch::new("sw", config);
    if scheme == SchemeKind::Dai {
        sw.set_inspector(Box::new(DaiInspector::new(DaiConfig::new([PortId(0)]), alerts.clone())));
    }
    let sw = sim.add_device(Box::new(sw));
    if scheme == SchemeKind::RateMonitor {
        let m = sim.add_device(Box::new(RateMonitor::new(RateConfig::default(), alerts.clone())));
        sim.connect(m, PortId(0), sw, PortId(7), Duration::from_micros(2)).unwrap();
    }
    let flooder =
        MacFlooder::new(MacFlooderConfig::macof_rate(MacAddr::from_index(66)), GroundTruth::new());
    let f = sim.add_device(Box::new(flooder));
    sim.connect(f, PortId(0), sw, PortId(1), Duration::from_micros(5)).unwrap();
    sim.run_until(SimTime::from_secs(3));
    let contained = !handle.cam.borrow().is_full();
    DosRun { contained, detected: !alerts.is_empty() }
}

fn starve_run(seed: u64, scheme: SchemeKind) -> DosRun {
    let alerts = AlertLog::new();
    let mut sim = Simulator::new(seed);
    let gw_ip = Ipv4Addr::new(192, 168, 88, 1);
    let pool = 16u32;
    let mut config = SwitchConfig { ports: 8, ..Default::default() };
    if scheme == SchemeKind::PortSecurity {
        config.port_security = Some(PortSecurityConfig {
            max_macs_per_port: 2,
            violation: ViolationAction::ShutdownPort,
        });
    }
    if scheme == SchemeKind::RateMonitor {
        config.mirror_to = Some(PortId(7));
    }
    let (mut sw, _) = Switch::new("sw", config);
    if scheme == SchemeKind::Dai {
        sw.set_inspector(Box::new(DaiInspector::new(DaiConfig::new([PortId(0)]), alerts.clone())));
    }
    let sw = sim.add_device(Box::new(sw));
    if scheme == SchemeKind::RateMonitor {
        let m = sim.add_device(Box::new(RateMonitor::new(RateConfig::default(), alerts.clone())));
        sim.connect(m, PortId(0), sw, PortId(7), Duration::from_micros(2)).unwrap();
    }
    let (gateway, gw_handle) = Host::new(
        HostConfig::static_ip("gw", MacAddr::from_index(100), gw_ip, Ipv4Cidr::new(gw_ip, 24))
            .with_dhcp_server(DhcpServerConfig::home_router(
                Ipv4Addr::new(192, 168, 88, 100),
                pool,
                gw_ip,
            )),
    );
    let g = sim.add_device(Box::new(gateway));
    sim.connect(g, PortId(0), sw, PortId(0), Duration::from_micros(5)).unwrap();
    let starver = DhcpStarver::new(
        DhcpStarverConfig {
            attacker_mac: MacAddr::from_index(66),
            start_delay: Duration::from_millis(200),
            rate_per_sec: 50,
            complete_handshake: true,
            total: None,
        },
        GroundTruth::new(),
    );
    let s = sim.add_device(Box::new(starver));
    sim.connect(s, PortId(0), sw, PortId(1), Duration::from_micros(5)).unwrap();
    sim.run_until(SimTime::from_secs(5));
    let taken = gw_handle.dhcp_server.as_ref().unwrap().borrow().taken() as u32;
    DosRun { contained: taken < pool, detected: !alerts.is_empty() }
}

fn scan_run(seed: u64, scheme: SchemeKind) -> DosRun {
    let alerts = AlertLog::new();
    let mut sim = Simulator::new(seed);
    let subnet = Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 26); // 62 hosts to sweep
    let mut config = SwitchConfig { ports: 12, ..Default::default() };
    if scheme == SchemeKind::PortSecurity {
        config.port_security = Some(PortSecurityConfig {
            max_macs_per_port: 2,
            violation: ViolationAction::ShutdownPort,
        });
    }
    if scheme == SchemeKind::RateMonitor {
        config.mirror_to = Some(PortId(11));
    }
    let (mut sw, _) = Switch::new("sw", config);
    if scheme == SchemeKind::Dai {
        // The legitimate stations are registered; the scanner is not.
        let mut dai = DaiConfig::new([PortId(0)]);
        for i in 0..3usize {
            dai = dai.with_static(
                Ipv4Addr::new(10, 0, 0, 2 + i as u8),
                MacAddr::from_index(1000 + i as u32),
            );
        }
        sw.set_inspector(Box::new(DaiInspector::new(dai, alerts.clone())));
    }
    let sw = sim.add_device(Box::new(sw));
    if scheme == SchemeKind::RateMonitor {
        // Lower the request threshold to a small-LAN level.
        let m = sim.add_device(Box::new(RateMonitor::new(
            RateConfig { max_arp_requests: 20, ..Default::default() },
            alerts.clone(),
        )));
        sim.connect(m, PortId(0), sw, PortId(11), Duration::from_micros(2)).unwrap();
    }
    // Three quiet stations the scanner could discover.
    let mut station_port = 1u16;
    for i in 0..3usize {
        let (host, _) = Host::new(HostConfig::static_ip(
            format!("h{i}"),
            MacAddr::from_index(1000 + i as u32),
            Ipv4Addr::new(10, 0, 0, 2 + i as u8),
            subnet,
        ));
        let h = sim.add_device(Box::new(host));
        sim.connect(h, PortId(0), sw, PortId(station_port), Duration::from_micros(5)).unwrap();
        station_port += 1;
    }
    let scanner = ArpScanner::new(
        ArpScannerConfig {
            attacker_mac: MacAddr::from_index(66),
            source_ip: Ipv4Addr::new(10, 0, 0, 60),
            subnet,
            rate_per_sec: 100,
            start_delay: Duration::from_millis(100),
        },
        GroundTruth::new(),
    );
    let scanner_discoveries = {
        // Run with the scanner boxed; read discoveries through the trace
        // instead: count distinct repliers addressed to the scanner.
        let s = sim.add_device(Box::new(scanner));
        sim.connect(s, PortId(0), sw, PortId(station_port), Duration::from_micros(5)).unwrap();
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(3));
        let trace = sim.trace().unwrap();
        let mut repliers = std::collections::HashSet::new();
        for f in trace.received_by(s) {
            if let Ok(eth) = arpshield_packet::EthernetFrame::parse(&f.bytes) {
                if eth.ethertype == arpshield_packet::EtherType::ARP {
                    if let Ok(arp) = arpshield_packet::ArpPacket::parse(&eth.payload) {
                        if arp.op == arpshield_packet::ArpOp::Reply {
                            repliers.insert(arp.sender_mac);
                        }
                    }
                }
            }
        }
        repliers.len()
    };
    DosRun { contained: scanner_discoveries == 0, detected: !alerts.is_empty() }
}

fn cell(run: DosRun) -> String {
    match (run.contained, run.detected) {
        (true, true) => "contained+D".to_string(),
        (true, false) => "contained".to_string(),
        (false, true) => "D".to_string(),
        (false, false) => "-".to_string(),
    }
}

/// T6: scheme × volumetric attack. `contained` = the resource (CAM /
/// DHCP pool) survived; `D` = an alert fired; `-` = the attack succeeded
/// unnoticed.
pub fn t6_dos_coverage(seed: u64) -> Table {
    let mut table = Table::new(
        "T6: volumetric/recon L2 attack coverage (contained = attack goal denied, D = detected)",
        &["scheme \\ attack", "mac-flood", "dhcp-starvation", "arp-scan"],
    );
    for scheme in dos_schemes() {
        table.row([
            scheme.label().to_string(),
            cell(flood_run(seed, scheme)),
            cell(starve_run(seed, scheme)),
            cell(scan_run(seed, scheme)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_coverage_shape() {
        let t = t6_dos_coverage(13);
        let cell_of = |name: &str, col: usize| -> String {
            for r in 0..t.len() {
                if t.cell(r, 0) == Some(name) {
                    return t.cell(r, col).unwrap().to_string();
                }
            }
            panic!("no row {name}");
        };
        // Baseline: both attacks succeed silently.
        assert_eq!(cell_of("none", 1), "-");
        assert_eq!(cell_of("none", 2), "-");
        // Port security contains both (the starver's forged chaddrs are
        // also forged L2 sources on one port).
        assert!(cell_of("port-security", 1).starts_with("contained"));
        assert!(cell_of("port-security", 2).starts_with("contained"));
        // The rate monitor detects both but contains neither.
        assert_eq!(cell_of("rate-monitor", 1), "D");
        assert_eq!(cell_of("rate-monitor", 2), "D");
        // DAI does not address flooding; starvation passes through it
        // too (the discovers are valid client traffic). But it *does*
        // contain scans from unregistered stations — and logs them.
        assert_eq!(cell_of("dai", 1), "-");
        assert!(cell_of("dai", 3).starts_with("contained"));
        // The rate monitor sees the sweep's request rate.
        assert!(cell_of("rate-monitor", 3).contains('D'));
        // The baseline scanner enumerates freely.
        assert_eq!(cell_of("none", 3), "-");
    }
}
