//! F4: fraction of time the victim's cache stays poisoned under a
//! persistent attacker, per scheme — the prevention-efficacy figure.

use std::time::Duration;

use arpshield_attacks::PoisonVariant;
use arpshield_schemes::SchemeKind;

use crate::metrics::score_attack_run;
use crate::parallel::run_indexed;
use crate::report::Table;
use crate::scenario::{AttackScenario, ScenarioConfig};

/// F4: a unicast-reply poisoner re-poisons every 2 s for 30 s against a
/// victim with a 10 s cache timeout; each row reports how much of the
/// post-attack time the victim's gateway binding pointed at the
/// attacker, and what that did to the victim's traffic.
///
/// The shape that must hold: preventing schemes pin the fraction at
/// zero; purely detecting schemes leave it near one (alarms don't heal
/// caches); Antidote sits at zero *with* connectivity because it defends
/// the live incumbent.
pub fn f4_poisoned_time(seed: u64) -> Table {
    let mut table = Table::new(
        "F4: fraction of time victim poisoned under persistent re-poisoning (30 s)",
        &["scheme", "poisoned_fraction", "victim_delivery", "alerts"],
    );
    // One 30 s persistent-attacker run per scheme, fanned out.
    let jobs: Vec<_> = SchemeKind::all()
        .map(|scheme| {
            move || {
                let config = ScenarioConfig::new(seed)
                    .with_hosts(4)
                    .with_scheme(scheme)
                    .with_duration(Duration::from_secs(30))
                    .with_arp_timeout(Duration::from_secs(10))
                    .with_policy(arpshield_host::ArpPolicy::Promiscuous);
                let run = AttackScenario::poisoning(config, PoisonVariant::UnicastReply).run();
                let outcome = score_attack_run(&run);
                [
                    scheme.label().to_string(),
                    format!("{:.3}", outcome.poisoned_fraction),
                    format!("{:.3}", outcome.victim_delivery),
                    outcome.alerts.to_string(),
                ]
            }
        })
        .into_iter()
        .collect();
    for row in run_indexed(jobs) {
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prevention_pins_fraction_to_zero_and_detection_does_not() {
        let t = f4_poisoned_time(11);
        let frac = |name: &str| -> f64 {
            for r in 0..t.len() {
                if t.cell(r, 0) == Some(name) {
                    return t.cell(r, 1).unwrap().parse().unwrap();
                }
            }
            panic!("no row {name}");
        };
        assert_eq!(frac("static-arp"), 0.0);
        assert_eq!(frac("sarp"), 0.0);
        assert_eq!(frac("dai"), 0.0);
        assert_eq!(frac("antidote"), 0.0);
        assert!(frac("none") > 0.5, "baseline should stay poisoned: {}", frac("none"));
        assert!(frac("passive") > 0.5, "alarms do not heal caches: {}", frac("passive"));
    }
}
