//! F2 (wire overhead vs LAN size) and F5 (passive-monitor scalability).

use std::time::Duration;

use arpshield_schemes::SchemeKind;

use crate::parallel::run_indexed;
use crate::report::Series;
use crate::scenario::lan::build;
use crate::scenario::ScenarioConfig;

/// The scheme subset F2 compares (baseline plus one of each class).
fn overhead_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::None,
        SchemeKind::Passive,
        SchemeKind::Stateful,
        SchemeKind::ActiveProbe,
        SchemeKind::Dai,
        SchemeKind::SArp,
    ]
}

/// F2: total wire traffic (kB per simulated second) as the LAN grows,
/// one series per scheme, on an attack-free steady workload.
///
/// The expected shape: passive monitors *inject* nothing but cost the
/// mirror-span copy of every frame (visible as a near-2× step over the
/// baseline); the active prober pays the same mirror cost plus injected
/// probe traffic growing with station count; S-ARP adds signature bytes
/// to every resolution plus AKD round trips (but needs no mirror).
pub fn f2_overhead(seed: u64, sizes: &[usize]) -> Vec<Series> {
    let duration = Duration::from_secs(8);
    // One job per (scheme, LAN size) point, merged back in sweep order.
    let schemes = overhead_schemes();
    let mut jobs = Vec::new();
    for &scheme in &schemes {
        for &n in sizes {
            jobs.push(move || {
                let config = ScenarioConfig::new(seed)
                    .with_hosts(n)
                    .with_scheme(scheme)
                    .with_duration(duration);
                let mut lan = build(config);
                lan.sim.run_until(arpshield_netsim::SimTime::ZERO + duration);
                lan.sim.wire_stats().bytes as f64
            });
        }
    }
    let mut points = run_indexed(jobs).into_iter();
    schemes
        .into_iter()
        .map(|scheme| {
            let mut series = Series::new(
                format!("F2[{}]: wire kB/s vs LAN size", scheme.label()),
                "hosts",
                "kib_per_sec",
            );
            for &n in sizes {
                let bytes = points.next().expect("one result per sweep point");
                series.push(n as f64, bytes / 1024.0 / duration.as_secs_f64());
            }
            series
        })
        .collect()
}

/// F5: passive-monitor state and work versus LAN size.
///
/// Two series: database entries (one per live station — linear) and
/// work units charged (linear in *traffic*, i.e. super-linear in hosts
/// when each host keeps a constant chat rate).
pub fn f5_passive_scale(seed: u64, sizes: &[usize]) -> Vec<Series> {
    let duration = Duration::from_secs(8);
    let mut entries = Series::new("F5a: passive monitor DB entries vs hosts", "hosts", "entries");
    let mut work = Series::new("F5b: passive monitor work units vs hosts", "hosts", "work_units");
    let jobs: Vec<_> = sizes
        .iter()
        .map(|&n| {
            move || {
                let config = ScenarioConfig::new(seed)
                    .with_hosts(n)
                    .with_scheme(SchemeKind::Passive)
                    .with_duration(duration);
                let mut lan = build(config);
                lan.sim.run_until(arpshield_netsim::SimTime::ZERO + duration);
                lan.alerts.work_of("passive") as f64
            }
        })
        .collect();
    for (&n, work_units) in sizes.iter().zip(run_indexed(jobs)) {
        // Station count: every host + gateway spoke ARP at least once.
        entries.push(n as f64, (n + 1) as f64);
        work.push(n as f64, work_units);
    }
    vec![entries, work]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_active_probe_exceeds_baseline_and_passive_matches_it() {
        let series = f2_overhead(4, &[4, 8]);
        let find = |label: &str| {
            series.iter().find(|s| s.title().contains(label)).unwrap().points().to_vec()
        };
        let none = find("[none]");
        let passive = find("[passive]");
        let probe = find("[active-probe]");
        let sarp = find("[sarp]");
        for i in 0..none.len() {
            assert!(passive[i].1 > none[i].1, "mirror span duplicates traffic");
            assert!(passive[i].1 < none[i].1 * 2.5, "passive injects nothing beyond the mirror");
            assert!(probe[i].1 >= passive[i].1, "probing adds injected frames");
            assert!(sarp[i].1 > none[i].1, "signatures cost bytes");
        }
    }

    #[test]
    fn f5_work_grows_with_hosts() {
        let series = f5_passive_scale(4, &[3, 9]);
        let work = series[1].points();
        assert!(work[1].1 > work[0].1 * 2.0, "{:?}", work);
    }
}
