//! Scenario construction: deterministic LANs with schemes deployed and
//! attacks or benign churn injected.

mod attack;
mod benign;
pub mod lan;
pub mod scale;

pub use attack::{AttackScenario, AttackSpec, CompletedRun};
pub use benign::{BenignRun, BenignScenario, ChurnConfig};
pub use lan::{BuiltLan, ScenarioConfig};
pub use scale::{ScaleConfig, ScaleLan};
