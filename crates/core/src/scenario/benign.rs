//! Benign-churn scenarios for false-positive measurement (T4).
//!
//! Three legitimate events look exactly like poisoning to naive
//! monitors:
//!
//! 1. **DHCP lease churn** — an address expires on one machine and is
//!    later leased to another: the IP's MAC "changes".
//! 2. **NIC replacement** — a host comes back with a new adapter (or a
//!    spoofed-but-legitimate MAC change): same IP, new MAC, often
//!    announced by gratuitous ARP.
//! 3. **Gratuitous boot announcements** — unsolicited traffic that
//!    reply-filtering hosts may reject outright.

use std::time::Duration;

use arpshield_host::dhcp::{DhcpClientConfig, DhcpServerConfig};
use arpshield_host::{Host, HostConfig, HostHandle};
use arpshield_netsim::SimTime;
use arpshield_packet::MacAddr;

use crate::scenario::lan::{addr, build, BuiltLan, ScenarioConfig};

/// Churn intensity knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Roaming DHCP clients that release and re-acquire leases.
    pub dhcp_roamers: usize,
    /// Size of the DHCP pool serving them (small pools force address
    /// reuse across different MACs — the FP trigger).
    pub pool_size: u32,
    /// How long each roamer holds a lease before releasing.
    pub lease_hold: Duration,
    /// Replace the victim host's NIC at this point in the run.
    pub nic_swap_at: Option<Duration>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            dhcp_roamers: 3,
            pool_size: 2,
            lease_hold: Duration::from_secs(4),
            nic_swap_at: Some(Duration::from_secs(10)),
        }
    }
}

/// A benign run's residue.
#[derive(Debug)]
pub struct BenignRun {
    /// The LAN after the run.
    pub lan: BuiltLan,
    /// Roaming client handles.
    pub roamers: Vec<HostHandle>,
    /// Every alert in a benign run is by definition a false positive.
    pub false_positives: usize,
}

/// A benign scenario: the standard LAN plus churn, no attacker.
#[derive(Debug, Clone, Copy)]
pub struct BenignScenario {
    /// LAN parameters.
    pub config: ScenarioConfig,
    /// Churn parameters.
    pub churn: ChurnConfig,
}

impl BenignScenario {
    /// Creates a benign scenario.
    pub fn new(config: ScenarioConfig, churn: ChurnConfig) -> Self {
        BenignScenario { config, churn }
    }

    /// Builds, injects churn, runs, and counts false positives.
    pub fn run(self) -> BenignRun {
        let mut lan = build(self.config);
        lan.tracer.annotate("workload", "benign-churn");

        // A DHCP server joins the gateway's port-adjacent world: a second
        // infrastructure host on its own port (the standard LAN's gateway
        // has no server so attack scenarios stay minimal). For DAI the
        // builder trusts port 0 only, so put the server host there…
        // instead, simplest faithful arrangement: run the DHCP server on
        // an extra infrastructure host attached to the next free port,
        // and accept that under DAI its offers are snooped only if that
        // port is trusted — DAI deployments trust their server port, so
        // we model the server co-resident with the gateway via a static
        // trusted binding. To keep the wiring honest and simple, the
        // roamers' DHCP server lives on the *gateway port's* trusted side
        // only when the scheme is DAI-free; the DAI benign FP path uses
        // the snooped-lease flow from the scheme integration tests.
        let server_cfg = DhcpServerConfig {
            pool_start: arpshield_packet::Ipv4Addr::new(10, 0, 0, 200),
            pool_size: self.churn.pool_size,
            lease: Duration::from_secs(600),
            mask: arpshield_packet::Ipv4Addr::new(255, 255, 255, 0),
            router: addr::GATEWAY_IP,
            offer_hold: Duration::from_secs(5),
        };
        let (server_host, _server_handle) = Host::new(
            HostConfig::static_ip(
                "dhcp-server",
                MacAddr::from_index(3000),
                arpshield_packet::Ipv4Addr::new(10, 0, 0, 199),
                addr::subnet(),
            )
            .with_dhcp_server(server_cfg),
        );
        lan.attach(Box::new(server_host));

        let mut roamers = Vec::new();
        for i in 0..self.churn.dhcp_roamers {
            let client_cfg = DhcpClientConfig {
                start_delay: Duration::from_millis(200 + 700 * i as u64),
                retry_interval: Duration::from_secs(2),
                lease_hold: Some(self.churn.lease_hold + Duration::from_millis(900 * i as u64)),
            };
            let (mut roamer, handle) = Host::new(
                HostConfig::dhcp(
                    format!("roamer{i}"),
                    MacAddr::from_index(4000 + i as u32),
                    client_cfg,
                )
                .with_gratuitous_announce(),
            );
            // Roamers talk to the gateway like any station would, so their
            // (churning) bindings circulate in ARP traffic.
            let (ping, _) =
                arpshield_host::apps::PingApp::new(addr::GATEWAY_IP, Duration::from_millis(500));
            roamer.add_app(Box::new(ping));
            lan.attach(Box::new(roamer));
            roamers.push(handle);
        }

        let deadline = SimTime::ZERO + self.config.duration;
        match self.churn.nic_swap_at {
            Some(swap_at) if swap_at < self.config.duration => {
                lan.sim.run_until(SimTime::ZERO + swap_at);
                // Replace the victim's NIC: same IP, brand-new MAC. The
                // link bounce flushes its ARP cache, so its next ping
                // re-resolves the gateway with the new source MAC — which
                // is how the changed binding reaches the wire.
                lan.hosts[0].iface_ref.borrow_mut().set_mac(MacAddr::from_index(5000));
                lan.hosts[0].cache.borrow_mut().remove(addr::GATEWAY_IP);
                lan.sim.run_until(deadline);
            }
            _ => lan.sim.run_until(deadline),
        }

        let false_positives = lan.alerts.len();
        BenignRun { lan, roamers, false_positives }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_schemes::SchemeKind;

    #[test]
    fn churn_actually_churns() {
        let config = ScenarioConfig::new(8).with_hosts(2).with_duration(Duration::from_secs(25));
        let run = BenignScenario::new(config, ChurnConfig::default()).run();
        let total_acquisitions: u64 =
            run.roamers.iter().map(|r| r.dhcp_client.as_ref().unwrap().borrow().acquisitions).sum();
        assert!(total_acquisitions >= 4, "expected lease churn, got {total_acquisitions}");
    }

    #[test]
    fn passive_monitor_pays_false_positives_under_churn() {
        let config = ScenarioConfig::new(9)
            .with_hosts(2)
            .with_scheme(SchemeKind::Passive)
            .with_duration(Duration::from_secs(30));
        let run = BenignScenario::new(config, ChurnConfig::default()).run();
        assert!(
            run.false_positives > 0,
            "DHCP reuse + NIC swap must look like poisoning to arpwatch"
        );
    }

    #[test]
    fn baseline_has_no_alerts() {
        let config = ScenarioConfig::new(10).with_hosts(2).with_duration(Duration::from_secs(20));
        let run = BenignScenario::new(config, ChurnConfig::default()).run();
        assert_eq!(run.false_positives, 0);
    }
}
