//! The standard experimental LAN and per-scheme deployment wiring.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_attacks::GroundTruth;
use arpshield_crypto::{Akd, KeyPair};
use arpshield_host::apps::{PingApp, PingStats};
use arpshield_host::{ArpPolicy, Host, HostConfig, HostHandle};
use arpshield_netsim::{
    DeviceId, Hub, PortId, PortSecurityConfig, SimTime, Simulator, Switch, SwitchConfig,
    SwitchHandle, ViolationAction,
};
use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
use arpshield_schemes::{
    static_arp, ActiveProbeConfig, ActiveProbeMonitor, AkdApp, AlertLog, AnticapHook, AntidoteHook,
    DaiConfig, DaiInspector, PassiveConfig, PassiveMonitor, RateConfig, RateMonitor, SArpConfig,
    SArpHook, SchemeKind, StatefulConfig, StatefulMonitor, TarpConfig, TarpHook, Ticket,
};

/// Addressing constants of the standard LAN.
pub mod addr {
    use super::*;

    /// The /24 all scenarios use.
    pub fn subnet() -> Ipv4Cidr {
        Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)
    }

    /// Gateway: `10.0.0.1`.
    pub const GATEWAY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    /// Gateway MAC.
    pub fn gateway_mac() -> MacAddr {
        MacAddr::from_index(100)
    }
    /// Workload host `i` (0-based): `10.0.0.(2+i)`.
    pub fn host_ip(i: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2 + i as u8)
    }
    /// Workload host `i`'s MAC.
    pub fn host_mac(i: usize) -> MacAddr {
        MacAddr::from_index(1000 + i as u32)
    }
    /// The S-ARP key distributor: `10.0.0.250`.
    pub const AKD_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 250);
    /// AKD MAC.
    pub fn akd_mac() -> MacAddr {
        MacAddr::from_index(2500)
    }
    /// The attacker's NIC.
    pub fn attacker_mac() -> MacAddr {
        MacAddr::from_index(6666)
    }
    /// Keypair seed for a principal (per-IP).
    pub fn key_seed(ip: Ipv4Addr) -> u64 {
        u64::from(ip.to_u32())
    }
    /// The AKD's own signing seed.
    pub const AKD_KEY_SEED: u64 = 0xA4D;
}

/// Parameters of the standard experimental LAN.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Determinism seed.
    pub seed: u64,
    /// Number of workload hosts (excluding gateway/AKD/attacker).
    pub n_hosts: usize,
    /// The defence under test.
    pub scheme: SchemeKind,
    /// ARP policy of unprotected hosts (schemes may override).
    pub policy: ArpPolicy,
    /// Dynamic ARP entry lifetime.
    pub arp_timeout: Duration,
    /// Host ping interval toward the gateway.
    pub ping_interval: Duration,
    /// Total simulated run length.
    pub duration: Duration,
    /// When the attacker (if any) first acts — after the warm-up in
    /// which legitimate bindings circulate.
    pub attack_start: Duration,
}

impl ScenarioConfig {
    /// Defaults: 8 hosts, `Standard` policy, no scheme, 12 s run with the
    /// attack at 3 s.
    pub fn new(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            n_hosts: 8,
            scheme: SchemeKind::None,
            policy: ArpPolicy::Standard,
            arp_timeout: Duration::from_secs(60),
            ping_interval: Duration::from_millis(250),
            duration: Duration::from_secs(12),
            attack_start: Duration::from_secs(3),
        }
    }

    /// Selects the defence scheme.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the unprotected-host ARP policy.
    pub fn with_policy(mut self, policy: ArpPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the workload size.
    pub fn with_hosts(mut self, n: usize) -> Self {
        assert!(n >= 1 && n <= 200, "host count must be in 1..=200");
        self.n_hosts = n;
        self
    }

    /// Sets the run length.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the ARP cache timeout.
    pub fn with_arp_timeout(mut self, timeout: Duration) -> Self {
        self.arp_timeout = timeout;
        self
    }
}

/// A constructed (not yet run) experimental LAN.
pub struct BuiltLan {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Live switch state.
    pub switch: SwitchHandle,
    /// The switch's device id.
    pub switch_id: DeviceId,
    /// The gateway host.
    pub gateway: HostHandle,
    /// Workload hosts; index 0 is the designated victim.
    pub hosts: Vec<HostHandle>,
    /// Per-host gateway-ping statistics (same order as `hosts`).
    pub pings: Vec<Rc<RefCell<PingStats>>>,
    /// Scheme alerts.
    pub alerts: AlertLog,
    /// Attacker ground truth.
    pub truth: GroundTruth,
    /// The monitor fan-out hub (present for monitor-based schemes).
    pub monitor_hub: Option<DeviceId>,
    next_free_port: u16,
    next_hub_port: u16,
    config: ScenarioConfig,
}

impl std::fmt::Debug for BuiltLan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltLan")
            .field("hosts", &self.hosts.len())
            .field("scheme", &self.config.scheme)
            .finish()
    }
}

impl BuiltLan {
    /// The scenario parameters this LAN was built from.
    pub fn config(&self) -> ScenarioConfig {
        self.config
    }

    /// The designated victim host (`hosts[0]`).
    pub fn victim(&self) -> &HostHandle {
        &self.hosts[0]
    }

    /// Attaches a device to the next free access port; returns its id.
    pub fn attach(&mut self, device: Box<dyn arpshield_netsim::Device>) -> DeviceId {
        self.attach_with_latency(device, Duration::from_micros(5))
    }

    /// Attaches a device with a chosen link latency.
    ///
    /// Attack scenarios use a shorter latency for the attacker than the
    /// 5 µs host links: poisoning tools answer from a userspace sniff
    /// loop with no protocol stack in the path, which is what lets them
    /// win reply races against legitimate responders.
    pub fn attach_with_latency(
        &mut self,
        device: Box<dyn arpshield_netsim::Device>,
        latency: Duration,
    ) -> DeviceId {
        let id = self.sim.add_device(device);
        let port = self.next_free_port;
        self.next_free_port += 1;
        self.sim
            .connect(id, PortId(0), self.switch_id, PortId(port), latency)
            .expect("scenario switch ran out of ports");
        id
    }

    /// Attaches a monitor to the mirror fan-out hub.
    ///
    /// # Panics
    ///
    /// Panics if the scenario was built without a monitor hub.
    pub fn attach_monitor(&mut self, device: Box<dyn arpshield_netsim::Device>) -> DeviceId {
        let hub = self.monitor_hub.expect("scenario has no monitor hub");
        let id = self.sim.add_device(device);
        let port = self.next_hub_port;
        self.next_hub_port += 1;
        self.sim
            .connect(id, PortId(0), hub, PortId(port), Duration::from_micros(5))
            .expect("monitor hub ran out of ports");
        id
    }
}

/// Builds the standard LAN with `config.scheme` deployed.
///
/// Topology: one switch; gateway on port 0 (the DAI-trusted port), the
/// `n_hosts` workload hosts next, every host pinging the gateway. For
/// monitor-based schemes the switch mirrors all ingress traffic to a
/// fan-out hub carrying the monitors. `hosts[0]` is the designated
/// victim of any subsequently attached attack.
pub fn build(config: ScenarioConfig) -> BuiltLan {
    let alerts = AlertLog::new();
    let truth = GroundTruth::new();
    let scheme = config.scheme;

    let needs_monitor = matches!(
        scheme,
        SchemeKind::Passive
            | SchemeKind::ActiveProbe
            | SchemeKind::Stateful
            | SchemeKind::Hybrid
            | SchemeKind::RateMonitor
    );
    let ports = config.n_hosts + 12;
    let mirror_port = (ports - 1) as u16;

    // --- Switch ---
    let mut switch_config = SwitchConfig {
        ports,
        cam_capacity: 1024,
        cam_aging: Duration::from_secs(300),
        mirror_to: needs_monitor.then_some(PortId(mirror_port)),
        ..Default::default()
    };
    if scheme == SchemeKind::PortSecurity {
        switch_config.port_security = Some(PortSecurityConfig {
            max_macs_per_port: 2,
            violation: ViolationAction::ShutdownPort,
        });
    }
    let mut sim = Simulator::new(config.seed);
    let (mut switch, switch_handle) = Switch::new("sw", switch_config);

    // --- DAI inspector (installed before the switch is boxed) ---
    // Trusted ports: the gateway's (0) and the first expansion port,
    // reserved for trusted infrastructure (benign scenarios attach their
    // DHCP server there; attack scenarios put the passive sampler there,
    // which transmits nothing).
    let infrastructure_port = PortId(1 + config.n_hosts as u16);
    if scheme == SchemeKind::Dai {
        let mut dai_config = DaiConfig::new([PortId(0), infrastructure_port])
            .with_static(addr::GATEWAY_IP, addr::gateway_mac());
        for i in 0..config.n_hosts {
            dai_config = dai_config.with_static(addr::host_ip(i), addr::host_mac(i));
        }
        switch.set_inspector(Box::new(DaiInspector::new(dai_config, alerts.clone())));
    }
    let switch_id = sim.add_device(Box::new(switch));

    // --- Host policy & scheme-wide resources ---
    let host_policy = match scheme {
        SchemeKind::StaticArp | SchemeKind::SArp | SchemeKind::Tarp => ArpPolicy::StaticOnly,
        _ => config.policy,
    };
    // TARP provisioning: the LTA issues every legitimate station a
    // long-lived ticket; hosts know only the LTA public key.
    let tarp_lta = (scheme == SchemeKind::Tarp).then(|| KeyPair::from_seed(0x17A));
    let sarp_resources = (scheme == SchemeKind::SArp).then(|| {
        let registry = Rc::new(RefCell::new(Akd::new()));
        let akd_keypair = KeyPair::from_seed(addr::AKD_KEY_SEED);
        // Enrol every legitimate principal.
        let enrol = |ip: Ipv4Addr| {
            let kp = KeyPair::from_seed(addr::key_seed(ip));
            registry.borrow_mut().register(u32::from(ip.to_u32()), kp.public_key());
        };
        enrol(addr::GATEWAY_IP);
        enrol(addr::AKD_IP);
        for i in 0..config.n_hosts {
            enrol(addr::host_ip(i));
        }
        (registry, akd_keypair)
    });
    let sarp_hook = |ip: Ipv4Addr, local: bool| -> Box<SArpHook> {
        let (registry, akd_keypair) = sarp_resources.as_ref().unwrap();
        Box::new(SArpHook::new(
            SArpConfig {
                keypair: KeyPair::from_seed(addr::key_seed(ip)),
                akd_ip: addr::AKD_IP,
                akd_mac: addr::akd_mac(),
                akd_key: akd_keypair.public_key(),
                max_age: Duration::from_secs(5),
                local_akd: local.then(|| Rc::clone(registry)),
                unit_cost: arpshield_schemes::sarp::DEFAULT_UNIT_COST,
            },
            alerts.clone(),
        ))
    };
    let add_host_hooks = |host: &mut Host, ip: Ipv4Addr, mac: MacAddr| match scheme {
        SchemeKind::Anticap => host.add_hook(Box::new(AnticapHook::new(alerts.clone()))),
        SchemeKind::Antidote => host.add_hook(Box::new(AntidoteHook::new(alerts.clone()))),
        SchemeKind::SArp => host.add_hook(sarp_hook(ip, false)),
        SchemeKind::Tarp => {
            let lta = tarp_lta.as_ref().unwrap();
            host.add_hook(Box::new(TarpHook::new(
                TarpConfig {
                    ticket: Ticket::issue(lta, ip, mac, SimTime::from_secs(86_400)),
                    lta_key: lta.public_key(),
                    unit_cost: arpshield_schemes::sarp::DEFAULT_UNIT_COST,
                },
                alerts.clone(),
            )));
        }
        _ => {}
    };

    // --- Gateway (port 0) ---
    let (mut gateway, gateway_handle) = Host::new(
        HostConfig::static_ip("gw", addr::gateway_mac(), addr::GATEWAY_IP, addr::subnet())
            .with_policy(host_policy)
            .with_arp_timeout(config.arp_timeout),
    );
    add_host_hooks(&mut gateway, addr::GATEWAY_IP, addr::gateway_mac());
    let gw_id = sim.add_device(Box::new(gateway));
    sim.connect(gw_id, PortId(0), switch_id, PortId(0), Duration::from_micros(5)).unwrap();

    // --- Workload hosts (ports 1..=n) ---
    let mut hosts = Vec::with_capacity(config.n_hosts);
    let mut pings = Vec::with_capacity(config.n_hosts);
    for i in 0..config.n_hosts {
        let ip = addr::host_ip(i);
        let (mut host, handle) = Host::new(
            HostConfig::static_ip(format!("h{i}"), addr::host_mac(i), ip, addr::subnet())
                .with_policy(host_policy)
                .with_arp_timeout(config.arp_timeout),
        );
        add_host_hooks(&mut host, ip, addr::host_mac(i));
        let (ping, ping_stats) = PingApp::new(addr::GATEWAY_IP, config.ping_interval);
        host.add_app(Box::new(ping));
        let id = sim.add_device(Box::new(host));
        sim.connect(id, PortId(0), switch_id, PortId(1 + i as u16), Duration::from_micros(5))
            .unwrap();
        hosts.push(handle);
        pings.push(ping_stats);
    }
    let mut next_free_port = 1 + config.n_hosts as u16;

    // --- AKD host (S-ARP only) ---
    if let Some((registry, akd_keypair)) = &sarp_resources {
        let (mut akd_host, _) = Host::new(
            HostConfig::static_ip("akd", addr::akd_mac(), addr::AKD_IP, addr::subnet())
                .with_policy(ArpPolicy::StaticOnly)
                .with_arp_timeout(config.arp_timeout),
        );
        akd_host.add_hook(sarp_hook(addr::AKD_IP, true));
        akd_host.add_app(Box::new(AkdApp::new(
            Rc::clone(registry),
            akd_keypair.clone(),
            alerts.clone(),
        )));
        let id = sim.add_device(Box::new(akd_host));
        sim.connect(id, PortId(0), switch_id, PortId(next_free_port), Duration::from_micros(5))
            .unwrap();
        next_free_port += 1;
    }

    // --- Static entries ---
    if scheme == SchemeKind::StaticArp {
        let mut bindings: Vec<(Ipv4Addr, MacAddr)> = vec![(addr::GATEWAY_IP, addr::gateway_mac())];
        for i in 0..config.n_hosts {
            bindings.push((addr::host_ip(i), addr::host_mac(i)));
        }
        static_arp(&gateway_handle, &bindings);
        for handle in &hosts {
            static_arp(handle, &bindings);
        }
    }

    // --- Monitor fan-out hub + monitors ---
    let mut monitor_hub = None;
    let mut next_hub_port = 0u16;
    if needs_monitor {
        let hub_id = sim.add_device(Box::new(Hub::new("monitor-hub", 6)));
        sim.connect(hub_id, PortId(0), switch_id, PortId(mirror_port), Duration::from_micros(2))
            .unwrap();
        monitor_hub = Some(hub_id);
        next_hub_port = 1;
        let mut attach_monitor = |dev: Box<dyn arpshield_netsim::Device>| {
            let id = sim.add_device(dev);
            sim.connect(id, PortId(0), hub_id, PortId(next_hub_port), Duration::from_micros(2))
                .unwrap();
            next_hub_port += 1;
        };
        match scheme {
            SchemeKind::Passive => attach_monitor(Box::new(PassiveMonitor::new(
                PassiveConfig::default(),
                alerts.clone(),
            ))),
            SchemeKind::Stateful => attach_monitor(Box::new(StatefulMonitor::new(
                StatefulConfig::default(),
                alerts.clone(),
            ))),
            SchemeKind::ActiveProbe => attach_monitor(Box::new(ActiveProbeMonitor::new(
                ActiveProbeConfig::new(MacAddr::from_index(9000)),
                alerts.clone(),
            ))),
            SchemeKind::RateMonitor => {
                attach_monitor(Box::new(RateMonitor::new(RateConfig::default(), alerts.clone())))
            }
            SchemeKind::Hybrid => {
                attach_monitor(Box::new(StatefulMonitor::new(
                    StatefulConfig::default(),
                    alerts.clone(),
                )));
                attach_monitor(Box::new(ActiveProbeMonitor::new(
                    ActiveProbeConfig::new(MacAddr::from_index(9000)),
                    alerts.clone(),
                )));
            }
            _ => unreachable!(),
        }
    }

    BuiltLan {
        sim,
        switch: switch_handle,
        switch_id,
        gateway: gateway_handle,
        hosts,
        pings,
        alerts,
        truth,
        monitor_hub,
        next_free_port,
        next_hub_port,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_netsim::SimTime;

    #[test]
    fn baseline_lan_runs_and_pings_flow() {
        let mut lan = build(ScenarioConfig::new(1));
        lan.sim.run_until(SimTime::from_secs(5));
        for (i, ping) in lan.pings.iter().enumerate() {
            let p = ping.borrow();
            assert!(p.sent > 10, "host {i} sent {}", p.sent);
            assert!(
                p.received as f64 / p.sent as f64 > 0.95,
                "host {i} delivery {}/{}",
                p.received,
                p.sent
            );
        }
        assert!(lan.alerts.is_empty());
    }

    #[test]
    fn every_scheme_deploys_and_stays_quiet_when_benign() {
        for scheme in SchemeKind::all() {
            let mut lan = build(ScenarioConfig::new(2).with_scheme(scheme).with_hosts(4));
            lan.sim.run_until(SimTime::from_secs(6));
            let p = lan.pings[0].borrow();
            assert!(
                p.received as f64 / p.sent.max(1) as f64 > 0.9,
                "{scheme}: victim connectivity broken ({}/{})",
                p.received,
                p.sent
            );
            assert!(
                lan.alerts.is_empty(),
                "{scheme}: false positives on benign traffic: {:?}",
                lan.alerts.alerts()
            );
        }
    }

    #[test]
    fn static_arp_lan_sends_no_arp() {
        let mut lan =
            build(ScenarioConfig::new(3).with_scheme(SchemeKind::StaticArp).with_hosts(3));
        lan.sim.run_until(SimTime::from_secs(5));
        for h in &lan.hosts {
            assert_eq!(h.stats.borrow().arp_requests_sent, 0);
        }
    }

    #[test]
    fn attach_uses_free_ports() {
        let mut lan = build(ScenarioConfig::new(4).with_hosts(2));
        struct Dummy;
        impl arpshield_netsim::Device for Dummy {
            fn name(&self) -> &str {
                "dummy"
            }
            fn port_count(&self) -> usize {
                1
            }
            fn on_frame(&mut self, _: &mut arpshield_netsim::DeviceCtx<'_>, _: PortId, _: &[u8]) {}
        }
        let a = lan.attach(Box::new(Dummy));
        let b = lan.attach(Box::new(Dummy));
        assert_ne!(a, b);
    }
}
