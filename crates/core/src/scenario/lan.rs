//! The standard experimental LAN and per-scheme deployment wiring.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_attacks::GroundTruth;
use arpshield_host::apps::{PingApp, PingStats};
use arpshield_host::{ArpPolicy, Host, HostConfig, HostHandle, RetryPolicy};
use arpshield_netsim::{
    DeviceId, Hub, LinkProfile, PortId, SimTime, Simulator, Switch, SwitchConfig, SwitchHandle,
};
use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};
use arpshield_schemes::{
    static_arp, AlertLog, LanPlan, SchemeHardening, SchemeKind, SchemeResources,
};
use arpshield_trace::Tracer;

/// Addressing constants of the standard LAN.
pub mod addr {
    use super::*;

    /// The /24 all scenarios use.
    pub fn subnet() -> Ipv4Cidr {
        Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)
    }

    /// Gateway: `10.0.0.1`.
    pub const GATEWAY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    /// Gateway MAC.
    pub fn gateway_mac() -> MacAddr {
        MacAddr::from_index(100)
    }
    /// Workload host `i` (0-based): `10.0.0.(2+i)`.
    pub fn host_ip(i: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2 + i as u8)
    }
    /// Workload host `i`'s MAC.
    pub fn host_mac(i: usize) -> MacAddr {
        MacAddr::from_index(1000 + i as u32)
    }
    /// The S-ARP key distributor: `10.0.0.250`.
    pub const AKD_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 250);
    /// AKD MAC.
    pub fn akd_mac() -> MacAddr {
        MacAddr::from_index(2500)
    }
    /// The attacker's NIC.
    pub fn attacker_mac() -> MacAddr {
        MacAddr::from_index(6666)
    }
    /// Keypair seed for a principal (per-IP).
    pub fn key_seed(ip: Ipv4Addr) -> u64 {
        u64::from(ip.to_u32())
    }
    /// The AKD's own signing seed.
    pub const AKD_KEY_SEED: u64 = 0xA4D;
}

/// Parameters of the standard experimental LAN.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Determinism seed.
    pub seed: u64,
    /// Number of workload hosts (excluding gateway/AKD/attacker).
    pub n_hosts: usize,
    /// The defence under test.
    pub scheme: SchemeKind,
    /// ARP policy of unprotected hosts (schemes may override).
    pub policy: ArpPolicy,
    /// Dynamic ARP entry lifetime.
    pub arp_timeout: Duration,
    /// Host ping interval toward the gateway.
    pub ping_interval: Duration,
    /// Total simulated run length.
    pub duration: Duration,
    /// When the attacker (if any) first acts — after the warm-up in
    /// which legitimate bindings circulate.
    pub attack_start: Duration,
    impairment: LinkProfile,
    resolver_retry: RetryPolicy,
    hardening: SchemeHardening,
}

impl ScenarioConfig {
    /// Defaults: 8 hosts, `Standard` policy, no scheme, 12 s run with the
    /// attack at 3 s, perfect wires, legacy resolver retries.
    pub fn new(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            n_hosts: 8,
            scheme: SchemeKind::None,
            policy: ArpPolicy::Standard,
            arp_timeout: Duration::from_secs(60),
            ping_interval: Duration::from_millis(250),
            duration: Duration::from_secs(12),
            attack_start: Duration::from_secs(3),
            impairment: LinkProfile::PERFECT,
            resolver_retry: RetryPolicy::default(),
            hardening: SchemeHardening::default(),
        }
    }

    /// Selects the defence scheme.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the unprotected-host ARP policy.
    pub fn with_policy(mut self, policy: ArpPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the workload size.
    pub fn with_hosts(mut self, n: usize) -> Self {
        assert!(n >= 1 && n <= 200, "host count must be in 1..=200");
        self.n_hosts = n;
        self
    }

    /// Sets the run length.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the ARP cache timeout.
    pub fn with_arp_timeout(mut self, timeout: Duration) -> Self {
        self.arp_timeout = timeout;
        self
    }

    /// Applies a link impairment profile to every link in the LAN.
    pub fn with_impairment(mut self, profile: LinkProfile) -> Self {
        self.impairment = profile;
        self
    }

    /// Sets the ARP resolver retransmission policy of every host.
    pub fn with_resolver_retry(mut self, policy: RetryPolicy) -> Self {
        self.resolver_retry = policy;
        self
    }

    /// Sets the schemes' fault-tolerance knobs (probe re-issues,
    /// key-fetch retries) for lossy runs.
    pub fn with_hardening(mut self, hardening: SchemeHardening) -> Self {
        self.hardening = hardening;
        self
    }

    /// The link impairment profile applied to the LAN.
    pub fn impairment(&self) -> LinkProfile {
        self.impairment
    }

    /// The host resolver retransmission policy.
    pub fn resolver_retry(&self) -> RetryPolicy {
        self.resolver_retry
    }

    /// The schemes' fault-tolerance knobs.
    pub fn hardening(&self) -> SchemeHardening {
        self.hardening
    }
}

/// A constructed (not yet run) experimental LAN.
pub struct BuiltLan {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Live switch state.
    pub switch: SwitchHandle,
    /// The switch's device id.
    pub switch_id: DeviceId,
    /// The gateway host.
    pub gateway: HostHandle,
    /// Workload hosts; index 0 is the designated victim.
    pub hosts: Vec<HostHandle>,
    /// Per-host gateway-ping statistics (same order as `hosts`).
    pub pings: Vec<Rc<RefCell<PingStats>>>,
    /// Scheme alerts.
    pub alerts: AlertLog,
    /// Attacker ground truth.
    pub truth: GroundTruth,
    /// The monitor fan-out hub (present for monitor-based schemes).
    pub monitor_hub: Option<DeviceId>,
    /// The run's tracer (disabled unless a trace collector is
    /// installed); scenario wrappers annotate it with their labels.
    pub tracer: Tracer,
    next_free_port: u16,
    next_hub_port: u16,
    config: ScenarioConfig,
}

impl std::fmt::Debug for BuiltLan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltLan")
            .field("hosts", &self.hosts.len())
            .field("scheme", &self.config.scheme)
            .finish()
    }
}

impl BuiltLan {
    /// The scenario parameters this LAN was built from.
    pub fn config(&self) -> ScenarioConfig {
        self.config
    }

    /// The designated victim host (`hosts[0]`).
    pub fn victim(&self) -> &HostHandle {
        &self.hosts[0]
    }

    /// Attaches a device to the next free access port; returns its id.
    pub fn attach(&mut self, device: Box<dyn arpshield_netsim::Device>) -> DeviceId {
        self.attach_with_latency(device, Duration::from_micros(5))
    }

    /// Attaches a device with a chosen link latency.
    ///
    /// Attack scenarios use a shorter latency for the attacker than the
    /// 5 µs host links: poisoning tools answer from a userspace sniff
    /// loop with no protocol stack in the path, which is what lets them
    /// win reply races against legitimate responders.
    pub fn attach_with_latency(
        &mut self,
        device: Box<dyn arpshield_netsim::Device>,
        latency: Duration,
    ) -> DeviceId {
        let id = self.sim.add_device(device);
        let port = self.next_free_port;
        self.next_free_port += 1;
        self.sim
            .connect(id, PortId(0), self.switch_id, PortId(port), latency)
            .expect("scenario switch ran out of ports");
        id
    }

    /// Attaches a monitor to the mirror fan-out hub.
    ///
    /// # Panics
    ///
    /// Panics if the scenario was built without a monitor hub.
    pub fn attach_monitor(&mut self, device: Box<dyn arpshield_netsim::Device>) -> DeviceId {
        let hub = self.monitor_hub.expect("scenario has no monitor hub");
        let id = self.sim.add_device(device);
        let port = self.next_hub_port;
        self.next_hub_port += 1;
        self.sim
            .connect(id, PortId(0), hub, PortId(port), Duration::from_micros(5))
            .expect("monitor hub ran out of ports");
        id
    }
}

/// Builds the standard LAN with `config.scheme` deployed.
///
/// Topology: one switch; gateway on port 0 (the DAI-trusted port), the
/// `n_hosts` workload hosts next, every host pinging the gateway. For
/// monitor-based schemes the switch mirrors all ingress traffic to a
/// fan-out hub carrying the monitors. `hosts[0]` is the designated
/// victim of any subsequently attached attack.
///
/// All scheme-specific wiring comes from
/// [`SchemeKind::instantiate`]: this builder only applies the
/// mechanisms the returned
/// [`SchemeInstallation`](arpshield_schemes::SchemeInstallation)
/// declares, with no per-scheme branches.
pub fn build(config: ScenarioConfig) -> BuiltLan {
    // One recorder per run, labelled with the full parameter tuple so
    // cells that share a seed across policies/schemes stay distinct in
    // the manifest. Disabled (and allocation-free from here on) unless
    // the caller installed a trace collector.
    let tracer = Tracer::for_current_run(format!(
        "scheme={} policy={:?} hosts={} seed={} duration_ms={}",
        config.scheme,
        config.policy,
        config.n_hosts,
        config.seed,
        config.duration.as_millis()
    ));
    let alerts = AlertLog::new();
    alerts.set_tracer(tracer.clone());
    let truth = GroundTruth::new();

    // --- Scheme instantiation ---
    // Trusted ports: the gateway's (0) and the first expansion port,
    // reserved for trusted infrastructure (benign scenarios attach their
    // DHCP server there; attack scenarios put the passive sampler there,
    // which transmits nothing).
    let infrastructure_port = PortId(1 + config.n_hosts as u16);
    let plan = LanPlan {
        gateway: (addr::GATEWAY_IP, addr::gateway_mac()),
        hosts: (0..config.n_hosts).map(|i| (addr::host_ip(i), addr::host_mac(i))).collect(),
        akd: (addr::AKD_IP, addr::akd_mac()),
        trusted_ports: vec![PortId(0), infrastructure_port],
        probe_source_mac: MacAddr::from_index(9000),
        tarp_lta_seed: 0x17A,
        akd_key_seed: addr::AKD_KEY_SEED,
        ticket_lifetime: SimTime::from_secs(86_400),
        sarp_max_age: Duration::from_secs(5),
        hardening: config.hardening,
    };
    let mut resources = SchemeResources::new(plan, alerts.clone());
    let installation = config.scheme.instantiate(&mut resources);

    let needs_monitor = !installation.monitors.is_empty();
    let ports = config.n_hosts + 12;
    let mirror_port = (ports - 1) as u16;

    // --- Switch ---
    let switch_config = SwitchConfig {
        ports,
        cam_capacity: 1024,
        cam_aging: Duration::from_secs(300),
        mirror_to: needs_monitor.then_some(PortId(mirror_port)),
        port_security: installation.port_security,
        ..Default::default()
    };
    let mut sim = Simulator::new(config.seed);
    sim.set_default_impairment(config.impairment);
    sim.set_tracer(tracer.clone());
    // Anchor every timeline with the wiring facts an inspector needs
    // to read the frame endpoints that follow.
    tracer.event(0, "scenario.topology", || {
        (
            "lan".to_string(),
            format!(
                "switch_ports={ports} hosts={} scheme={} policy={:?} mirror={}",
                config.n_hosts, config.scheme, config.policy, needs_monitor
            ),
        )
    });
    let (mut switch, switch_handle) = Switch::new("sw", switch_config);
    switch.set_tracer(tracer.clone());
    if let Some(inspector) = installation.inspector {
        switch.set_inspector(inspector);
    }
    let switch_id = sim.add_device(Box::new(switch));

    // --- Hosts ---
    let host_policy = installation.policy_override.unwrap_or(config.policy);
    let host_config = |name: String, mac: MacAddr, ip: Ipv4Addr| {
        HostConfig::static_ip(name, mac, ip, addr::subnet())
            .with_policy(host_policy)
            .with_arp_timeout(config.arp_timeout)
            .with_resolver_retry(config.resolver_retry)
    };
    let add_agent = |host: &mut Host, ip: Ipv4Addr, mac: MacAddr| {
        if let Some(agent) = &installation.host_agent {
            host.add_hook(agent(ip, mac));
        }
    };

    // --- Gateway (port 0) ---
    let (mut gateway, gateway_handle) =
        Host::new(host_config("gw".into(), addr::gateway_mac(), addr::GATEWAY_IP));
    gateway.set_tracer(tracer.clone());
    add_agent(&mut gateway, addr::GATEWAY_IP, addr::gateway_mac());
    let gw_id = sim.add_device(Box::new(gateway));
    sim.connect(gw_id, PortId(0), switch_id, PortId(0), Duration::from_micros(5)).unwrap();

    // --- Workload hosts (ports 1..=n) ---
    let mut hosts = Vec::with_capacity(config.n_hosts);
    let mut pings = Vec::with_capacity(config.n_hosts);
    for i in 0..config.n_hosts {
        let ip = addr::host_ip(i);
        let (mut host, handle) = Host::new(host_config(format!("h{i}"), addr::host_mac(i), ip));
        host.set_tracer(tracer.clone());
        add_agent(&mut host, ip, addr::host_mac(i));
        let (ping, ping_stats) = PingApp::new(addr::GATEWAY_IP, config.ping_interval);
        host.add_app(Box::new(ping));
        let id = sim.add_device(Box::new(host));
        sim.connect(id, PortId(0), switch_id, PortId(1 + i as u16), Duration::from_micros(5))
            .unwrap();
        hosts.push(handle);
        pings.push(ping_stats);
    }
    let mut next_free_port = 1 + config.n_hosts as u16;

    // --- Auxiliary infrastructure station (the S-ARP AKD) ---
    if let Some(aux) = installation.aux_station {
        let (mut aux_host, _) = Host::new(
            HostConfig::static_ip(aux.name, aux.mac, aux.ip, addr::subnet())
                .with_policy(ArpPolicy::StaticOnly)
                .with_arp_timeout(config.arp_timeout)
                .with_resolver_retry(config.resolver_retry),
        );
        aux_host.set_tracer(tracer.clone());
        for hook in aux.hooks {
            aux_host.add_hook(hook);
        }
        for app in aux.apps {
            aux_host.add_app(app);
        }
        let id = sim.add_device(Box::new(aux_host));
        sim.connect(id, PortId(0), switch_id, PortId(next_free_port), Duration::from_micros(5))
            .unwrap();
        next_free_port += 1;
    }

    // --- Static entries ---
    if let Some(bindings) = &installation.static_bindings {
        static_arp(&gateway_handle, bindings);
        for handle in &hosts {
            static_arp(handle, bindings);
        }
    }

    // --- Monitor fan-out hub + monitors ---
    let mut monitor_hub = None;
    let mut next_hub_port = 0u16;
    if needs_monitor {
        let mut hub = Hub::new("monitor-hub", 6);
        hub.set_tracer(tracer.clone());
        let hub_id = sim.add_device(Box::new(hub));
        sim.connect(hub_id, PortId(0), switch_id, PortId(mirror_port), Duration::from_micros(2))
            .unwrap();
        monitor_hub = Some(hub_id);
        next_hub_port = 1;
        for monitor in installation.monitors {
            let id = sim.add_device(monitor);
            sim.connect(id, PortId(0), hub_id, PortId(next_hub_port), Duration::from_micros(2))
                .unwrap();
            next_hub_port += 1;
        }
    }

    BuiltLan {
        sim,
        switch: switch_handle,
        switch_id,
        gateway: gateway_handle,
        hosts,
        pings,
        alerts,
        truth,
        monitor_hub,
        tracer,
        next_free_port,
        next_hub_port,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_netsim::SimTime;

    #[test]
    fn baseline_lan_runs_and_pings_flow() {
        let mut lan = build(ScenarioConfig::new(1));
        lan.sim.run_until(SimTime::from_secs(5));
        for (i, ping) in lan.pings.iter().enumerate() {
            let p = ping.borrow();
            assert!(p.sent > 10, "host {i} sent {}", p.sent);
            assert!(
                p.received as f64 / p.sent as f64 > 0.95,
                "host {i} delivery {}/{}",
                p.received,
                p.sent
            );
        }
        assert!(lan.alerts.is_empty());
    }

    #[test]
    fn every_scheme_deploys_and_stays_quiet_when_benign() {
        for scheme in SchemeKind::all() {
            let mut lan = build(ScenarioConfig::new(2).with_scheme(scheme).with_hosts(4));
            lan.sim.run_until(SimTime::from_secs(6));
            let p = lan.pings[0].borrow();
            assert!(
                p.received as f64 / p.sent.max(1) as f64 > 0.9,
                "{scheme}: victim connectivity broken ({}/{})",
                p.received,
                p.sent
            );
            assert!(
                lan.alerts.is_empty(),
                "{scheme}: false positives on benign traffic: {:?}",
                lan.alerts.alerts()
            );
        }
    }

    #[test]
    fn static_arp_lan_sends_no_arp() {
        let mut lan =
            build(ScenarioConfig::new(3).with_scheme(SchemeKind::StaticArp).with_hosts(3));
        lan.sim.run_until(SimTime::from_secs(5));
        for h in &lan.hosts {
            assert_eq!(h.stats.borrow().arp_requests_sent, 0);
        }
    }

    #[test]
    fn attach_uses_free_ports() {
        let mut lan = build(ScenarioConfig::new(4).with_hosts(2));
        struct Dummy;
        impl arpshield_netsim::Device for Dummy {
            fn name(&self) -> &str {
                "dummy"
            }
            fn port_count(&self) -> usize {
                1
            }
            fn on_frame(&mut self, _: &mut arpshield_netsim::DeviceCtx<'_>, _: PortId, _: &[u8]) {}
        }
        let a = lan.attach(Box::new(Dummy));
        let b = lan.attach(Box::new(Dummy));
        assert_ne!(a, b);
    }

    #[test]
    fn impaired_lan_still_pings_with_hardened_retries() {
        let mut lan = build(
            ScenarioConfig::new(5)
                .with_hosts(3)
                .with_impairment(LinkProfile::default().with_loss(0.05))
                .with_resolver_retry(RetryPolicy::exponential(
                    Duration::from_millis(500),
                    5,
                    Duration::from_secs(2),
                ))
                .with_hardening(SchemeHardening::lossy()),
        );
        lan.sim.run_until(SimTime::from_secs(6));
        let p = lan.pings[0].borrow();
        assert!(p.sent > 10);
        assert!(
            p.received as f64 / p.sent as f64 > 0.7,
            "lossy delivery collapsed: {}/{}",
            p.received,
            p.sent
        );
        assert!(lan.sim.wire_stats().dropped_lost > 0, "losses must actually occur");
    }
}
