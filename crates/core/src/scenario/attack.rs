//! Attack scenarios: the standard LAN plus one attacker.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use arpshield_attacks::{
    ArpPoisoner, DhcpStarver, DhcpStarverConfig, MacFlooder, MacFlooderConfig, MitmRelay,
    MitmRelayConfig, PoisonConfig, PoisonVariant,
};
use arpshield_netsim::SimTime;

use crate::metrics::{CacheSampler, SampleLog, Watch};
use crate::scenario::lan::{addr, build, BuiltLan, ScenarioConfig};

/// Which attack an [`AttackScenario`] mounts against the standard LAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackSpec {
    /// One ARP-poisoning variant, re-emitted every 2 s, targeting the
    /// victim's binding of the gateway.
    Poison(PoisonVariant),
    /// Full-duplex MITM between the victim and the gateway.
    Mitm,
    /// CAM flooding at `macof` rate.
    Flood,
    /// DHCP-pool starvation (requires a DHCP-serving gateway; used by
    /// the F6 experiment which builds its own LAN).
    Starve,
}

impl AttackSpec {
    /// Report label.
    pub fn label(&self) -> String {
        match self {
            AttackSpec::Poison(v) => v.label().to_string(),
            AttackSpec::Mitm => "mitm-relay".to_string(),
            AttackSpec::Flood => "mac-flood".to_string(),
            AttackSpec::Starve => "dhcp-starve".to_string(),
        }
    }
}

/// A runnable attack scenario.
#[derive(Debug, Clone, Copy)]
pub struct AttackScenario {
    /// LAN parameters.
    pub config: ScenarioConfig,
    /// The attack to mount.
    pub spec: AttackSpec,
}

/// Everything an attack run leaves behind, ready for scoring.
#[derive(Debug)]
pub struct CompletedRun {
    /// The LAN after the run (handles still live for inspection).
    pub lan: BuiltLan,
    /// The attack that ran.
    pub spec: AttackSpec,
    /// Ground-truth cache samples of the victim.
    pub samples: Rc<RefCell<SampleLog>>,
    /// When the attacker was scheduled to first act.
    pub attack_start: SimTime,
}

impl AttackScenario {
    /// A poisoning scenario.
    pub fn poisoning(config: ScenarioConfig, variant: PoisonVariant) -> Self {
        AttackScenario { config, spec: AttackSpec::Poison(variant) }
    }

    /// A man-in-the-middle scenario.
    pub fn mitm(config: ScenarioConfig) -> Self {
        AttackScenario { config, spec: AttackSpec::Mitm }
    }

    /// A CAM-flooding scenario.
    pub fn flood(config: ScenarioConfig) -> Self {
        AttackScenario { config, spec: AttackSpec::Flood }
    }

    /// Builds the LAN, injects the attacker, runs to completion.
    pub fn run(self) -> CompletedRun {
        let config = self.config;
        let mut lan = build(config);
        lan.tracer.annotate("attack", &self.spec.label());

        // Sampler watching the victim's binding of the gateway.
        let watch = Watch {
            host: lan.victim().clone(),
            ip: addr::GATEWAY_IP,
            legitimate_mac: addr::gateway_mac(),
        };
        let (sampler, samples) = CacheSampler::new(vec![watch], Duration::from_millis(50));
        lan.attach(Box::new(sampler));

        let truth = lan.truth.clone();
        let fast = Duration::from_micros(1); // attacker fast path; see attach_with_latency
        match self.spec {
            AttackSpec::Poison(variant) => {
                lan.attach_with_latency(
                    Box::new(ArpPoisoner::new(
                        PoisonConfig {
                            attacker_mac: addr::attacker_mac(),
                            variant,
                            victim_ip: addr::GATEWAY_IP,
                            claimed_mac: if variant == PoisonVariant::BlackholeDos {
                                arpshield_packet::MacAddr::new([0x02, 0xde, 0xad, 0, 0, 1])
                            } else {
                                addr::attacker_mac()
                            },
                            target: Some((addr::host_ip(0), addr::host_mac(0))),
                            start_delay: config.attack_start,
                            repeat: Some(Duration::from_secs(2)),
                        },
                        truth,
                    )),
                    fast,
                );
            }
            AttackSpec::Mitm => {
                lan.attach_with_latency(
                    Box::new(MitmRelay::new(
                        MitmRelayConfig {
                            attacker_mac: addr::attacker_mac(),
                            side_a: (addr::GATEWAY_IP, addr::gateway_mac()),
                            side_b: (addr::host_ip(0), addr::host_mac(0)),
                            start_delay: config.attack_start,
                            repeat: Duration::from_secs(2),
                        },
                        truth,
                    )),
                    fast,
                );
            }
            AttackSpec::Flood => {
                lan.attach(Box::new(MacFlooder::new(
                    MacFlooderConfig {
                        start_delay: config.attack_start,
                        ..MacFlooderConfig::macof_rate(addr::attacker_mac())
                    },
                    truth,
                )));
            }
            AttackSpec::Starve => {
                lan.attach(Box::new(DhcpStarver::new(
                    DhcpStarverConfig {
                        attacker_mac: addr::attacker_mac(),
                        start_delay: config.attack_start,
                        rate_per_sec: 50,
                        complete_handshake: true,
                        total: None,
                    },
                    truth,
                )));
            }
        }

        let deadline = SimTime::ZERO + config.duration;
        lan.sim.run_until(deadline);
        CompletedRun {
            lan,
            spec: self.spec,
            samples,
            attack_start: SimTime::ZERO + config.attack_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_schemes::SchemeKind;

    #[test]
    fn undefended_lan_gets_poisoned() {
        let run = AttackScenario::poisoning(
            ScenarioConfig::new(5).with_hosts(3),
            PoisonVariant::UnicastRequestProbeStuffing,
        )
        .run();
        assert!(run.samples.borrow().ever_poisoned());
        assert!(run.samples.borrow().first_poisoned_at().unwrap() >= run.attack_start);
    }

    #[test]
    fn sarp_lan_is_not_poisoned() {
        let run = AttackScenario::poisoning(
            ScenarioConfig::new(6).with_hosts(3).with_scheme(SchemeKind::SArp),
            PoisonVariant::GratuitousReply,
        )
        .run();
        assert!(!run.samples.borrow().ever_poisoned());
        assert!(!run.lan.alerts.is_empty(), "S-ARP logs the rejected forgeries");
    }

    #[test]
    fn mitm_poisons_and_relays() {
        let run = AttackScenario::mitm(
            ScenarioConfig::new(7)
                .with_hosts(2)
                .with_policy(arpshield_host::ArpPolicy::Promiscuous),
        )
        .run();
        assert!(run.samples.borrow().ever_poisoned());
        // Victim connectivity largely preserved (covert relay).
        let p = run.lan.pings[0].borrow();
        assert!(p.received as f64 / p.sent as f64 > 0.85, "{}/{}", p.received, p.sent);
    }
}
