//! Enterprise-scale two-tier switched fabric for the T6S sweep.
//!
//! The legacy `lan` builder instantiates full host stacks (resolver,
//! cache policy, retry machinery) and tops out around 200 stations.
//! Scaling the simulator itself to 10^5 hosts needs the opposite
//! trade: a minimal station model that exercises the *simulator* —
//! timer pressure, fan-out, CAM capacity — without paying a full ARP
//! stack per station.
//!
//! Topology: one root switch with the gateway on port 0 and up to
//! [`LEAF_CAPACITY`]-host leaf switches on the remaining ports (a
//! `PortId` is 16-bit, so a single flat switch caps at 65 535 ports —
//! real enterprise access/distribution tiers have the same shape).
//! Every station knows the gateway binding up front, the way a DHCP
//! lease hands it out, so background traffic is *unicast*: each
//! station periodically refreshes its gateway entry with a directed
//! ARP request (RFC 1122 §2.3.2.1 style) and the gateway answers. A
//! small fixed-size set of "churners" models DHCP lease turnover: a
//! broadcast gratuitous announcement per renewal, at a global rate
//! that stays constant as the LAN grows — otherwise broadcast fan-out
//! would swamp the sweep with O(hosts²) deliveries and measure
//! nothing but itself.

use std::time::Duration;

use arpshield_netsim::{
    eth_frame, Device, DeviceCtx, PortId, Simulator, Switch, SwitchConfig, SwitchHandle,
};
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetView, Ipv4Addr, MacAddr};

/// Hosts per leaf switch; the uplink rides on one extra port.
pub const LEAF_CAPACITY: usize = 1024;

const CHAT_TOKEN: u64 = 1;
const CHURN_TOKEN: u64 = 2;

/// Locally-administered MAC for station `i`.
fn station_mac(i: usize) -> MacAddr {
    let b = (i as u32).to_be_bytes();
    MacAddr::new([0x02, 0x10, b[0], b[1], b[2], b[3]])
}

/// Station `i` lives at 10.x.y.z in one flat /8 — a /24 only holds 254.
fn station_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::from_u32(0x0A00_0000 + 2 + i as u32)
}

const GATEWAY_MAC: MacAddr = MacAddr::new([0x02, 0xFF, 0, 0, 0, 1]);
const GATEWAY_IP: Ipv4Addr = Ipv4Addr::from_u32(0x0A00_0001);

/// SplitMix64, for deterministic per-station phase scatter.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knobs for one scale-sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Determinism seed.
    pub seed: u64,
    /// Station count (excluding the gateway).
    pub n_hosts: usize,
    /// Simulated run length (timers stagger across it).
    pub duration: Duration,
    /// Per-station gateway-refresh period.
    pub chat_period: Duration,
    /// Stations that cycle DHCP leases — a fixed, small set so the
    /// global broadcast rate is independent of `n_hosts`.
    pub churners: usize,
    /// Per-churner lease-turnover period.
    pub churn_period: Duration,
}

impl ScaleConfig {
    /// Defaults: 2 s refresh per station, 8 churners renewing once a
    /// second, over a 10 s run.
    pub fn new(seed: u64, n_hosts: usize) -> Self {
        ScaleConfig {
            seed,
            n_hosts,
            duration: Duration::from_secs(10),
            chat_period: Duration::from_secs(2),
            churners: 8.min(n_hosts),
            churn_period: Duration::from_secs(1),
        }
    }

    /// Overrides the simulated run length.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }
}

/// A minimal station: refreshes its preconfigured gateway entry on a
/// timer, and (when a churner) broadcasts a gratuitous announcement
/// per simulated lease renewal. Replies are absorbed without parsing —
/// the station model must stay lighter than the fabric it loads.
struct ScaleHost {
    name: String,
    mac: MacAddr,
    ip: Ipv4Addr,
    chat_period: Duration,
    chat_phase: Duration,
    churn: Option<(Duration, Duration)>,
}

impl Device for ScaleHost {
    fn name(&self) -> &str {
        &self.name
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.chat_phase, CHAT_TOKEN);
        if let Some((_, phase)) = self.churn {
            ctx.schedule_in(phase, CHURN_TOKEN);
        }
    }
    fn on_frame(&mut self, _ctx: &mut DeviceCtx<'_>, _port: PortId, _frame: &[u8]) {}
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            CHAT_TOKEN => {
                // Directed refresh of a cache entry we already hold:
                // unicast to the gateway, no flood.
                let arp = ArpPacket::request(self.mac, self.ip, GATEWAY_IP);
                ctx.send(PortId(0), eth_frame(GATEWAY_MAC, self.mac, EtherType::ARP, &arp));
                ctx.schedule_in(self.chat_period, CHAT_TOKEN);
            }
            CHURN_TOKEN => {
                // A fresh lease announces its binding to the segment.
                let arp = ArpPacket::gratuitous(ArpOp::Reply, self.mac, self.ip);
                ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, self.mac, EtherType::ARP, &arp));
                if let Some((period, _)) = self.churn {
                    ctx.schedule_in(period, CHURN_TOKEN);
                }
            }
            _ => {}
        }
    }
}

/// The default router: answers directed ARP requests for its address
/// and announces itself once at boot so every leaf CAM learns the
/// uplink path before the first station asks.
struct ScaleGateway {
    replies: u64,
}

impl Device for ScaleGateway {
    fn name(&self) -> &str {
        "gateway"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let arp = ArpPacket::gratuitous(ArpOp::Reply, GATEWAY_MAC, GATEWAY_IP);
        ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, GATEWAY_MAC, EtherType::ARP, &arp));
    }
    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        let Ok(view) = EthernetView::parse(frame) else { return };
        if view.ethertype() != EtherType::ARP {
            return;
        }
        let Ok(arp) = ArpPacket::parse(view.payload()) else { return };
        if arp.op == ArpOp::Request && arp.target_ip == GATEWAY_IP && !arp.is_gratuitous() {
            self.replies += 1;
            let reply = ArpPacket::reply_to(&arp, GATEWAY_MAC);
            ctx.send(PortId(0), eth_frame(arp.sender_mac, GATEWAY_MAC, EtherType::ARP, &reply));
        }
    }
}

/// A built scale fabric, ready to run.
pub struct ScaleLan {
    /// The simulation; run it to `config.duration`.
    pub sim: Simulator,
    /// Station count.
    pub n_hosts: usize,
    /// Root-switch handle (CAM holds every station that spoke).
    pub root: SwitchHandle,
}

/// Builds the two-tier fabric for `config`.
///
/// # Panics
///
/// Panics if `n_hosts` is zero or needs more leaves than a root
/// switch's 16-bit port space can take (not reachable below ~67M
/// hosts).
pub fn build(config: ScaleConfig) -> ScaleLan {
    assert!(config.n_hosts > 0, "a scale LAN needs at least one station");
    let n = config.n_hosts;
    let n_leaves = n.div_ceil(LEAF_CAPACITY);
    assert!(n_leaves + 1 <= u16::MAX as usize, "root port space exhausted");

    let mut sim = Simulator::new(config.seed);
    let host_leaf_latency = Duration::from_micros(5);
    let leaf_root_latency = Duration::from_micros(10);
    // CAM sizing: the root eventually holds every station; aging must
    // outlive the run or re-floods would dominate the measurement.
    let aging = config.duration * 2 + Duration::from_secs(60);

    let (root, root_handle) = Switch::new(
        "root",
        SwitchConfig {
            ports: n_leaves + 1,
            cam_capacity: n + 64,
            cam_aging: aging,
            ..SwitchConfig::default()
        },
    );
    let root_id = sim.add_device(Box::new(root));
    let gateway_id = sim.add_device(Box::new(ScaleGateway { replies: 0 }));
    sim.connect(gateway_id, PortId(0), root_id, PortId(0), leaf_root_latency)
        .expect("gateway uplink");

    for leaf in 0..n_leaves {
        let leaf_hosts = LEAF_CAPACITY.min(n - leaf * LEAF_CAPACITY);
        let (leaf_switch, _) = Switch::new(
            format!("leaf{leaf}"),
            SwitchConfig {
                ports: leaf_hosts + 1,
                cam_capacity: leaf_hosts + 64,
                cam_aging: aging,
                ..SwitchConfig::default()
            },
        );
        let leaf_id = sim.add_device(Box::new(leaf_switch));
        // Uplink on the leaf's last port, root ports 1..=n_leaves.
        sim.connect(
            leaf_id,
            PortId(leaf_hosts as u16),
            root_id,
            PortId((leaf + 1) as u16),
            leaf_root_latency,
        )
        .expect("leaf uplink");

        for p in 0..leaf_hosts {
            let i = leaf * LEAF_CAPACITY + p;
            let chat_ns = config.chat_period.as_nanos() as u64;
            let churn_ns = config.churn_period.as_nanos() as u64;
            let host = ScaleHost {
                name: format!("h{i}"),
                mac: station_mac(i),
                ip: station_ip(i),
                chat_period: config.chat_period,
                chat_phase: Duration::from_nanos(mix(config.seed, i as u64) % chat_ns),
                churn: (i < config.churners).then(|| {
                    (
                        config.churn_period,
                        Duration::from_nanos(mix(config.seed ^ 0xC0DE, i as u64) % churn_ns),
                    )
                }),
            };
            let host_id = sim.add_device(Box::new(host));
            sim.connect(host_id, PortId(0), leaf_id, PortId(p as u16), host_leaf_latency)
                .expect("host link");
        }
    }

    ScaleLan { sim, n_hosts: n, root: root_handle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_netsim::SimTime;

    #[test]
    fn stations_chat_and_the_gateway_answers() {
        let config = ScaleConfig::new(7, 2500).with_duration(Duration::from_secs(3));
        let mut lan = build(config);
        lan.sim.run_until(SimTime::ZERO + config.duration);
        let stats = lan.sim.wire_stats();
        assert!(stats.frames > 0);
        // Every station spoke at least once, so the root CAM saw all
        // of them plus the gateway and never overflowed.
        let cam = lan.root.cam.borrow();
        assert!(cam.occupancy() >= 2500, "root CAM holds {} entries", cam.occupancy());
        assert_eq!(lan.root.stats.borrow().cam_full_events, 0);
        // No unlinked ports exist in the fabric.
        assert_eq!(stats.dropped_no_link, 0);
    }

    #[test]
    fn same_seed_same_wire_counters() {
        let run = |seed| {
            let config = ScaleConfig::new(seed, 600).with_duration(Duration::from_secs(2));
            let mut lan = build(config);
            lan.sim.run_until(SimTime::ZERO + config.duration);
            lan.sim.wire_stats()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).frames, 0);
    }
}
