//! Enterprise-scale two-tier switched fabric for the T6S sweep.
//!
//! The legacy `lan` builder instantiates full host stacks (resolver,
//! cache policy, retry machinery) and tops out around 200 stations.
//! Scaling the simulator itself to 10^5 hosts needs the opposite
//! trade: a minimal station model that exercises the *simulator* —
//! timer pressure, fan-out, CAM capacity — without paying a full ARP
//! stack per station.
//!
//! Topology: one root switch with the gateway on port 0 and up to
//! [`LEAF_CAPACITY`]-host leaf switches on the remaining ports (a
//! `PortId` is 16-bit, so a single flat switch caps at 65 536 ports —
//! real enterprise access/distribution tiers have the same shape).
//! Every station knows the gateway binding up front, the way a DHCP
//! lease hands it out, so background traffic is *unicast*: each
//! station periodically refreshes its gateway entry with a directed
//! ARP request (RFC 1122 §2.3.2.1 style) and the gateway answers. A
//! small fixed-size set of "churners" models DHCP lease turnover: a
//! broadcast gratuitous announcement per renewal, at a global rate
//! that stays constant as the LAN grows — otherwise broadcast fan-out
//! would swamp the sweep with O(hosts²) deliveries and measure
//! nothing but itself.
//!
//! # Fabric variants
//!
//! [`Fabric::Flat`] is the legacy single-broadcast-domain build and
//! stays bit-identical to the published T6S baseline. [`Fabric::Vlan`]
//! puts each leaf on its own access VLAN behind 802.1Q trunk uplinks,
//! the way an enterprise access tier segments a campus: station ports
//! are access ports on the leaf's VID, leaf→root uplinks trunk exactly
//! that VID, and the gateway hangs off a trunk-all root port answering
//! on whichever VLAN asked. With `defend` set, dynamic ARP inspection
//! runs *inside* the fabric — on the root and on every leaf uplink —
//! keyed per VLAN, which is what the defended T6S sweep measures. A
//! fixed small set of "spoofers" (mirroring the churner trick) forges
//! the gateway's binding so defended runs have real violations to
//! count without changing the offered-load shape.

use std::time::Duration;

use arpshield_netsim::{
    eth_frame, Device, DeviceCtx, Frame, PortId, PortVlan, Simulator, Switch, SwitchConfig,
    SwitchHandle, VlanId, VlanSet,
};
use arpshield_packet::{
    ArpOp, ArpPacket, EtherType, EthernetEmit, EthernetView, Ipv4Addr, MacAddr, WireEmit,
};
use arpshield_schemes::{AlertLog, DaiConfig, DaiInspector};

/// Hosts per leaf switch; the uplink rides on one extra port.
pub const LEAF_CAPACITY: usize = 1024;

/// First access VLAN id; leaf `l` is VLAN `FIRST_VID + l`.
const FIRST_VID: VlanId = 10;

const CHAT_TOKEN: u64 = 1;
const CHURN_TOKEN: u64 = 2;
const SPOOF_TOKEN: u64 = 3;

/// Locally-administered MAC for station `i`.
fn station_mac(i: usize) -> MacAddr {
    let b = (i as u32).to_be_bytes();
    MacAddr::new([0x02, 0x10, b[0], b[1], b[2], b[3]])
}

/// Station `i` lives at 10.x.y.z in one flat /8 — a /24 only holds 254.
fn station_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::from_u32(0x0A00_0000 + 2 + i as u32)
}

const GATEWAY_MAC: MacAddr = MacAddr::new([0x02, 0xFF, 0, 0, 0, 1]);
const GATEWAY_IP: Ipv4Addr = Ipv4Addr::from_u32(0x0A00_0001);

/// SplitMix64, for deterministic per-station phase scatter.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Root port count for `n_hosts` stations: one uplink per leaf plus
/// the gateway on port 0.
///
/// # Panics
///
/// Panics when the root would need more than 65 536 ports. `PortId` is
/// a `u16`, so ids `0..=65535` are all addressable and a 65 536-port
/// root (65 535 leaves, ~67M hosts) is the largest valid build.
fn root_port_count(n_hosts: usize) -> usize {
    let n_leaves = n_hosts.div_ceil(LEAF_CAPACITY);
    let ports = n_leaves + 1;
    assert!(ports <= 65_536, "root port space exhausted");
    ports
}

/// The access VLAN for leaf `leaf` in the [`Fabric::Vlan`] build.
fn leaf_vid(leaf: usize) -> VlanId {
    FIRST_VID + leaf as VlanId
}

/// Which fabric [`build`] wires up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fabric {
    /// One untagged broadcast domain — the legacy T6S baseline.
    Flat,
    /// Each leaf is its own access VLAN behind 802.1Q trunks.
    Vlan {
        /// Install per-VLAN DAI inspectors on the root and every leaf.
        defend: bool,
    },
}

/// Knobs for one scale-sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Determinism seed.
    pub seed: u64,
    /// Station count (excluding the gateway).
    pub n_hosts: usize,
    /// Simulated run length (timers stagger across it).
    pub duration: Duration,
    /// Per-station gateway-refresh period.
    pub chat_period: Duration,
    /// Stations that cycle DHCP leases — a fixed, small set so the
    /// global broadcast rate is independent of `n_hosts`.
    pub churners: usize,
    /// Per-churner lease-turnover period.
    pub churn_period: Duration,
    /// Fabric variant (flat legacy domain or per-leaf VLANs).
    pub fabric: Fabric,
    /// Stations that forge the gateway's binding — poison attempts for
    /// the defended sweep. Fixed and small, like `churners`, so the
    /// attack rate does not scale with the LAN. The last `spoofers`
    /// station indices are used, keeping them disjoint from churners.
    pub spoofers: usize,
    /// Per-spoofer forge period.
    pub spoof_period: Duration,
}

impl ScaleConfig {
    /// Defaults: 2 s refresh per station, 8 churners renewing once a
    /// second, over a 10 s run, on the flat legacy fabric with no
    /// spoofers.
    pub fn new(seed: u64, n_hosts: usize) -> Self {
        ScaleConfig {
            seed,
            n_hosts,
            duration: Duration::from_secs(10),
            chat_period: Duration::from_secs(2),
            churners: 8.min(n_hosts),
            churn_period: Duration::from_secs(1),
            fabric: Fabric::Flat,
            spoofers: 0,
            spoof_period: Duration::from_secs(1),
        }
    }

    /// Overrides the simulated run length.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Switches to the per-leaf VLAN fabric (undefended).
    pub fn with_vlan_fabric(mut self) -> Self {
        self.fabric = Fabric::Vlan { defend: false };
        self
    }

    /// VLAN fabric with DAI deployed on the root and every leaf.
    pub fn with_dai(mut self) -> Self {
        self.fabric = Fabric::Vlan { defend: true };
        self
    }

    /// Adds `n` stations that forge the gateway binding.
    pub fn with_spoofers(mut self, n: usize) -> Self {
        self.spoofers = n;
        self
    }
}

/// Emits an Ethernet frame, 802.1Q-tagged when `vid` is set.
fn vlan_frame<P: WireEmit + ?Sized>(
    dst: MacAddr,
    src: MacAddr,
    vid: Option<VlanId>,
    ethertype: EtherType,
    payload: &P,
) -> Frame {
    let mut emit = EthernetEmit::new(dst, src, ethertype, payload);
    emit.vlan = vid;
    Frame::from_wire(&emit)
}

/// A minimal station: refreshes its preconfigured gateway entry on a
/// timer, and (when a churner) broadcasts a gratuitous announcement
/// per simulated lease renewal. Replies are absorbed without parsing —
/// the station model must stay lighter than the fabric it loads. A
/// spoofer additionally broadcasts forged claims to the gateway's IP,
/// the classic cache-poison attempt DAI exists to stop.
struct ScaleHost {
    name: String,
    mac: MacAddr,
    ip: Ipv4Addr,
    chat_period: Duration,
    chat_phase: Duration,
    churn: Option<(Duration, Duration)>,
    spoof: Option<(Duration, Duration)>,
}

impl Device for ScaleHost {
    fn name(&self) -> &str {
        &self.name
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.chat_phase, CHAT_TOKEN);
        if let Some((_, phase)) = self.churn {
            ctx.schedule_in(phase, CHURN_TOKEN);
        }
        if let Some((_, phase)) = self.spoof {
            ctx.schedule_in(phase, SPOOF_TOKEN);
        }
    }
    fn on_frame(&mut self, _ctx: &mut DeviceCtx<'_>, _port: PortId, _frame: &[u8]) {}
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            CHAT_TOKEN => {
                // Directed refresh of a cache entry we already hold:
                // unicast to the gateway, no flood.
                let arp = ArpPacket::request(self.mac, self.ip, GATEWAY_IP);
                ctx.send(PortId(0), eth_frame(GATEWAY_MAC, self.mac, EtherType::ARP, &arp));
                ctx.schedule_in(self.chat_period, CHAT_TOKEN);
            }
            CHURN_TOKEN => {
                // A fresh lease announces its binding to the segment.
                let arp = ArpPacket::gratuitous(ArpOp::Reply, self.mac, self.ip);
                ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, self.mac, EtherType::ARP, &arp));
                if let Some((period, _)) = self.churn {
                    ctx.schedule_in(period, CHURN_TOKEN);
                }
            }
            SPOOF_TOKEN => {
                // "I am the gateway" — sender binding forged to steer
                // the segment's traffic through this station.
                let arp = ArpPacket::gratuitous(ArpOp::Reply, self.mac, GATEWAY_IP);
                ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, self.mac, EtherType::ARP, &arp));
                if let Some((period, _)) = self.spoof {
                    ctx.schedule_in(period, SPOOF_TOKEN);
                }
            }
            _ => {}
        }
    }
}

/// The default router: answers directed ARP requests for its address
/// and announces itself once at boot so every leaf CAM learns the
/// uplink path before the first station asks. On the VLAN fabric it
/// sits on a trunk-all root port: boot announcements go out tagged
/// once per access VLAN, and replies carry the VID the request
/// arrived on — a router-on-a-stick in miniature.
struct ScaleGateway {
    replies: u64,
    /// Access VLANs served; empty on the flat fabric (untagged).
    vlans: Vec<VlanId>,
}

impl Device for ScaleGateway {
    fn name(&self) -> &str {
        "gateway"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let arp = ArpPacket::gratuitous(ArpOp::Reply, GATEWAY_MAC, GATEWAY_IP);
        if self.vlans.is_empty() {
            ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, GATEWAY_MAC, EtherType::ARP, &arp));
        } else {
            for &vid in &self.vlans {
                let frame =
                    vlan_frame(MacAddr::BROADCAST, GATEWAY_MAC, Some(vid), EtherType::ARP, &arp);
                ctx.send(PortId(0), frame);
            }
        }
    }
    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        let Ok(view) = EthernetView::parse(frame) else { return };
        if view.ethertype() != EtherType::ARP {
            return;
        }
        let Ok(arp) = ArpPacket::parse(view.payload()) else { return };
        if arp.op == ArpOp::Request && arp.target_ip == GATEWAY_IP && !arp.is_gratuitous() {
            self.replies += 1;
            let reply = ArpPacket::reply_to(&arp, GATEWAY_MAC);
            let frame =
                vlan_frame(arp.sender_mac, GATEWAY_MAC, view.vlan(), EtherType::ARP, &reply);
            ctx.send(PortId(0), frame);
        }
    }
}

/// A built scale fabric, ready to run.
pub struct ScaleLan {
    /// The simulation; run it to `config.duration`.
    pub sim: Simulator,
    /// Station count.
    pub n_hosts: usize,
    /// Root-switch handle (CAM holds every station that spoke).
    pub root: SwitchHandle,
    /// Leaf-switch handles, in leaf order.
    pub leaves: Vec<SwitchHandle>,
    /// Alert log shared by the in-fabric DAI inspectors; present only
    /// on the defended VLAN fabric.
    pub alerts: Option<AlertLog>,
}

impl ScaleLan {
    /// Frames dropped by in-fabric inspectors, summed over the root
    /// and every leaf.
    pub fn inspector_drops(&self) -> u64 {
        let leaf_drops: u64 = self.leaves.iter().map(|l| l.stats.borrow().dropped_inspector).sum();
        self.root.stats.borrow().dropped_inspector + leaf_drops
    }
}

/// Builds the two-tier fabric for `config`.
///
/// # Panics
///
/// Panics if `n_hosts` is zero or needs more leaves than a root
/// switch's 16-bit port space can take (not reachable below ~67M
/// hosts). The VLAN fabric additionally requires one 802.1Q VID per
/// leaf, capping it near 4M hosts.
pub fn build(config: ScaleConfig) -> ScaleLan {
    assert!(config.n_hosts > 0, "a scale LAN needs at least one station");
    let n = config.n_hosts;
    let n_leaves = n.div_ceil(LEAF_CAPACITY);
    let root_ports = root_port_count(n);
    let (vlan_fabric, defend) = match config.fabric {
        Fabric::Flat => (false, false),
        Fabric::Vlan { defend } => (true, defend),
    };
    if vlan_fabric {
        // 802.1Q VIDs are 12-bit; 1..=9 and 4095 are reserved here.
        assert!(leaf_vid(n_leaves - 1) < 4095, "VLAN id space exhausted");
    }
    let first_spoofer = n - config.spoofers.min(n);

    let mut sim = Simulator::new(config.seed);
    let host_leaf_latency = Duration::from_micros(5);
    let leaf_root_latency = Duration::from_micros(10);
    // CAM sizing: the root eventually holds every station; aging must
    // outlive the run or re-floods would dominate the measurement.
    let aging = config.duration * 2 + Duration::from_secs(60);

    let alerts = defend.then(AlertLog::new);
    // The root trunks every access VLAN: port 0 (gateway) carries all
    // of them, port l+1 carries exactly leaf l's VID — mis-wired tags
    // die at the trunk instead of leaking across leaves.
    let root_vlans = vlan_fabric.then(|| {
        let mut ports = vec![PortVlan::Trunk { allowed: VlanSet::All }];
        ports.extend(
            (0..n_leaves).map(|l| PortVlan::Trunk { allowed: VlanSet::Only(vec![leaf_vid(l)]) }),
        );
        ports
    });
    let (mut root, root_handle) = Switch::new(
        "root",
        SwitchConfig {
            ports: root_ports,
            cam_capacity: n + 64,
            cam_aging: aging,
            vlans: root_vlans,
            ..SwitchConfig::default()
        },
    );
    if let Some(log) = &alerts {
        // Root DAI: the gateway port is trusted, every leaf uplink is
        // validated against the full per-VLAN station table — the
        // second layer behind the leaf inspectors.
        let mut dai = DaiConfig::new([PortId(0)]);
        for i in 0..n {
            dai = dai.with_static_on(leaf_vid(i / LEAF_CAPACITY), station_ip(i), station_mac(i));
        }
        root.set_inspector(Box::new(DaiInspector::new(dai, log.clone())));
    }
    let root_id = sim.add_device(Box::new(root));
    let gateway_vlans =
        if vlan_fabric { (0..n_leaves).map(leaf_vid).collect() } else { Vec::new() };
    let gateway_id = sim.add_device(Box::new(ScaleGateway { replies: 0, vlans: gateway_vlans }));
    sim.connect(gateway_id, PortId(0), root_id, PortId(0), leaf_root_latency)
        .expect("gateway uplink");

    let mut leaf_handles = Vec::with_capacity(n_leaves);
    for leaf in 0..n_leaves {
        let leaf_hosts = LEAF_CAPACITY.min(n - leaf * LEAF_CAPACITY);
        let vid = leaf_vid(leaf);
        // Station ports are access ports on the leaf's VID; the uplink
        // trunks that VID (tagged) toward the root.
        let leaf_vlans = vlan_fabric.then(|| {
            let mut ports = vec![PortVlan::Access { pvid: vid }; leaf_hosts];
            ports.push(PortVlan::Trunk { allowed: VlanSet::Only(vec![vid]) });
            ports
        });
        let (mut leaf_switch, leaf_handle) = Switch::new(
            format!("leaf{leaf}"),
            SwitchConfig {
                ports: leaf_hosts + 1,
                cam_capacity: leaf_hosts + 64,
                cam_aging: aging,
                vlans: leaf_vlans,
                ..SwitchConfig::default()
            },
        );
        if let Some(log) = &alerts {
            // Leaf DAI: the uplink (where gateway replies arrive) is
            // trusted; station ports are validated against this leaf's
            // bindings plus the gateway's, all scoped to the leaf VID.
            let mut dai = DaiConfig::new([PortId(leaf_hosts as u16)]).with_static_on(
                vid,
                GATEWAY_IP,
                GATEWAY_MAC,
            );
            for p in 0..leaf_hosts {
                let i = leaf * LEAF_CAPACITY + p;
                dai = dai.with_static_on(vid, station_ip(i), station_mac(i));
            }
            leaf_switch.set_inspector(Box::new(DaiInspector::new(dai, log.clone())));
        }
        let leaf_id = sim.add_device(Box::new(leaf_switch));
        leaf_handles.push(leaf_handle);
        // Uplink on the leaf's last port, root ports 1..=n_leaves.
        sim.connect(
            leaf_id,
            PortId(leaf_hosts as u16),
            root_id,
            PortId((leaf + 1) as u16),
            leaf_root_latency,
        )
        .expect("leaf uplink");

        for p in 0..leaf_hosts {
            let i = leaf * LEAF_CAPACITY + p;
            let chat_ns = config.chat_period.as_nanos() as u64;
            let churn_ns = config.churn_period.as_nanos() as u64;
            let spoof_ns = config.spoof_period.as_nanos() as u64;
            let host = ScaleHost {
                name: format!("h{i}"),
                mac: station_mac(i),
                ip: station_ip(i),
                chat_period: config.chat_period,
                chat_phase: Duration::from_nanos(mix(config.seed, i as u64) % chat_ns),
                churn: (i < config.churners).then(|| {
                    (
                        config.churn_period,
                        Duration::from_nanos(mix(config.seed ^ 0xC0DE, i as u64) % churn_ns),
                    )
                }),
                spoof: (i >= first_spoofer).then(|| {
                    (
                        config.spoof_period,
                        Duration::from_nanos(mix(config.seed ^ 0x5D00F, i as u64) % spoof_ns),
                    )
                }),
            };
            let host_id = sim.add_device(Box::new(host));
            sim.connect(host_id, PortId(0), leaf_id, PortId(p as u16), host_leaf_latency)
                .expect("host link");
        }
    }

    ScaleLan { sim, n_hosts: n, root: root_handle, leaves: leaf_handles, alerts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_netsim::SimTime;

    #[test]
    fn stations_chat_and_the_gateway_answers() {
        let config = ScaleConfig::new(7, 2500).with_duration(Duration::from_secs(3));
        let mut lan = build(config);
        lan.sim.run_until(SimTime::ZERO + config.duration);
        let stats = lan.sim.wire_stats();
        assert!(stats.frames > 0);
        // Every station spoke at least once, so the root CAM saw all
        // of them plus the gateway and never overflowed.
        let cam = lan.root.cam.borrow();
        assert!(cam.occupancy() >= 2500, "root CAM holds {} entries", cam.occupancy());
        assert_eq!(lan.root.stats.borrow().cam_full_events, 0);
        // No unlinked ports exist in the fabric.
        assert_eq!(stats.dropped_no_link, 0);
    }

    #[test]
    fn same_seed_same_wire_counters() {
        let run = |seed| {
            let config = ScaleConfig::new(seed, 600).with_duration(Duration::from_secs(2));
            let mut lan = build(config);
            lan.sim.run_until(SimTime::ZERO + config.duration);
            lan.sim.wire_stats()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).frames, 0);
    }

    #[test]
    fn root_port_count_accepts_the_full_16_bit_port_space() {
        // 65 535 leaves + the gateway port = 65 536 ports, exactly the
        // number of ids a u16 can address (0..=65535). The old bound
        // `n_leaves + 1 <= u16::MAX` rejected this valid maximum.
        assert_eq!(root_port_count(65_535 * LEAF_CAPACITY), 65_536);
        assert_eq!(root_port_count(1), 2);
    }

    #[test]
    #[should_panic(expected = "root port space exhausted")]
    fn root_port_count_rejects_a_65537th_port() {
        root_port_count(65_535 * LEAF_CAPACITY + 1);
    }

    #[test]
    fn vlan_fabric_still_chats_and_counts_match_across_reruns() {
        let run = || {
            let config =
                ScaleConfig::new(13, 2500).with_duration(Duration::from_secs(3)).with_vlan_fabric();
            let mut lan = build(config);
            lan.sim.run_until(SimTime::ZERO + config.duration);
            let occupancy = lan.root.cam.borrow().occupancy();
            (lan.sim.wire_stats(), occupancy)
        };
        let (stats, cam) = run();
        assert!(stats.frames > 0);
        assert_eq!(stats.dropped_no_link, 0);
        // The root CAM still learns every station, now under per-leaf
        // VIDs carried across the trunks.
        assert!(cam >= 2500, "root CAM holds {cam} entries");
        assert_eq!(run().0, stats);
    }

    #[test]
    fn dai_in_fabric_stops_spoofers_and_leaves_chat_alone() {
        let build_pair = |defend: bool| {
            let mut config =
                ScaleConfig::new(21, 2100).with_duration(Duration::from_secs(3)).with_spoofers(4);
            config.fabric = Fabric::Vlan { defend };
            let mut lan = build(config);
            lan.sim.run_until(SimTime::ZERO + config.duration);
            lan
        };

        let defended = build_pair(true);
        // Spoofed gateway claims die at the leaf DAI: every drop is
        // alerted, and nothing leaks through to the root inspector.
        let drops = defended.inspector_drops();
        assert!(drops > 0, "spoofers should trip the leaf DAI");
        let log = defended.alerts.as_ref().expect("defended fabric logs alerts");
        assert_eq!(log.len() as u64, drops);
        assert_eq!(defended.root.stats.borrow().dropped_inspector, 0);
        // Legitimate refresh traffic is untouched: the CAM still saw
        // every station.
        assert!(defended.root.cam.borrow().occupancy() >= 2100);

        let undefended = build_pair(false);
        assert_eq!(undefended.inspector_drops(), 0);
        assert!(undefended.alerts.is_none());
        // The forged frames that DAI absorbed were real offered load:
        // the undefended fabric carries more frames end to end.
        let defended_frames = defended.sim.wire_stats().frames;
        let undefended_frames = undefended.sim.wire_stats().frames;
        assert!(
            undefended_frames > defended_frames,
            "undefended {undefended_frames} vs defended {defended_frames}"
        );
    }
}
