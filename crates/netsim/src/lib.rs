//! A deterministic discrete-event Ethernet LAN simulator.
//!
//! This crate is the substrate every arpshield experiment runs on. It
//! models a switched (or hubbed) local segment at frame granularity:
//! devices exchange raw Ethernet bytes over links with latency, a
//! [`Switch`] maintains a bounded CAM table with aging and a configurable
//! fail-open mode, and a mirror port feeds monitoring devices exactly the
//! way an IDS tap does on real hardware.
//!
//! Determinism is a design requirement: the event queue breaks timestamp
//! ties by insertion sequence and all randomness flows from a seeded
//! [`SimRng`], so every experiment in the paper reproduction replays
//! bit-identically from its seed.
//!
//! # Example
//!
//! ```rust
//! use arpshield_netsim::{Hub, Simulator, Device, DeviceCtx, PortId, SimTime};
//! use std::time::Duration;
//!
//! struct Beacon;
//! impl Device for Beacon {
//!     fn name(&self) -> &str { "beacon" }
//!     fn port_count(&self) -> usize { 1 }
//!     fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
//!         ctx.send(PortId(0), vec![0u8; 64]);
//!     }
//!     fn on_frame(&mut self, _ctx: &mut DeviceCtx<'_>, _port: PortId, _frame: &[u8]) {}
//! }
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add_device(Box::new(Beacon));
//! let b = sim.add_device(Box::new(Hub::new("hub", 4)));
//! sim.connect(a, PortId(0), b, PortId(0), Duration::from_micros(5)).unwrap();
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.wire_stats().frames, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod frame;
mod hub;
mod impair;
mod pool;
mod rng;
mod sim;
mod standalone;
mod switch;
mod time;
mod trace;
mod wheel;

pub use device::{Device, DeviceCtx, DeviceId, PortId};
pub use error::NetsimError;
pub use frame::{eth_frame, Frame};
pub use hub::Hub;
pub use impair::{FlapSchedule, LinkProfile};
pub use pool::{pool_stats, PoolStats};
pub use rng::SimRng;
pub use sim::{Simulator, WireStats};
pub use standalone::StandaloneDriver;
pub use switch::{
    CamEntry, CamTable, FailMode, FrameInspector, InspectVerdict, PortSecurityConfig, PortVlan,
    Switch, SwitchConfig, SwitchHandle, SwitchStats, ViolationAction, VlanId, VlanSet,
};
pub use time::SimTime;
pub use trace::{Trace, TracedFrame};
pub use wheel::TimingWheel;
