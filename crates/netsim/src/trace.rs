//! Frame traces: the simulator's equivalent of a pcap capture.

use crate::device::{DeviceId, PortId};
use crate::frame::Frame;
use crate::time::SimTime;

/// One frame as it crossed a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedFrame {
    /// Time the frame was transmitted.
    pub sent_at: SimTime,
    /// Transmitting device.
    pub src_device: DeviceId,
    /// Transmitting port.
    pub src_port: PortId,
    /// Receiving device.
    pub dst_device: DeviceId,
    /// Receiving port.
    pub dst_port: PortId,
    /// Raw frame bytes, sharing the delivered frame's buffer (recording
    /// a frame never copies its payload).
    pub bytes: Frame,
}

/// An append-only capture of every frame that crossed any link.
///
/// Disabled by default because full captures of large experiments are
/// memory-heavy; enable with
/// [`Simulator::enable_trace`](crate::Simulator::enable_trace).
#[derive(Debug, Default, Clone)]
pub struct Trace {
    frames: Vec<TracedFrame>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn record(&mut self, frame: TracedFrame) {
        self.frames.push(frame);
    }

    /// All captured frames in transmission order.
    pub fn frames(&self) -> &[TracedFrame] {
        &self.frames
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames transmitted by `device`.
    pub fn sent_by(&self, device: DeviceId) -> impl Iterator<Item = &TracedFrame> {
        self.frames.iter().filter(move |f| f.src_device == device)
    }

    /// Frames delivered to `device`.
    pub fn received_by(&self, device: DeviceId) -> impl Iterator<Item = &TracedFrame> {
        self.frames.iter().filter(move |f| f.dst_device == device)
    }

    /// Total bytes across all captured frames.
    pub fn total_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.bytes.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(src: usize, dst: usize, len: usize) -> TracedFrame {
        TracedFrame {
            sent_at: SimTime::ZERO,
            src_device: DeviceId(src),
            src_port: PortId(0),
            dst_device: DeviceId(dst),
            dst_port: PortId(0),
            bytes: vec![0; len].into(),
        }
    }

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(frame(1, 2, 60));
        t.record(frame(2, 1, 100));
        t.record(frame(1, 3, 40));
        assert_eq!(t.len(), 3);
        assert_eq!(t.sent_by(DeviceId(1)).count(), 2);
        assert_eq!(t.received_by(DeviceId(1)).count(), 1);
        assert_eq!(t.total_bytes(), 200);
    }
}
