//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Duration;

use crate::device::{Action, Device, DeviceCtx, DeviceId, PortId};
use crate::error::NetsimError;
use crate::frame::Frame;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{Trace, TracedFrame};

/// Aggregate counters over everything that crossed the wire.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Frames delivered over links.
    pub frames: u64,
    /// Bytes delivered over links.
    pub bytes: u64,
    /// Frames sent out of unconnected ports (dropped).
    pub dropped_no_link: u64,
    /// Timer events dispatched.
    pub timers: u64,
}

#[derive(Debug, Clone, Copy)]
struct Endpoint {
    peer: DeviceId,
    peer_port: PortId,
    latency: Duration,
}

#[derive(Debug, Clone)]
enum EventKind {
    Deliver {
        dst: DeviceId,
        port: PortId,
        bytes: Frame,
        src: DeviceId,
        src_port: PortId,
        sent_at: SimTime,
    },
    Timer {
        dst: DeviceId,
        token: u64,
    },
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic single-segment network simulator.
///
/// Add devices, connect their ports with latencied links, and run. Events
/// with equal timestamps are dispatched in insertion order, so a run is a
/// pure function of its seed and topology.
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    seq: u64,
    started: bool,
    devices: Vec<Box<dyn Device>>,
    links: HashMap<(DeviceId, PortId), Endpoint>,
    queue: BinaryHeap<Reverse<Event>>,
    rng: SimRng,
    trace: Option<Trace>,
    stats: WireStats,
    /// Reusable actions buffer, drained after every dispatch. Devices
    /// cannot re-enter the simulator, so one scratch vector serves all
    /// callbacks without per-event allocation.
    scratch: Vec<Action>,
}

impl std::fmt::Debug for dyn Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Device({})", self.name())
    }
}

impl Simulator {
    /// Creates an empty simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            started: false,
            devices: Vec::new(),
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            rng: SimRng::new(seed),
            trace: None,
            stats: WireStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Attaches a device and returns its id.
    pub fn add_device(&mut self, device: Box<dyn Device>) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.devices.push(device);
        id
    }

    /// Connects two device ports with a full-duplex link of the given
    /// one-way latency.
    ///
    /// # Errors
    ///
    /// Returns a [`NetsimError`] if either endpoint is unknown, the port is
    /// out of range or already linked, or the two endpoints are the same
    /// device.
    pub fn connect(
        &mut self,
        a: DeviceId,
        a_port: PortId,
        b: DeviceId,
        b_port: PortId,
        latency: Duration,
    ) -> Result<(), NetsimError> {
        if a == b {
            return Err(NetsimError::SelfLink(a));
        }
        for (dev, port) in [(a, a_port), (b, b_port)] {
            let device = self.devices.get(dev.0).ok_or(NetsimError::UnknownDevice(dev))?;
            let count = device.port_count();
            if usize::from(port.0) >= count {
                return Err(NetsimError::BadPort { device: dev, port, count });
            }
            if self.links.contains_key(&(dev, port)) {
                return Err(NetsimError::PortInUse { device: dev, port });
            }
        }
        self.links.insert((a, a_port), Endpoint { peer: b, peer_port: b_port, latency });
        self.links.insert((b, b_port), Endpoint { peer: a, peer_port: a_port, latency });
        Ok(())
    }

    /// Starts recording every delivered frame into an in-memory trace.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The trace, if [`enable_trace`](Simulator::enable_trace) was called.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate wire statistics.
    pub fn wire_stats(&self) -> WireStats {
        self.stats
    }

    /// Immutable access to a device, for post-run inspection.
    pub fn device(&self, id: DeviceId) -> Option<&dyn Device> {
        self.devices.get(id.0).map(|d| d.as_ref())
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.devices.len() {
            let mut actions = std::mem::take(&mut self.scratch);
            let id = DeviceId(i);
            {
                let mut ctx = DeviceCtx::new(self.now, id, &mut actions, &mut self.rng, None);
                self.devices[i].on_start(&mut ctx);
            }
            self.apply_actions(id, &mut actions);
            self.scratch = actions;
        }
    }

    fn apply_actions(&mut self, from: DeviceId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { port, bytes } => match self.links.get(&(from, port)).copied() {
                    Some(ep) => {
                        let at = self.now + ep.latency;
                        self.push_event(
                            at,
                            EventKind::Deliver {
                                dst: ep.peer,
                                port: ep.peer_port,
                                bytes,
                                src: from,
                                src_port: port,
                                sent_at: self.now,
                            },
                        );
                    }
                    None => self.stats.dropped_no_link += 1,
                },
                Action::Schedule { delay, token } => {
                    let at = self.now + delay;
                    self.push_event(at, EventKind::Timer { dst: from, token });
                }
            }
        }
    }

    /// Dispatches the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "event queue went backwards");
        self.now = event.at;
        match event.kind {
            EventKind::Deliver { dst, port, bytes, src, src_port, sent_at } => {
                self.stats.frames += 1;
                self.stats.bytes += bytes.len() as u64;
                if let Some(trace) = &mut self.trace {
                    // A shared-buffer clone: the trace holds a handle to
                    // the delivered bytes, not a copy of them.
                    trace.record(TracedFrame {
                        sent_at,
                        src_device: src,
                        src_port,
                        dst_device: dst,
                        dst_port: port,
                        bytes: bytes.clone(),
                    });
                }
                let mut actions = std::mem::take(&mut self.scratch);
                {
                    let mut ctx =
                        DeviceCtx::new(self.now, dst, &mut actions, &mut self.rng, Some(&bytes));
                    self.devices[dst.0].on_frame(&mut ctx, port, &bytes);
                }
                self.apply_actions(dst, &mut actions);
                self.scratch = actions;
            }
            EventKind::Timer { dst, token } => {
                self.stats.timers += 1;
                let mut actions = std::mem::take(&mut self.scratch);
                {
                    let mut ctx = DeviceCtx::new(self.now, dst, &mut actions, &mut self.rng, None);
                    self.devices[dst.0].on_timer(&mut ctx, token);
                }
                self.apply_actions(dst, &mut actions);
                self.scratch = actions;
            }
        }
        true
    }

    /// Runs until the queue drains or the clock reaches `deadline`,
    /// whichever comes first. Events scheduled beyond the deadline stay
    /// queued; the clock is advanced to exactly `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        loop {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `duration` past the current clock.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received frame back out the same port after 1 ms, up to
    /// a bounce budget encoded in the first byte.
    struct Echo {
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl Echo {
        fn new() -> Self {
            Echo { received: Vec::new() }
        }
    }

    impl Device for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]) {
            self.received.push((ctx.now(), frame.to_vec()));
            if frame[0] > 0 {
                let mut next = frame.to_vec();
                next[0] -= 1;
                ctx.send(port, next);
            }
        }
    }

    struct Kickoff {
        budget: u8,
    }

    impl Device for Kickoff {
        fn name(&self) -> &str {
            "kickoff"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.send(PortId(0), vec![self.budget]);
        }
        fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]) {
            if frame[0] > 0 {
                let mut next = frame.to_vec();
                next[0] -= 1;
                ctx.send(port, next);
            }
        }
    }

    #[test]
    fn frames_bounce_with_latency() {
        let mut sim = Simulator::new(1);
        let k = sim.add_device(Box::new(Kickoff { budget: 4 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(1)).unwrap();
        sim.run_until(SimTime::from_secs(1));
        // budget 4: k->e, e->k, k->e, e->k, k->e = frames at 1,2,3,4,5 ms.
        assert_eq!(sim.wire_stats().frames, 5);
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn deadline_pauses_without_losing_events() {
        let mut sim = Simulator::new(1);
        let k = sim.add_device(Box::new(Kickoff { budget: 200 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(10)).unwrap();
        sim.run_until(SimTime::from_millis(35));
        let mid = sim.wire_stats().frames;
        assert_eq!(mid, 3);
        sim.run_until(SimTime::from_millis(75));
        assert_eq!(sim.wire_stats().frames, 7);
    }

    #[test]
    fn unconnected_port_drops_and_counts() {
        let mut sim = Simulator::new(1);
        let _ = sim.add_device(Box::new(Kickoff { budget: 1 }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.wire_stats().frames, 0);
        assert_eq!(sim.wire_stats().dropped_no_link, 1);
    }

    #[test]
    fn connect_validates_topology() {
        let mut sim = Simulator::new(1);
        let a = sim.add_device(Box::new(Echo::new()));
        let b = sim.add_device(Box::new(Echo::new()));
        assert_eq!(
            sim.connect(a, PortId(0), a, PortId(0), Duration::ZERO),
            Err(NetsimError::SelfLink(a))
        );
        assert!(matches!(
            sim.connect(a, PortId(1), b, PortId(0), Duration::ZERO),
            Err(NetsimError::BadPort { .. })
        ));
        assert!(matches!(
            sim.connect(DeviceId(9), PortId(0), b, PortId(0), Duration::ZERO),
            Err(NetsimError::UnknownDevice(DeviceId(9)))
        ));
        sim.connect(a, PortId(0), b, PortId(0), Duration::ZERO).unwrap();
        let c = sim.add_device(Box::new(Echo::new()));
        assert!(matches!(
            sim.connect(a, PortId(0), c, PortId(0), Duration::ZERO),
            Err(NetsimError::PortInUse { .. })
        ));
    }

    #[test]
    fn trace_captures_frames() {
        let mut sim = Simulator::new(1);
        let k = sim.add_device(Box::new(Kickoff { budget: 2 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(1)).unwrap();
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(1));
        let trace = sim.trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.sent_by(k).count(), 2);
        assert_eq!(trace.frames()[0].sent_at, SimTime::ZERO);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let k = sim.add_device(Box::new(Kickoff { budget: 50 }));
            let e = sim.add_device(Box::new(Echo::new()));
            sim.connect(k, PortId(0), e, PortId(0), Duration::from_micros(137)).unwrap();
            sim.run_until(SimTime::from_secs(1));
            (sim.wire_stats(), sim.now())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerDev {
            fired: Vec<u64>,
        }
        impl Device for TimerDev {
            fn name(&self) -> &str {
                "timers"
            }
            fn port_count(&self) -> usize {
                0
            }
            fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
                ctx.schedule_in(Duration::from_millis(30), 3);
                ctx.schedule_in(Duration::from_millis(10), 1);
                ctx.schedule_in(Duration::from_millis(20), 2);
                // Equal timestamps dispatch in insertion order.
                ctx.schedule_in(Duration::from_millis(10), 10);
            }
            fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
            fn on_timer(&mut self, _: &mut DeviceCtx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_device(Box::new(TimerDev { fired: Vec::new() }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.wire_stats().timers, 4);
    }
}
