//! The discrete-event simulation engine.

use std::time::Duration;

use arpshield_trace::profile;
use arpshield_trace::{FrameKind, Tracer};

use crate::device::{Action, Device, DeviceCtx, DeviceId, PortId};
use crate::error::NetsimError;
use crate::frame::Frame;
use crate::impair::{self, LinkProfile};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{Trace, TracedFrame};
use crate::wheel::TimingWheel;

/// Aggregate counters over everything that crossed the wire.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Frames delivered over links.
    pub frames: u64,
    /// Bytes delivered over links.
    pub bytes: u64,
    /// Frames sent out of unconnected ports (dropped).
    pub dropped_no_link: u64,
    /// Timer events dispatched.
    pub timers: u64,
    /// Frames dropped by impaired-link loss draws.
    pub dropped_lost: u64,
    /// Frames dropped because a flapping link was down.
    pub dropped_link_down: u64,
    /// Extra frame copies injected by duplication draws.
    pub duplicated: u64,
}

/// Domain separation between the impairment hash and the event RNG, so
/// `Simulator::new(seed)` feeds them unrelated key material.
const IMPAIR_SEED_SALT: u64 = 0x1A7E_0F1C_5EED_11D0;

#[derive(Debug, Clone)]
struct Endpoint {
    peer: DeviceId,
    peer_port: PortId,
    latency: Duration,
    /// Impairment profile for this direction of the link.
    profile: LinkProfile,
    /// Stable identity of this direction, for keyed impairment draws.
    key: u64,
    /// Frames sent into this direction so far — the per-event index the
    /// impairment draws are keyed on.
    sent: u64,
}

#[derive(Debug, Clone)]
enum EventKind {
    Deliver {
        dst: DeviceId,
        port: PortId,
        bytes: Frame,
        src: DeviceId,
        src_port: PortId,
        sent_at: SimTime,
        /// True for impairment-injected duplicate copies, so the
        /// flight recorder can label them distinctly.
        dup: bool,
    },
    Timer {
        dst: DeviceId,
        token: u64,
    },
}

/// A deterministic single-segment network simulator.
///
/// Add devices, connect their ports with latencied links, and run. Events
/// with equal timestamps are dispatched in insertion order, so a run is a
/// pure function of its seed and topology.
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    started: bool,
    devices: Vec<Box<dyn Device>>,
    /// Index-addressed link arena: device `d`'s ports occupy slots
    /// `port_base[d] .. port_base[d + 1]`. The dispatch hot path
    /// resolves a send with one add and one array index instead of a
    /// hash lookup per frame, and the single contiguous slab is what
    /// lets per-link state shard cleanly once simulations span threads.
    links: Vec<Option<Endpoint>>,
    /// Cumulative port offsets into `links`, one entry per device plus
    /// a trailing sentinel, so `port_base.len() == devices.len() + 1`.
    port_base: Vec<u32>,
    /// The event core: a hierarchical timing wheel preserving the
    /// `(timestamp, insertion)` dispatch order the heap gave.
    queue: TimingWheel<EventKind>,
    rng: SimRng,
    impair_seed: u64,
    default_profile: LinkProfile,
    trace: Option<Trace>,
    stats: WireStats,
    /// Reusable actions buffer, drained after every dispatch. Devices
    /// cannot re-enter the simulator, so one scratch vector serves all
    /// callbacks without per-event allocation.
    scratch: Vec<Action>,
    /// Observability sink for impairment outcomes. Disabled by default;
    /// the perfect-link fast path never consults it. Declared last so
    /// the hot dispatch fields above keep their relative positions.
    run_tracer: Tracer,
}

impl std::fmt::Debug for dyn Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Device({})", self.name())
    }
}

impl Simulator {
    /// Creates an empty simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            started: false,
            devices: Vec::new(),
            links: Vec::new(),
            port_base: vec![0],
            queue: TimingWheel::new(),
            rng: SimRng::new(seed),
            impair_seed: seed ^ IMPAIR_SEED_SALT,
            default_profile: LinkProfile::PERFECT,
            trace: None,
            run_tracer: Tracer::disabled(),
            stats: WireStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Sets the impairment profile applied to every link connected from
    /// now on. Links already connected keep the profile they were
    /// created with; call before wiring the topology to impair a whole
    /// segment.
    pub fn set_default_impairment(&mut self, profile: LinkProfile) {
        self.default_profile = profile;
    }

    /// The profile new links are connected with.
    pub fn default_impairment(&self) -> LinkProfile {
        self.default_profile
    }

    /// Attaches a device and returns its id.
    pub fn add_device(&mut self, device: Box<dyn Device>) -> DeviceId {
        let id = DeviceId(self.devices.len());
        let next = self.links.len() + device.port_count();
        self.links.resize_with(next, || None);
        self.port_base.push(next as u32);
        self.devices.push(device);
        id
    }

    /// Connects two device ports with a full-duplex link of the given
    /// one-way latency.
    ///
    /// # Errors
    ///
    /// Returns a [`NetsimError`] if either endpoint is unknown, the port is
    /// out of range or already linked, or the two endpoints are the same
    /// device.
    pub fn connect(
        &mut self,
        a: DeviceId,
        a_port: PortId,
        b: DeviceId,
        b_port: PortId,
        latency: Duration,
    ) -> Result<(), NetsimError> {
        let profile = self.default_profile;
        self.connect_impaired(a, a_port, b, b_port, latency, profile)
    }

    /// Like [`connect`](Simulator::connect), but with an explicit
    /// impairment profile instead of the simulator default.
    ///
    /// # Errors
    ///
    /// Same conditions as [`connect`](Simulator::connect).
    pub fn connect_impaired(
        &mut self,
        a: DeviceId,
        a_port: PortId,
        b: DeviceId,
        b_port: PortId,
        latency: Duration,
        profile: LinkProfile,
    ) -> Result<(), NetsimError> {
        if a == b {
            return Err(NetsimError::SelfLink(a));
        }
        for (dev, port) in [(a, a_port), (b, b_port)] {
            if dev.0 + 1 >= self.port_base.len() {
                return Err(NetsimError::UnknownDevice(dev));
            }
            let base = self.port_base[dev.0] as usize;
            let count = self.port_base[dev.0 + 1] as usize - base;
            if usize::from(port.0) >= count {
                return Err(NetsimError::BadPort { device: dev, port, count });
            }
            if self.links[base + usize::from(port.0)].is_some() {
                return Err(NetsimError::PortInUse { device: dev, port });
            }
        }
        // Each direction gets a stable key derived from its sending
        // endpoint — topology, not insertion order — so impairment draws
        // survive any change in how links happen to be wired up.
        let key = |dev: DeviceId, port: PortId| ((dev.0 as u64) << 16) | u64::from(port.0);
        self.links[self.port_base[a.0] as usize + usize::from(a_port.0)] = Some(Endpoint {
            peer: b,
            peer_port: b_port,
            latency,
            profile,
            key: key(a, a_port),
            sent: 0,
        });
        self.links[self.port_base[b.0] as usize + usize::from(b_port.0)] = Some(Endpoint {
            peer: a,
            peer_port: a_port,
            latency,
            profile,
            key: key(b, b_port),
            sent: 0,
        });
        Ok(())
    }

    /// Routes wire-level impairment outcomes (loss, outage drops,
    /// duplication) into `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.run_tracer = tracer;
    }

    /// Starts recording every delivered frame into an in-memory trace.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The trace, if [`enable_trace`](Simulator::enable_trace) was called.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate wire statistics.
    pub fn wire_stats(&self) -> WireStats {
        self.stats
    }

    /// Pending events across the timing wheel, ready batch, and
    /// calendar fallback — the `wheel.occupancy` gauge source.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Pending events parked in the wheel's calendar fallback — the
    /// `wheel.fallback_depth` gauge source.
    pub fn queue_fallback_depth(&self) -> usize {
        self.queue.fallback_len()
    }

    /// Immutable access to a device, for post-run inspection.
    pub fn device(&self, id: DeviceId) -> Option<&dyn Device> {
        self.devices.get(id.0).map(|d| d.as_ref())
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.queue.push(at, kind);
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.devices.len() {
            let mut actions = std::mem::take(&mut self.scratch);
            let id = DeviceId(i);
            {
                let mut ctx = DeviceCtx::new(self.now, id, &mut actions, &mut self.rng, None);
                self.devices[i].on_start(&mut ctx);
            }
            self.apply_actions(id, &mut actions);
            self.scratch = actions;
        }
    }

    fn apply_actions(&mut self, from: DeviceId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { port, bytes } => match {
                    let slot = self.port_base[from.0] as usize + usize::from(port.0);
                    let limit = self.port_base[from.0 + 1] as usize;
                    if slot < limit {
                        self.links[slot].as_mut()
                    } else {
                        None
                    }
                } {
                    Some(ep) => {
                        let (peer, peer_port, latency, profile, key) =
                            (ep.peer, ep.peer_port, ep.latency, ep.profile, ep.key);
                        let index = ep.sent;
                        ep.sent += 1;
                        if profile.is_perfect() {
                            let at = self.now + latency;
                            self.push_event(
                                at,
                                EventKind::Deliver {
                                    dst: peer,
                                    port: peer_port,
                                    bytes,
                                    src: from,
                                    src_port: port,
                                    sent_at: self.now,
                                    dup: false,
                                },
                            );
                            continue;
                        }
                        let fate = impair::fate(&profile, self.impair_seed, key, index, self.now);
                        if fate.lost {
                            let flap_down =
                                profile.flap.map(|f| f.is_down(self.now)).unwrap_or(false);
                            let (category, kind) = if flap_down {
                                self.stats.dropped_link_down += 1;
                                ("wire.drop.link_down", FrameKind::DroppedLinkDown)
                            } else {
                                self.stats.dropped_lost += 1;
                                ("wire.drop.lost", FrameKind::DroppedLost)
                            };
                            self.run_tracer.count(category, 1);
                            // Capture the doomed octets, and cite both
                            // them and (when the send happened inside a
                            // delivery) the frame that caused the send.
                            let cause = self.run_tracer.current_frame();
                            let dropped = self.run_tracer.record_frame(
                                self.now.as_nanos(),
                                kind,
                                &bytes,
                                || {
                                    (
                                        format!("{}:{}", self.devices[from.0].name(), port.0),
                                        format!("{}:{}", self.devices[peer.0].name(), peer_port.0),
                                    )
                                },
                            );
                            self.run_tracer.event_frames(self.now.as_nanos(), category, || {
                                (
                                    self.devices[from.0].name().to_string(),
                                    format!("port={} frame_index={index}", port.0),
                                    dropped.into_iter().chain(cause).collect(),
                                )
                            });
                            continue;
                        }
                        let at = self.now + latency + fate.extra_delay;
                        // The duplicate trails the original by one more
                        // propagation delay, sharing its buffer.
                        let dup = fate.duplicated.then(|| (at + latency, bytes.clone()));
                        self.push_event(
                            at,
                            EventKind::Deliver {
                                dst: peer,
                                port: peer_port,
                                bytes,
                                src: from,
                                src_port: port,
                                sent_at: self.now,
                                dup: false,
                            },
                        );
                        if let Some((dup_at, copy)) = dup {
                            self.stats.duplicated += 1;
                            self.run_tracer.count("wire.duplicated", 1);
                            self.push_event(
                                dup_at,
                                EventKind::Deliver {
                                    dst: peer,
                                    port: peer_port,
                                    bytes: copy,
                                    src: from,
                                    src_port: port,
                                    sent_at: self.now,
                                    dup: true,
                                },
                            );
                        }
                    }
                    None => self.stats.dropped_no_link += 1,
                },
                Action::Schedule { delay, token } => {
                    let at = self.now + delay;
                    self.push_event(at, EventKind::Timer { dst: from, token });
                }
            }
        }
    }

    /// Dispatches the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        match kind {
            EventKind::Deliver { dst, port, bytes, src, src_port, sent_at, dup } => {
                let _s = profile::span("sim.deliver");
                self.stats.frames += 1;
                self.stats.bytes += bytes.len() as u64;
                if let Some(trace) = &mut self.trace {
                    // A shared-buffer clone: the trace holds a handle to
                    // the delivered bytes, not a copy of them.
                    trace.record(TracedFrame {
                        sent_at,
                        src_device: src,
                        src_port,
                        dst_device: dst,
                        dst_port: port,
                        bytes: bytes.clone(),
                    });
                }
                let kind = if dup { FrameKind::DuplicateDelivered } else { FrameKind::Delivered };
                let frame_id =
                    self.run_tracer.record_frame(self.now.as_nanos(), kind, &bytes, || {
                        (
                            format!("{}:{}", self.devices[src.0].name(), src_port.0),
                            format!("{}:{}", self.devices[dst.0].name(), port.0),
                        )
                    });
                // While this frame is dispatched — including the sends
                // it triggers — every traced event cites it.
                self.run_tracer.set_current_frame(frame_id);
                let mut actions = std::mem::take(&mut self.scratch);
                {
                    let mut ctx =
                        DeviceCtx::new(self.now, dst, &mut actions, &mut self.rng, Some(&bytes));
                    self.devices[dst.0].on_frame(&mut ctx, port, &bytes);
                }
                self.apply_actions(dst, &mut actions);
                self.run_tracer.set_current_frame(None);
                self.scratch = actions;
            }
            EventKind::Timer { dst, token } => {
                let _s = profile::span("sim.timer");
                self.stats.timers += 1;
                let mut actions = std::mem::take(&mut self.scratch);
                {
                    let mut ctx = DeviceCtx::new(self.now, dst, &mut actions, &mut self.rng, None);
                    self.devices[dst.0].on_timer(&mut ctx, token);
                }
                self.apply_actions(dst, &mut actions);
                self.scratch = actions;
            }
        }
        true
    }

    /// Runs until the queue drains or the clock reaches `deadline`,
    /// whichever comes first. Events scheduled beyond the deadline stay
    /// queued; the clock is advanced to exactly `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        loop {
            match self.queue.next_at() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `duration` past the current clock.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impair::FlapSchedule;

    /// Echoes every received frame back out the same port after 1 ms, up to
    /// a bounce budget encoded in the first byte.
    struct Echo {
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl Echo {
        fn new() -> Self {
            Echo { received: Vec::new() }
        }
    }

    impl Device for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]) {
            self.received.push((ctx.now(), frame.to_vec()));
            if frame[0] > 0 {
                let mut next = frame.to_vec();
                next[0] -= 1;
                ctx.send(port, next);
            }
        }
    }

    struct Kickoff {
        budget: u8,
    }

    impl Device for Kickoff {
        fn name(&self) -> &str {
            "kickoff"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.send(PortId(0), vec![self.budget]);
        }
        fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]) {
            if frame[0] > 0 {
                let mut next = frame.to_vec();
                next[0] -= 1;
                ctx.send(port, next);
            }
        }
    }

    #[test]
    fn frames_bounce_with_latency() {
        let mut sim = Simulator::new(1);
        let k = sim.add_device(Box::new(Kickoff { budget: 4 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(1)).unwrap();
        sim.run_until(SimTime::from_secs(1));
        // budget 4: k->e, e->k, k->e, e->k, k->e = frames at 1,2,3,4,5 ms.
        assert_eq!(sim.wire_stats().frames, 5);
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn deadline_pauses_without_losing_events() {
        let mut sim = Simulator::new(1);
        let k = sim.add_device(Box::new(Kickoff { budget: 200 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(10)).unwrap();
        sim.run_until(SimTime::from_millis(35));
        let mid = sim.wire_stats().frames;
        assert_eq!(mid, 3);
        sim.run_until(SimTime::from_millis(75));
        assert_eq!(sim.wire_stats().frames, 7);
    }

    #[test]
    fn unconnected_port_drops_and_counts() {
        let mut sim = Simulator::new(1);
        let _ = sim.add_device(Box::new(Kickoff { budget: 1 }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.wire_stats().frames, 0);
        assert_eq!(sim.wire_stats().dropped_no_link, 1);
    }

    #[test]
    fn connect_validates_topology() {
        let mut sim = Simulator::new(1);
        let a = sim.add_device(Box::new(Echo::new()));
        let b = sim.add_device(Box::new(Echo::new()));
        assert_eq!(
            sim.connect(a, PortId(0), a, PortId(0), Duration::ZERO),
            Err(NetsimError::SelfLink(a))
        );
        assert!(matches!(
            sim.connect(a, PortId(1), b, PortId(0), Duration::ZERO),
            Err(NetsimError::BadPort { .. })
        ));
        assert!(matches!(
            sim.connect(DeviceId(9), PortId(0), b, PortId(0), Duration::ZERO),
            Err(NetsimError::UnknownDevice(DeviceId(9)))
        ));
        sim.connect(a, PortId(0), b, PortId(0), Duration::ZERO).unwrap();
        let c = sim.add_device(Box::new(Echo::new()));
        assert!(matches!(
            sim.connect(a, PortId(0), c, PortId(0), Duration::ZERO),
            Err(NetsimError::PortInUse { .. })
        ));
    }

    #[test]
    fn trace_captures_frames() {
        let mut sim = Simulator::new(1);
        let k = sim.add_device(Box::new(Kickoff { budget: 2 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(1)).unwrap();
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(1));
        let trace = sim.trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.sent_by(k).count(), 2);
        assert_eq!(trace.frames()[0].sent_at, SimTime::ZERO);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let k = sim.add_device(Box::new(Kickoff { budget: 50 }));
            let e = sim.add_device(Box::new(Echo::new()));
            sim.connect(k, PortId(0), e, PortId(0), Duration::from_micros(137)).unwrap();
            sim.run_until(SimTime::from_secs(1));
            (sim.wire_stats(), sim.now())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn lossy_link_drops_and_counts() {
        let run = |loss: f64| {
            let mut sim = Simulator::new(7);
            sim.set_default_impairment(LinkProfile::lossy(loss));
            let k = sim.add_device(Box::new(Kickoff { budget: 200 }));
            let e = sim.add_device(Box::new(Echo::new()));
            sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(1)).unwrap();
            sim.run_until(SimTime::from_secs(1));
            sim.wire_stats()
        };
        let perfect = run(0.0);
        assert_eq!(perfect.dropped_lost, 0);
        let lossy = run(0.5);
        assert!(lossy.dropped_lost >= 1, "a 50% link must lose something");
        // Each bounce needs the previous delivery, so losses shorten the
        // chain: strictly fewer frames than the perfect wire.
        assert!(lossy.frames < perfect.frames);
    }

    #[test]
    fn duplicating_link_delivers_copies() {
        let mut sim = Simulator::new(7);
        sim.set_default_impairment(LinkProfile::PERFECT.with_dup(1.0));
        let k = sim.add_device(Box::new(Kickoff { budget: 0 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(1)).unwrap();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.wire_stats().duplicated, 1);
        assert_eq!(sim.wire_stats().frames, 2, "one send, two deliveries");
    }

    #[test]
    fn flapping_link_goes_dark_on_schedule() {
        let mut sim = Simulator::new(7);
        sim.set_default_impairment(LinkProfile::PERFECT.with_flap(FlapSchedule {
            offset: Duration::from_millis(50),
            down_for: Duration::from_millis(1000),
            period: Duration::from_millis(2000),
        }));
        let k = sim.add_device(Box::new(Kickoff { budget: 200 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(10)).unwrap();
        sim.run_until(SimTime::from_secs(1));
        // The bounce chain dies at the first outage and nothing restarts it.
        let stats = sim.wire_stats();
        assert_eq!(stats.dropped_link_down, 1);
        assert!(stats.frames <= 6, "chain must stop at the 50 ms outage");
    }

    #[test]
    fn jitter_delays_but_never_reorders_a_single_flow_run() {
        let mut sim = Simulator::new(7);
        sim.set_default_impairment(LinkProfile::PERFECT.with_jitter(Duration::from_micros(500)));
        let k = sim.add_device(Box::new(Kickoff { budget: 20 }));
        let e = sim.add_device(Box::new(Echo::new()));
        sim.connect(k, PortId(0), e, PortId(0), Duration::from_millis(1)).unwrap();
        sim.run_until(SimTime::from_secs(1));
        // All 21 frames still get through; they just take longer.
        assert_eq!(sim.wire_stats().frames, 21);
        assert_eq!(sim.wire_stats().dropped_lost, 0);
    }

    /// The crux of the determinism contract: a profile whose draws can
    /// never fire (loss 0, dup 0, jitter 0, flap that never goes down)
    /// exercises the impaired delivery path yet must replay the exact
    /// event schedule of an untouched wire.
    #[test]
    fn inert_profile_is_byte_identical_to_perfect_wire() {
        let run = |profile: Option<LinkProfile>| {
            let mut sim = Simulator::new(99);
            if let Some(p) = profile {
                sim.set_default_impairment(p);
            }
            let k = sim.add_device(Box::new(Kickoff { budget: 50 }));
            let e = sim.add_device(Box::new(Echo::new()));
            sim.connect(k, PortId(0), e, PortId(0), Duration::from_micros(137)).unwrap();
            sim.enable_trace();
            sim.run_until(SimTime::from_secs(1));
            let schedule: Vec<(u64, usize)> = sim
                .trace()
                .unwrap()
                .frames()
                .iter()
                .map(|f| (f.sent_at.as_nanos(), f.bytes.len()))
                .collect();
            (sim.wire_stats(), schedule)
        };
        let inert = LinkProfile::PERFECT.with_flap(FlapSchedule {
            offset: Duration::from_secs(3600),
            down_for: Duration::from_secs(1),
            period: Duration::from_secs(7200),
        });
        assert!(!inert.is_perfect(), "must exercise the impaired path");
        assert_eq!(run(None), run(Some(inert)));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerDev {
            fired: Vec<u64>,
        }
        impl Device for TimerDev {
            fn name(&self) -> &str {
                "timers"
            }
            fn port_count(&self) -> usize {
                0
            }
            fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
                ctx.schedule_in(Duration::from_millis(30), 3);
                ctx.schedule_in(Duration::from_millis(10), 1);
                ctx.schedule_in(Duration::from_millis(20), 2);
                // Equal timestamps dispatch in insertion order.
                ctx.schedule_in(Duration::from_millis(10), 10);
            }
            fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
            fn on_timer(&mut self, _: &mut DeviceCtx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_device(Box::new(TimerDev { fired: Vec::new() }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.wire_stats().timers, 4);
    }
}
