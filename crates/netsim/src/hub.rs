//! A dumb repeating hub.

use arpshield_trace::Tracer;

use crate::device::{Device, DeviceCtx, PortId};

/// A multiport repeater: every ingress frame is copied to every other port.
///
/// Hubs make eavesdropping trivial — any attached station sees all traffic
/// — which is why the paper's threat model centres on *switched* segments
/// where the attacker must poison ARP caches to see third-party frames.
/// The hub exists here as the degenerate baseline topology.
#[derive(Debug)]
pub struct Hub {
    name: String,
    ports: usize,
    /// Frames repeated (each ingress frame counts once regardless of copies).
    pub frames_repeated: u64,
    tracer: Tracer,
}

impl Hub {
    /// Creates a hub with `ports` ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(name: impl Into<String>, ports: usize) -> Self {
        assert!(ports > 0, "a hub needs at least one port");
        Hub { name: name.into(), ports, frames_repeated: 0, tracer: Tracer::disabled() }
    }

    /// Routes the hub's repeat counter into `tracer`. Per-frame events
    /// are left to the simulator's flight recorder — a mirror hub
    /// repeats every LAN frame and would drown the event log.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

impl Device for Hub {
    fn name(&self) -> &str {
        &self.name
    }

    fn port_count(&self) -> usize {
        self.ports
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, _frame: &[u8]) {
        self.frames_repeated += 1;
        self.tracer.count("hub.repeated", 1);
        // Repeat the shared buffer: one allocation total regardless of
        // how many egress copies the repeat fans out to.
        let shared = ctx.incoming_frame().expect("on_frame always carries a frame");
        for p in 0..self.ports as u16 {
            if p != port.0 {
                ctx.send(PortId(p), shared.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::time::SimTime;
    use std::time::Duration;

    struct Sink {
        got: u64,
    }
    impl Device for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {
            self.got += 1;
        }
    }

    struct Once;
    impl Device for Once {
        fn name(&self) -> &str {
            "once"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.send(PortId(0), vec![0; 60]);
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
    }

    #[test]
    fn repeats_to_all_other_ports() {
        let mut sim = Simulator::new(1);
        let hub = sim.add_device(Box::new(Hub::new("hub", 4)));
        let src = sim.add_device(Box::new(Once));
        sim.connect(src, PortId(0), hub, PortId(0), Duration::from_micros(1)).unwrap();
        let sinks: Vec<_> = (1..4u16)
            .map(|p| {
                let s = sim.add_device(Box::new(Sink { got: 0 }));
                sim.connect(s, PortId(0), hub, PortId(p), Duration::from_micros(1)).unwrap();
                s
            })
            .collect();
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(1));
        // 1 ingress + 3 egress copies delivered.
        assert_eq!(sim.wire_stats().frames, 4);
        let trace = sim.trace().unwrap();
        for s in sinks {
            assert_eq!(trace.received_by(s).count(), 1);
        }
        // Nothing is echoed back to the source port.
        assert_eq!(trace.received_by(src).count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = Hub::new("bad", 0);
    }
}
