//! Deterministic pseudo-randomness for simulations.

/// A small, fast, seedable PRNG (SplitMix64).
///
/// The simulator deliberately does not use an external RNG crate: every
/// random draw in an experiment must replay identically from its seed
/// across platforms and dependency upgrades, and SplitMix64 is trivially
/// auditable. It is of course not cryptographically secure; nothing in the
/// simulator needs it to be.
///
/// ```rust
/// use arpshield_netsim::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns the next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = widening_mul(r, bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Samples an exponential inter-arrival time with the given mean, in
    /// nanoseconds — the workhorse of Poisson traffic generators.
    pub fn gen_exp_nanos(&mut self, mean_nanos: u64) -> u64 {
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        let x = -(u.ln()) * mean_nanos as f64;
        x.min(u64::MAX as f64 / 2.0) as u64
    }

    /// Derives an independent child generator, so subsystems can draw
    /// randomness without perturbing each other's streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }

    /// Returns a reference to a uniformly chosen element, or `None` for an
    /// empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(items.len() as u64) as usize])
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(rng.gen_range(7) < 7);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn gen_range_zero_panics() {
        SimRng::new(1).gen_range(0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::new(17);
        let mean = 1_000_000u64; // 1 ms
        let n = 20_000;
        let total: u128 = (0..n).map(|_| u128::from(rng.gen_exp_nanos(mean))).sum();
        let observed = total / n as u128;
        // Within 5% of the true mean with this many samples.
        assert!((950_000..1_050_000).contains(&(observed as u64)), "observed {observed}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = SimRng::new(1);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn choose_handles_empty_and_picks_members() {
        let mut rng = SimRng::new(4);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }
}
