//! A learning Ethernet switch with a bounded CAM table, aging, fail-open
//! behaviour, port security, port mirroring, and a pluggable frame
//! inspector (the hook the DAI scheme uses).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Duration;

use arpshield_packet::{EthernetView, MacAddr};
use arpshield_trace::Tracer;

use crate::device::{Device, DeviceCtx, PortId};
use crate::frame::Frame;
use crate::time::SimTime;

/// One CAM-table binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamEntry {
    /// Port the address was learned on.
    pub port: PortId,
    /// Time the entry was created or moved.
    pub learned_at: SimTime,
    /// Time of the most recent frame from this address.
    pub last_seen: SimTime,
}

/// The switch's MAC-address table.
///
/// Capacity-bounded with inactivity aging — exactly the properties MAC
/// flooding exploits.
#[derive(Debug, Clone)]
pub struct CamTable {
    entries: HashMap<MacAddr, CamEntry>,
    capacity: usize,
    aging: Duration,
}

/// Result of a learning attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnOutcome {
    /// Newly learned.
    Learned,
    /// Already present on the same port; timestamp refreshed.
    Refreshed,
    /// Present but on a different port; moved (station relocation or
    /// spoofing).
    Moved {
        /// Port the address was previously bound to.
        from: PortId,
    },
    /// Table at capacity; not learned.
    Full,
}

impl CamTable {
    /// Creates a table with the given capacity and aging interval.
    pub fn new(capacity: usize, aging: Duration) -> Self {
        CamTable { entries: HashMap::new(), capacity, aging }
    }

    /// Attempts to learn or refresh `mac` on `port` at time `now`.
    pub fn learn(&mut self, now: SimTime, mac: MacAddr, port: PortId) -> LearnOutcome {
        if let Some(entry) = self.entries.get_mut(&mac) {
            entry.last_seen = now;
            if entry.port == port {
                return LearnOutcome::Refreshed;
            }
            let from = entry.port;
            entry.port = port;
            entry.learned_at = now;
            return LearnOutcome::Moved { from };
        }
        if self.entries.len() >= self.capacity {
            // A table full of *stale* entries must not lock out fresh
            // learning between sweep ticks: age out inline before
            // declaring the table full.
            self.sweep(now);
        }
        if self.entries.len() >= self.capacity {
            return LearnOutcome::Full;
        }
        self.entries.insert(mac, CamEntry { port, learned_at: now, last_seen: now });
        LearnOutcome::Learned
    }

    /// Looks up the egress port for `mac`.
    pub fn lookup(&self, mac: MacAddr) -> Option<PortId> {
        self.entries.get(&mac).map(|e| e.port)
    }

    /// Evicts entries idle longer than the aging interval; returns how many
    /// were removed.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let aging = self.aging;
        let before = self.entries.len();
        self.entries.retain(|_, e| now.saturating_since(e.last_seen) < aging);
        before - self.entries.len()
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when no more addresses can be learned.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Iterates over live `(mac, entry)` bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&MacAddr, &CamEntry)> {
        self.entries.iter()
    }
}

/// Behaviour when the CAM table is full and an unknown source appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// The classic (insecure) behaviour: the frame is still forwarded, and
    /// since its source cannot be learned the *reverse* traffic floods to
    /// every port — the hub-like degradation MAC flooding aims for.
    #[default]
    FloodOpen,
    /// The defensive behaviour: frames from unlearnable sources are dropped.
    DropNew,
}

/// Per-port limit on learned addresses, modelling Cisco-style
/// `port security`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSecurityConfig {
    /// Maximum distinct source addresses allowed per access port.
    pub max_macs_per_port: usize,
    /// What to do when a port exceeds its limit.
    pub violation: ViolationAction,
}

/// Action taken on a port-security violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationAction {
    /// Drop the offending frame, keep the port up (restrict mode).
    DropFrame,
    /// Err-disable the port: all subsequent traffic on it is dropped.
    ShutdownPort,
}

/// Verdict returned by a [`FrameInspector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InspectVerdict {
    /// Forward normally.
    Permit,
    /// Drop the frame; `reason` is recorded in switch stats.
    Deny {
        /// Human-readable drop reason.
        reason: String,
    },
}

/// A pluggable ingress filter, invoked on every frame before learning and
/// forwarding. Dynamic ARP Inspection is implemented as one of these in
/// `arpshield-schemes`.
///
/// The frame arrives as a borrowed [`EthernetView`] over the wire bytes:
/// inspection sits on the switch's per-frame fast path, where an owned
/// parse would cost an allocation per ingress frame.
pub trait FrameInspector {
    /// Inspects a frame arriving on `ingress`; returning
    /// [`InspectVerdict::Deny`] drops it.
    fn inspect(
        &mut self,
        now: SimTime,
        ingress: PortId,
        frame: &EthernetView<'_>,
    ) -> InspectVerdict;
}

/// Counters exposed by a running switch.
#[derive(Debug, Default, Clone)]
pub struct SwitchStats {
    /// Frames forwarded to exactly one known port.
    pub forwarded: u64,
    /// Frames flooded to all ports (broadcast/multicast/unknown dst).
    pub flooded: u64,
    /// Frames dropped by port security.
    pub dropped_security: u64,
    /// Frames dropped by the inspector, with reasons.
    pub dropped_inspector: u64,
    /// Frames that failed Ethernet parsing at ingress and were dropped.
    pub dropped_unparseable: u64,
    /// Most recent inspector drop reasons (bounded ring of 32).
    pub inspector_reasons: Vec<String>,
    /// Times a learn attempt found the table full.
    pub cam_full_events: u64,
    /// Ports currently err-disabled by port security.
    pub shutdown_ports: HashSet<PortId>,
    /// Port-security violations observed.
    pub security_violations: u64,
}

/// Shared inspection handle into a live switch.
///
/// The simulator owns devices as `Box<dyn Device>`; the handle gives
/// experiments read access to the CAM table and counters without
/// downcasting. The simulation is single-threaded, so `Rc<RefCell>` is the
/// right tool.
#[derive(Debug, Clone)]
pub struct SwitchHandle {
    /// The live CAM table.
    pub cam: Rc<RefCell<CamTable>>,
    /// Live counters.
    pub stats: Rc<RefCell<SwitchStats>>,
}

/// Switch construction parameters.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of ports.
    pub ports: usize,
    /// CAM capacity (the MikroTik hAP lite class of device holds 1024).
    pub cam_capacity: usize,
    /// CAM inactivity aging.
    pub cam_aging: Duration,
    /// Full-table behaviour.
    pub fail_mode: FailMode,
    /// Copy every ingress frame to this port (SPAN/mirror). The mirror
    /// port is excluded from normal flooding.
    pub mirror_to: Option<PortId>,
    /// Optional per-port MAC limit.
    pub port_security: Option<PortSecurityConfig>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 8,
            cam_capacity: 1024,
            cam_aging: Duration::from_secs(300),
            fail_mode: FailMode::FloodOpen,
            mirror_to: None,
            port_security: None,
        }
    }
}

const SWEEP_TOKEN: u64 = 0xCA11_5EE9;

/// A learning Ethernet switch.
#[derive(Debug)]
pub struct Switch {
    name: String,
    config: SwitchConfig,
    cam: Rc<RefCell<CamTable>>,
    stats: Rc<RefCell<SwitchStats>>,
    per_port_macs: HashMap<PortId, HashSet<MacAddr>>,
    inspector: Option<Box<dyn FrameInspector>>,
    tracer: Tracer,
}

impl std::fmt::Debug for dyn FrameInspector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameInspector")
    }
}

impl Switch {
    /// Creates a switch and its inspection handle.
    pub fn new(name: impl Into<String>, config: SwitchConfig) -> (Self, SwitchHandle) {
        let cam = Rc::new(RefCell::new(CamTable::new(config.cam_capacity, config.cam_aging)));
        let stats = Rc::new(RefCell::new(SwitchStats::default()));
        let handle = SwitchHandle { cam: Rc::clone(&cam), stats: Rc::clone(&stats) };
        (
            Switch {
                name: name.into(),
                config,
                cam,
                stats,
                per_port_macs: HashMap::new(),
                inspector: None,
                tracer: Tracer::disabled(),
            },
            handle,
        )
    }

    /// Installs an ingress [`FrameInspector`] (e.g. Dynamic ARP Inspection).
    pub fn set_inspector(&mut self, inspector: Box<dyn FrameInspector>) {
        self.inspector = Some(inspector);
    }

    /// Routes this switch's learn/drop outcomes into `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn flood(&self, ctx: &mut DeviceCtx<'_>, ingress: PortId, frame: &Frame) {
        for p in 0..self.config.ports as u16 {
            let p = PortId(p);
            if p == ingress || Some(p) == self.config.mirror_to {
                continue;
            }
            if self.stats.borrow().shutdown_ports.contains(&p) {
                continue;
            }
            ctx.send(p, frame.clone());
        }
    }
}

impl Device for Switch {
    fn name(&self) -> &str {
        &self.name
    }

    fn port_count(&self) -> usize {
        self.config.ports
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let interval = (self.config.cam_aging / 4).max(Duration::from_millis(100));
        ctx.schedule_in(interval, SWEEP_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == SWEEP_TOKEN {
            let evicted = self.cam.borrow_mut().sweep(ctx.now());
            if evicted > 0 {
                self.tracer.count("switch.cam.aged_out", evicted as u64);
            }
            let interval = (self.config.cam_aging / 4).max(Duration::from_millis(100));
            ctx.schedule_in(interval, SWEEP_TOKEN);
        }
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]) {
        // Err-disabled ports drop everything.
        if self.stats.borrow().shutdown_ports.contains(&port) {
            self.stats.borrow_mut().dropped_security += 1;
            return;
        }

        let Ok(eth) = EthernetView::parse_strict(frame) else {
            // Unparseable garbage is dropped — but never silently: the
            // drop is counted and attributable to its ingress port.
            self.stats.borrow_mut().dropped_unparseable += 1;
            self.tracer.count("switch.drop.unparseable", 1);
            self.tracer.event(ctx.now().as_nanos(), "switch.drop.unparseable", || {
                (self.name.clone(), format!("port={} len={}", port.0, frame.len()))
            });
            return;
        };

        // Ingress inspection (DAI etc.).
        if let Some(inspector) = &mut self.inspector {
            if let InspectVerdict::Deny { reason } = inspector.inspect(ctx.now(), port, &eth) {
                self.tracer.count("switch.drop.inspector", 1);
                self.tracer.event(ctx.now().as_nanos(), "switch.drop.inspector", || {
                    (
                        self.name.clone(),
                        format!("port={} src={} reason={reason}", port.0, eth.src()),
                    )
                });
                let mut stats = self.stats.borrow_mut();
                stats.dropped_inspector += 1;
                if stats.inspector_reasons.len() >= 32 {
                    stats.inspector_reasons.remove(0);
                }
                stats.inspector_reasons.push(reason);
                return;
            }
        }

        // Port security accounting on the *source* address.
        if let Some(ps) = self.config.port_security {
            if eth.src().is_unicast() && !eth.src().is_zero() {
                let known = self.per_port_macs.entry(port).or_default();
                if !known.contains(&eth.src()) {
                    if known.len() >= ps.max_macs_per_port {
                        self.tracer.count("switch.drop.port_security", 1);
                        self.tracer.event(
                            ctx.now().as_nanos(),
                            "switch.port_security.violation",
                            || {
                                (
                                    self.name.clone(),
                                    format!(
                                        "port={} src={} action={:?}",
                                        port.0,
                                        eth.src(),
                                        ps.violation
                                    ),
                                )
                            },
                        );
                        let mut stats = self.stats.borrow_mut();
                        stats.security_violations += 1;
                        stats.dropped_security += 1;
                        if matches!(ps.violation, ViolationAction::ShutdownPort) {
                            stats.shutdown_ports.insert(port);
                        }
                        return;
                    }
                    known.insert(eth.src());
                }
            }
        }

        // Source learning.
        if eth.src().is_unicast() && !eth.src().is_zero() {
            let outcome = self.cam.borrow_mut().learn(ctx.now(), eth.src(), port);
            match outcome {
                LearnOutcome::Learned => self.tracer.count("switch.learn.new", 1),
                LearnOutcome::Refreshed => self.tracer.count("switch.learn.refreshed", 1),
                LearnOutcome::Moved { from } => {
                    self.tracer.count("switch.learn.moved", 1);
                    self.tracer.event(ctx.now().as_nanos(), "switch.cam.moved", || {
                        (
                            self.name.clone(),
                            format!("src={} moved port {}->{}", eth.src(), from.0, port.0),
                        )
                    });
                }
                LearnOutcome::Full => {
                    self.tracer.count("switch.learn.full", 1);
                    self.tracer.event(ctx.now().as_nanos(), "switch.cam.full", || {
                        (
                            self.name.clone(),
                            format!(
                                "src={} port={} occupancy={} fail_mode={:?}",
                                eth.src(),
                                port.0,
                                self.cam.borrow().occupancy(),
                                self.config.fail_mode
                            ),
                        )
                    });
                }
            }
            if outcome == LearnOutcome::Full {
                self.stats.borrow_mut().cam_full_events += 1;
                if self.config.fail_mode == FailMode::DropNew {
                    return;
                }
            }
        }

        // Forwarding decision first, so the mirror copy can be skipped
        // when the frame's own egress *is* the mirror port (it would
        // otherwise arrive twice there).
        let unicast_out =
            if eth.dst().is_unicast() { self.cam.borrow().lookup(eth.dst()) } else { None };

        // Every egress copy below — mirror, unicast forward, flood —
        // shares the ingress frame's buffer instead of re-allocating it.
        let shared = ctx.incoming_frame().expect("on_frame always carries a frame");

        // Mirror a copy of every (accepted) ingress frame.
        if let Some(mirror) = self.config.mirror_to {
            if mirror != port && unicast_out != Some(mirror) {
                ctx.send(mirror, shared.clone());
            }
        }

        if eth.dst().is_unicast() {
            if let Some(out) = unicast_out {
                if out != port && !self.stats.borrow().shutdown_ports.contains(&out) {
                    ctx.send(out, shared.clone());
                    self.stats.borrow_mut().forwarded += 1;
                    self.tracer.count("switch.forwarded", 1);
                }
                return;
            }
        }
        self.stats.borrow_mut().flooded += 1;
        self.tracer.count("switch.flooded", 1);
        self.flood(ctx, port, &shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::time::SimTime;
    use arpshield_packet::{EtherType, EthernetFrame};

    fn frame(src: MacAddr, dst: MacAddr) -> Vec<u8> {
        EthernetFrame::new(dst, src, EtherType::Other(0x1234), vec![0; 46]).encode()
    }

    /// Sends a list of (delay_ms, frame) pairs; records frames received.
    ///
    /// The plan holds shared [`Frame`]s, so replaying an injection on a
    /// timer fire clones a handle instead of copying the payload.
    struct Station {
        plan: Vec<(u64, Frame)>,
        received: Rc<RefCell<Vec<Vec<u8>>>>,
    }

    impl Station {
        fn new(plan: Vec<(u64, Vec<u8>)>) -> (Self, Rc<RefCell<Vec<Vec<u8>>>>) {
            let received = Rc::new(RefCell::new(Vec::new()));
            let plan = plan.into_iter().map(|(at, bytes)| (at, Frame::from(bytes))).collect();
            (Station { plan, received: Rc::clone(&received) }, received)
        }
    }

    impl Device for Station {
        fn name(&self) -> &str {
            "station"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            for (i, (delay, _)) in self.plan.iter().enumerate() {
                ctx.schedule_in(Duration::from_millis(*delay), i as u64);
            }
        }
        fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
            ctx.send(PortId(0), self.plan[token as usize].1.clone());
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, frame: &[u8]) {
            self.received.borrow_mut().push(frame.to_vec());
        }
    }

    fn wire(
        sim: &mut Simulator,
        station: Station,
        sw: crate::device::DeviceId,
        port: u16,
    ) -> crate::device::DeviceId {
        let id = sim.add_device(Box::new(station));
        sim.connect(id, PortId(0), sw, PortId(port), Duration::from_micros(2)).unwrap();
        id
    }

    #[test]
    fn learns_and_stops_flooding() {
        let mac_a = MacAddr::from_index(1);
        let mac_b = MacAddr::from_index(2);
        let mut sim = Simulator::new(1);
        let (sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(mac_a, mac_b)), (20, frame(mac_a, mac_b))]);
        let (b, b_rx) = Station::new(vec![(10, frame(mac_b, mac_a))]);
        let (c, c_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, c, sw, 2);
        sim.run_until(SimTime::from_secs(1));
        // First a->b frame floods (b unknown): b and c both see it.
        // After b talks, the second a->b frame is forwarded only to b.
        assert_eq!(b_rx.borrow().len(), 2);
        assert_eq!(c_rx.borrow().len(), 1);
        assert_eq!(handle.cam.borrow().occupancy(), 2);
        assert_eq!(handle.stats.borrow().forwarded, 2); // b->a and second a->b
        assert_eq!(handle.stats.borrow().flooded, 1);
    }

    #[test]
    fn broadcast_always_floods() {
        let mac_a = MacAddr::from_index(1);
        let mut sim = Simulator::new(1);
        let (sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(mac_a, MacAddr::BROADCAST))]);
        let (b, b_rx) = Station::new(vec![]);
        let (c, c_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, c, sw, 2);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 1);
        assert_eq!(c_rx.borrow().len(), 1);
        assert_eq!(handle.stats.borrow().flooded, 1);
    }

    #[test]
    fn cam_capacity_and_fail_open() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig { ports: 4, cam_capacity: 3, ..Default::default() };
        let (sw, handle) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        // Station on port 0 emits frames from 5 distinct sources.
        let plan: Vec<_> = (10..15u32)
            .enumerate()
            .map(|(i, n)| ((i as u64 + 1) * 10, frame(MacAddr::from_index(n), MacAddr::BROADCAST)))
            .collect();
        let (a, _) = Station::new(plan);
        let (b, _) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.cam.borrow().occupancy(), 3);
        assert!(handle.cam.borrow().is_full());
        assert_eq!(handle.stats.borrow().cam_full_events, 2);
    }

    #[test]
    fn drop_new_fail_mode_blocks_unknown_sources() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 4,
            cam_capacity: 1,
            fail_mode: FailMode::DropNew,
            ..Default::default()
        };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![
            (1, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
            (10, frame(MacAddr::from_index(2), MacAddr::BROADCAST)),
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        // Only the first source fits; the second is dropped entirely.
        assert_eq!(b_rx.borrow().len(), 1);
    }

    #[test]
    fn cam_aging_evicts_idle_entries() {
        let mut cam = CamTable::new(10, Duration::from_secs(60));
        cam.learn(SimTime::ZERO, MacAddr::from_index(1), PortId(0));
        cam.learn(SimTime::from_secs(30), MacAddr::from_index(2), PortId(1));
        assert_eq!(cam.sweep(SimTime::from_secs(59)), 0);
        assert_eq!(cam.sweep(SimTime::from_secs(61)), 1);
        assert_eq!(cam.occupancy(), 1);
        assert_eq!(cam.lookup(MacAddr::from_index(1)), None);
        assert_eq!(cam.lookup(MacAddr::from_index(2)), Some(PortId(1)));
    }

    #[test]
    fn full_table_of_stale_entries_does_not_lock_out_learning() {
        let mut cam = CamTable::new(2, Duration::from_secs(60));
        cam.learn(SimTime::ZERO, MacAddr::from_index(1), PortId(0));
        cam.learn(SimTime::from_secs(90), MacAddr::from_index(2), PortId(1));
        assert!(cam.is_full());
        // Between sweep ticks, a fresh source arriving after entry 1
        // aged out must evict it inline, not bounce off a stale Full.
        assert_eq!(
            cam.learn(SimTime::from_secs(100), MacAddr::from_index(3), PortId(2)),
            LearnOutcome::Learned
        );
        assert_eq!(cam.occupancy(), 2);
        assert_eq!(cam.lookup(MacAddr::from_index(1)), None, "stale entry evicted");
        assert_eq!(cam.lookup(MacAddr::from_index(2)), Some(PortId(1)), "fresh entry kept");
        // When every entry is genuinely fresh, Full still stands.
        assert_eq!(
            cam.learn(SimTime::from_secs(101), MacAddr::from_index(4), PortId(3)),
            LearnOutcome::Full
        );
    }

    #[test]
    fn unparseable_frames_are_counted_not_silent() {
        let mut sim = Simulator::new(1);
        let (sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        // A runt frame (shorter than an Ethernet header) and one valid frame.
        let (a, _) = Station::new(vec![
            (1, vec![0xde, 0xad, 0xbe]),
            (10, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.stats.borrow().dropped_unparseable, 1);
        assert_eq!(b_rx.borrow().len(), 1, "only the valid frame got through");
    }

    #[test]
    fn station_move_is_tracked() {
        let mut cam = CamTable::new(10, Duration::from_secs(60));
        let mac = MacAddr::from_index(5);
        assert_eq!(cam.learn(SimTime::ZERO, mac, PortId(0)), LearnOutcome::Learned);
        assert_eq!(cam.learn(SimTime::from_secs(1), mac, PortId(0)), LearnOutcome::Refreshed);
        assert_eq!(
            cam.learn(SimTime::from_secs(2), mac, PortId(3)),
            LearnOutcome::Moved { from: PortId(0) }
        );
        assert_eq!(cam.lookup(mac), Some(PortId(3)));
    }

    #[test]
    fn port_security_drop_frame() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 4,
            port_security: Some(PortSecurityConfig {
                max_macs_per_port: 1,
                violation: ViolationAction::DropFrame,
            }),
            ..Default::default()
        };
        let (sw, handle) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![
            (1, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
            (10, frame(MacAddr::from_index(2), MacAddr::BROADCAST)), // violation
            (20, frame(MacAddr::from_index(1), MacAddr::BROADCAST)), // still ok
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 2);
        assert_eq!(handle.stats.borrow().security_violations, 1);
        assert!(handle.stats.borrow().shutdown_ports.is_empty());
    }

    #[test]
    fn port_security_shutdown() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 4,
            port_security: Some(PortSecurityConfig {
                max_macs_per_port: 1,
                violation: ViolationAction::ShutdownPort,
            }),
            ..Default::default()
        };
        let (sw, handle) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![
            (1, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
            (10, frame(MacAddr::from_index(2), MacAddr::BROADCAST)), // violation -> shutdown
            (20, frame(MacAddr::from_index(1), MacAddr::BROADCAST)), // dropped: port down
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 1);
        assert!(handle.stats.borrow().shutdown_ports.contains(&PortId(0)));
    }

    #[test]
    fn mirror_port_sees_everything() {
        let mac_a = MacAddr::from_index(1);
        let mac_b = MacAddr::from_index(2);
        let mut sim = Simulator::new(1);
        let config = SwitchConfig { ports: 4, mirror_to: Some(PortId(3)), ..Default::default() };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(mac_a, mac_b)), (20, frame(mac_a, mac_b))]);
        let (b, _) = Station::new(vec![(10, frame(mac_b, mac_a))]);
        let (mon, mon_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, mon, sw, 3);
        sim.run_until(SimTime::from_secs(1));
        // Every ingress frame is mirrored exactly once, including the
        // unicast a->b at t=20ms that the monitor would otherwise miss.
        assert_eq!(mon_rx.borrow().len(), 3);
    }

    #[test]
    fn inspector_can_drop_frames() {
        struct DenyAll;
        impl FrameInspector for DenyAll {
            fn inspect(&mut self, _: SimTime, _: PortId, _: &EthernetView<'_>) -> InspectVerdict {
                InspectVerdict::Deny { reason: "test".into() }
            }
        }
        let mut sim = Simulator::new(1);
        let (mut sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        sw.set_inspector(Box::new(DenyAll));
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(MacAddr::from_index(1), MacAddr::BROADCAST))]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 0);
        assert_eq!(handle.stats.borrow().dropped_inspector, 1);
        assert_eq!(handle.stats.borrow().inspector_reasons, vec!["test".to_string()]);
    }
}
