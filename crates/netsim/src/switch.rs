//! A learning Ethernet switch with a bounded CAM table, aging, fail-open
//! behaviour, port security, port mirroring, and a pluggable frame
//! inspector (the hook the DAI scheme uses).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::time::Duration;

use arpshield_packet::{
    EthernetView, EthernetViewMut, MacAddr, ETHERNET_HEADER_LEN, ETHERNET_MIN_PAYLOAD,
    ETHERNET_VLAN_TAG_LEN,
};
use arpshield_trace::profile;
use arpshield_trace::Tracer;

use crate::device::{Device, DeviceCtx, PortId};
use crate::frame::Frame;
use crate::time::SimTime;

/// An 802.1Q VLAN identifier (12 significant bits).
///
/// VID 0 is the "untagged" domain: a VLAN-unaware switch classifies every
/// frame into it, which keeps the legacy single-domain behaviour and the
/// VLAN-aware code on one path.
pub type VlanId = u16;

/// The set of VLANs a trunk port carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VlanSet {
    /// Carries every VLAN (an uplink toward the core).
    All,
    /// Carries only the listed VIDs (typically one per leaf uplink).
    Only(Vec<VlanId>),
}

impl VlanSet {
    /// True when `vid` is carried by this set.
    pub fn contains(&self, vid: VlanId) -> bool {
        match self {
            VlanSet::All => true,
            VlanSet::Only(vids) => vids.contains(&vid),
        }
    }
}

/// Per-port VLAN mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortVlan {
    /// Untagged member of exactly one VLAN: ingress frames must arrive
    /// untagged and are classified into the PVID; egress frames leave
    /// untagged. Tagged arrivals are dropped (and counted).
    Access {
        /// The port VLAN id frames are classified into.
        pvid: VlanId,
    },
    /// Tagged member of every VID in `allowed`: ingress classification
    /// comes from the outermost tag and the tag stack passes through
    /// intact (QinQ included). Untagged or non-member arrivals are
    /// dropped (and counted).
    Trunk {
        /// VIDs carried on this trunk.
        allowed: VlanSet,
    },
}

/// One CAM-table binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamEntry {
    /// Port the address was learned on.
    pub port: PortId,
    /// Time the entry was created or moved.
    pub learned_at: SimTime,
    /// Time of the most recent frame from this address.
    pub last_seen: SimTime,
}

/// The switch's MAC-address table.
///
/// Capacity-bounded with inactivity aging — exactly the properties MAC
/// flooding exploits. Entries are keyed by `(VLAN, MAC)`, so the same
/// address on two VLANs holds two independent bindings: it neither flaps
/// between ports nor leaks across broadcast domains. The VLAN-unaware
/// [`learn`](CamTable::learn)/[`lookup`](CamTable::lookup) pair operates on
/// VID 0, matching a switch with no VLAN configuration.
#[derive(Debug, Clone)]
pub struct CamTable {
    entries: HashMap<(VlanId, MacAddr), CamEntry>,
    capacity: usize,
    aging: Duration,
}

/// Result of a learning attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnOutcome {
    /// Newly learned.
    Learned,
    /// Already present on the same port; timestamp refreshed.
    Refreshed,
    /// Present but on a different port; moved (station relocation or
    /// spoofing).
    Moved {
        /// Port the address was previously bound to.
        from: PortId,
    },
    /// Table at capacity; not learned.
    Full,
}

impl CamTable {
    /// Creates a table with the given capacity and aging interval.
    pub fn new(capacity: usize, aging: Duration) -> Self {
        CamTable { entries: HashMap::new(), capacity, aging }
    }

    /// Attempts to learn or refresh `mac` on `port` at time `now`, in the
    /// untagged (VID 0) domain.
    pub fn learn(&mut self, now: SimTime, mac: MacAddr, port: PortId) -> LearnOutcome {
        self.learn_vlan(now, 0, mac, port)
    }

    /// Attempts to learn or refresh `mac` on `port` within VLAN `vid`.
    pub fn learn_vlan(
        &mut self,
        now: SimTime,
        vid: VlanId,
        mac: MacAddr,
        port: PortId,
    ) -> LearnOutcome {
        if let Some(entry) = self.entries.get_mut(&(vid, mac)) {
            entry.last_seen = now;
            if entry.port == port {
                return LearnOutcome::Refreshed;
            }
            let from = entry.port;
            entry.port = port;
            entry.learned_at = now;
            return LearnOutcome::Moved { from };
        }
        if self.entries.len() >= self.capacity {
            // A table full of *stale* entries must not lock out fresh
            // learning between sweep ticks: age out inline before
            // declaring the table full.
            self.sweep(now);
        }
        if self.entries.len() >= self.capacity {
            return LearnOutcome::Full;
        }
        self.entries.insert((vid, mac), CamEntry { port, learned_at: now, last_seen: now });
        LearnOutcome::Learned
    }

    /// Looks up the egress port for `mac` in the untagged (VID 0) domain.
    pub fn lookup(&self, mac: MacAddr) -> Option<PortId> {
        self.lookup_vlan(0, mac)
    }

    /// Looks up the egress port for `mac` within VLAN `vid`.
    pub fn lookup_vlan(&self, vid: VlanId, mac: MacAddr) -> Option<PortId> {
        self.entries.get(&(vid, mac)).map(|e| e.port)
    }

    /// Evicts entries idle longer than the aging interval; returns how many
    /// were removed.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let aging = self.aging;
        let before = self.entries.len();
        self.entries.retain(|_, e| now.saturating_since(e.last_seen) < aging);
        before - self.entries.len()
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when no more addresses can be learned.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Iterates over live `((vlan, mac), entry)` bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&(VlanId, MacAddr), &CamEntry)> {
        self.entries.iter()
    }
}

/// Behaviour when the CAM table is full and an unknown source appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// The classic (insecure) behaviour: the frame is still forwarded, and
    /// since its source cannot be learned the *reverse* traffic floods to
    /// every port — the hub-like degradation MAC flooding aims for.
    #[default]
    FloodOpen,
    /// The defensive behaviour: frames from unlearnable sources are dropped.
    DropNew,
}

/// Per-port limit on learned addresses, modelling Cisco-style
/// `port security`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSecurityConfig {
    /// Maximum distinct source addresses allowed per access port.
    pub max_macs_per_port: usize,
    /// What to do when a port exceeds its limit.
    pub violation: ViolationAction,
}

/// Action taken on a port-security violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationAction {
    /// Drop the offending frame, keep the port up (restrict mode).
    DropFrame,
    /// Err-disable the port: all subsequent traffic on it is dropped.
    ShutdownPort,
}

/// Verdict returned by a [`FrameInspector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InspectVerdict {
    /// Forward normally.
    Permit,
    /// Drop the frame; `reason` is recorded in switch stats.
    Deny {
        /// Human-readable drop reason.
        reason: String,
    },
}

/// A pluggable ingress filter, invoked on every frame before learning and
/// forwarding. Dynamic ARP Inspection is implemented as one of these in
/// `arpshield-schemes`.
///
/// The frame arrives as a borrowed [`EthernetView`] over the wire bytes:
/// inspection sits on the switch's per-frame fast path, where an owned
/// parse would cost an allocation per ingress frame.
pub trait FrameInspector {
    /// Inspects a frame arriving on `ingress`, already classified into
    /// `vlan` (0 on a VLAN-unaware switch); returning
    /// [`InspectVerdict::Deny`] drops it.
    ///
    /// The classified VID — not the raw tag — is passed so schemes can
    /// scope their state per broadcast domain: a DAI binding snooped on
    /// VLAN A must not validate ARP on VLAN B.
    fn inspect(
        &mut self,
        now: SimTime,
        ingress: PortId,
        vlan: VlanId,
        frame: &EthernetView<'_>,
    ) -> InspectVerdict;
}

/// Counters exposed by a running switch.
#[derive(Debug, Default, Clone)]
pub struct SwitchStats {
    /// Frames forwarded to exactly one known port.
    pub forwarded: u64,
    /// Frames flooded to all ports (broadcast/multicast/unknown dst).
    pub flooded: u64,
    /// Frames dropped by port security.
    pub dropped_security: u64,
    /// Frames dropped by the inspector, with reasons.
    pub dropped_inspector: u64,
    /// Frames that failed Ethernet parsing at ingress and were dropped.
    pub dropped_unparseable: u64,
    /// Frames dropped by VLAN ingress rules (tagged arrival on an access
    /// port, untagged or non-member VID on a trunk).
    pub dropped_vlan: u64,
    /// Most recent inspector drop reasons (bounded ring of 32; a deque so
    /// eviction is O(1) on the per-frame ingress path).
    pub inspector_reasons: VecDeque<String>,
    /// Times a learn attempt found the table full.
    pub cam_full_events: u64,
    /// Ports currently err-disabled by port security.
    pub shutdown_ports: HashSet<PortId>,
    /// Port-security violations observed.
    pub security_violations: u64,
}

/// Shared inspection handle into a live switch.
///
/// The simulator owns devices as `Box<dyn Device>`; the handle gives
/// experiments read access to the CAM table and counters without
/// downcasting. The simulation is single-threaded, so `Rc<RefCell>` is the
/// right tool.
#[derive(Debug, Clone)]
pub struct SwitchHandle {
    /// The live CAM table.
    pub cam: Rc<RefCell<CamTable>>,
    /// Live counters.
    pub stats: Rc<RefCell<SwitchStats>>,
}

/// Switch construction parameters.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of ports.
    pub ports: usize,
    /// CAM capacity (the MikroTik hAP lite class of device holds 1024).
    pub cam_capacity: usize,
    /// CAM inactivity aging.
    pub cam_aging: Duration,
    /// Full-table behaviour.
    pub fail_mode: FailMode,
    /// Copy every ingress frame to this port (SPAN/mirror). The mirror
    /// port is excluded from normal flooding.
    pub mirror_to: Option<PortId>,
    /// Optional per-port MAC limit.
    pub port_security: Option<PortSecurityConfig>,
    /// Per-port VLAN modes, indexed by port number; the length must equal
    /// `ports`. `None` keeps the switch VLAN-unaware: one broadcast
    /// domain, and any tag stacks forward opaquely as payload bytes.
    pub vlans: Option<Vec<PortVlan>>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 8,
            cam_capacity: 1024,
            cam_aging: Duration::from_secs(300),
            fail_mode: FailMode::FloodOpen,
            mirror_to: None,
            port_security: None,
            vlans: None,
        }
    }
}

const SWEEP_TOKEN: u64 = 0xCA11_5EE9;

/// A learning Ethernet switch.
#[derive(Debug)]
pub struct Switch {
    name: String,
    config: SwitchConfig,
    cam: Rc<RefCell<CamTable>>,
    stats: Rc<RefCell<SwitchStats>>,
    per_port_macs: HashMap<PortId, HashSet<MacAddr>>,
    inspector: Option<Box<dyn FrameInspector>>,
    tracer: Tracer,
}

impl std::fmt::Debug for dyn FrameInspector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameInspector")
    }
}

/// Outcome of ingress VLAN classification.
enum Classified {
    /// Frame admitted into `vid`; `tagged` records whether it carries an
    /// outer tag on the wire, which drives egress re-tagging.
    Member { vid: VlanId, tagged: bool },
    /// Frame violates the ingress port's VLAN mode.
    Drop,
}

/// The (at most two) egress representations of one ingress frame.
///
/// A flood across mixed access and trunk ports needs the frame both
/// untagged and tagged; each form is built at most once — the one matching
/// the ingress encapsulation is the shared ingress buffer itself, the
/// other is rebuilt lazily on first use.
struct EgressForms<'a> {
    shared: &'a Frame,
    vid: VlanId,
    ingress_tagged: bool,
    rebuilt: Option<Frame>,
}

impl EgressForms<'_> {
    /// The frame as it should leave a port whose egress is `tagged`.
    fn for_tagged(&mut self, tagged: bool) -> Frame {
        if tagged == self.ingress_tagged {
            return self.shared.clone();
        }
        let rebuilt = self.rebuilt.get_or_insert_with(|| {
            if tagged {
                tag_frame(self.shared, self.vid)
            } else {
                untag_frame(self.shared)
            }
        });
        rebuilt.clone()
    }
}

/// Builds a copy of `frame` with an 802.1Q tag for `vid` pushed after the
/// addresses — access-to-trunk egress. The rest of the frame (including
/// any inner tags, making QinQ stacking fall out for free) shifts right by
/// one tag length.
fn tag_frame(frame: &Frame, vid: VlanId) -> Frame {
    let len = frame.len() + ETHERNET_VLAN_TAG_LEN;
    Frame::build(len, |buf| {
        buf[..12].copy_from_slice(&frame[..12]);
        EthernetViewMut::new(buf).push_vlan(vid);
        buf[12 + ETHERNET_VLAN_TAG_LEN..].copy_from_slice(&frame[12..]);
        len
    })
}

/// Builds a copy of `frame` with the outermost tag stripped — trunk-to-
/// access egress — padded back up to the Ethernet minimum if the removal
/// would make a runt (the pool buffer is pre-zeroed, so the padding is
/// already in place).
fn untag_frame(frame: &Frame) -> Frame {
    let stripped = frame.len() - ETHERNET_VLAN_TAG_LEN;
    let len = stripped.max(ETHERNET_HEADER_LEN + ETHERNET_MIN_PAYLOAD);
    Frame::build(len, |buf| {
        buf[..12].copy_from_slice(&frame[..12]);
        buf[12..stripped].copy_from_slice(&frame[12 + ETHERNET_VLAN_TAG_LEN..]);
        len
    })
}

impl Switch {
    /// Creates a switch and its inspection handle.
    ///
    /// # Panics
    ///
    /// Panics if a VLAN table is configured whose length differs from the
    /// port count.
    pub fn new(name: impl Into<String>, config: SwitchConfig) -> (Self, SwitchHandle) {
        if let Some(vlans) = &config.vlans {
            assert_eq!(vlans.len(), config.ports, "per-port VLAN table must cover every port");
        }
        let cam = Rc::new(RefCell::new(CamTable::new(config.cam_capacity, config.cam_aging)));
        let stats = Rc::new(RefCell::new(SwitchStats::default()));
        let handle = SwitchHandle { cam: Rc::clone(&cam), stats: Rc::clone(&stats) };
        (
            Switch {
                name: name.into(),
                config,
                cam,
                stats,
                per_port_macs: HashMap::new(),
                inspector: None,
                tracer: Tracer::disabled(),
            },
            handle,
        )
    }

    /// Installs an ingress [`FrameInspector`] (e.g. Dynamic ARP Inspection).
    pub fn set_inspector(&mut self, inspector: Box<dyn FrameInspector>) {
        self.inspector = Some(inspector);
    }

    /// Routes this switch's learn/drop outcomes into `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Classifies an ingress frame into a VLAN according to the port's
    /// mode. A VLAN-unaware switch admits everything into VID 0 with the
    /// bytes treated as opaque (no re-tagging ever happens).
    fn classify(&self, port: PortId, eth: &EthernetView<'_>) -> Classified {
        let Some(vlans) = &self.config.vlans else {
            return Classified::Member { vid: 0, tagged: false };
        };
        match &vlans[port.0 as usize] {
            PortVlan::Access { pvid } => match eth.vlan() {
                None => Classified::Member { vid: *pvid, tagged: false },
                Some(_) => Classified::Drop,
            },
            PortVlan::Trunk { allowed } => match eth.vlan() {
                Some(vid) if allowed.contains(vid) => Classified::Member { vid, tagged: true },
                _ => Classified::Drop,
            },
        }
    }

    /// Whether `vid` may egress through `port`: `Some(tagged)` when the
    /// port is a member (`tagged` selects the egress encapsulation), `None`
    /// when the port is outside the VLAN's flood domain.
    fn egress_mode(&self, port: PortId, vid: VlanId) -> Option<bool> {
        match &self.config.vlans {
            None => Some(false),
            Some(vlans) => match &vlans[port.0 as usize] {
                PortVlan::Access { pvid } => (*pvid == vid).then_some(false),
                PortVlan::Trunk { allowed } => allowed.contains(vid).then_some(true),
            },
        }
    }

    fn flood(&self, ctx: &mut DeviceCtx<'_>, ingress: PortId, forms: &mut EgressForms<'_>) {
        // `ports` may legitimately be 65536 (every PortId addressable), so
        // iterate the usize range and narrow per port.
        for p in 0..self.config.ports {
            let p = PortId(p as u16);
            if p == ingress || Some(p) == self.config.mirror_to {
                continue;
            }
            if self.stats.borrow().shutdown_ports.contains(&p) {
                continue;
            }
            let Some(tagged) = self.egress_mode(p, forms.vid) else {
                continue;
            };
            ctx.send(p, forms.for_tagged(tagged));
        }
    }
}

impl Device for Switch {
    fn name(&self) -> &str {
        &self.name
    }

    fn port_count(&self) -> usize {
        self.config.ports
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let interval = (self.config.cam_aging / 4).max(Duration::from_millis(100));
        ctx.schedule_in(interval, SWEEP_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == SWEEP_TOKEN {
            let evicted = self.cam.borrow_mut().sweep(ctx.now());
            if evicted > 0 {
                self.tracer.count("switch.cam.aged_out", evicted as u64);
            }
            // The aging sweep doubles as the CAM-size sampling point:
            // it already fires periodically on every switch, so the
            // gauge costs nothing new on the frame path.
            profile::gauge("switch.cam.size", self.cam.borrow().occupancy() as u64);
            let interval = (self.config.cam_aging / 4).max(Duration::from_millis(100));
            ctx.schedule_in(interval, SWEEP_TOKEN);
        }
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]) {
        // Err-disabled ports drop everything.
        if self.stats.borrow().shutdown_ports.contains(&port) {
            self.stats.borrow_mut().dropped_security += 1;
            return;
        }

        let Ok(eth) = EthernetView::parse_strict(frame) else {
            // Unparseable garbage is dropped — but never silently: the
            // drop is counted and attributable to its ingress port.
            self.stats.borrow_mut().dropped_unparseable += 1;
            self.tracer.count("switch.drop.unparseable", 1);
            self.tracer.event(ctx.now().as_nanos(), "switch.drop.unparseable", || {
                (self.name.clone(), format!("port={} len={}", port.0, frame.len()))
            });
            return;
        };

        // VLAN ingress classification, ahead of everything else: a frame
        // outside the port's configured domain never reaches the
        // inspector, the CAM, or a flood.
        let classified = {
            let _s = profile::span("switch.classify");
            self.classify(port, &eth)
        };
        let (vid, ingress_tagged) = match classified {
            Classified::Member { vid, tagged } => (vid, tagged),
            Classified::Drop => {
                self.stats.borrow_mut().dropped_vlan += 1;
                self.tracer.count("switch.drop.vlan", 1);
                self.tracer.event(ctx.now().as_nanos(), "switch.drop.vlan", || {
                    (
                        self.name.clone(),
                        format!("port={} src={} tag={:?}", port.0, eth.src(), eth.vlan()),
                    )
                });
                return;
            }
        };

        // Ingress inspection (DAI etc.), scoped to the classified VLAN.
        if let Some(inspector) = &mut self.inspector {
            let _s = profile::span("switch.inspect");
            if let InspectVerdict::Deny { reason } = inspector.inspect(ctx.now(), port, vid, &eth) {
                self.tracer.count("switch.drop.inspector", 1);
                self.tracer.event(ctx.now().as_nanos(), "switch.drop.inspector", || {
                    (
                        self.name.clone(),
                        format!("port={} src={} reason={reason}", port.0, eth.src()),
                    )
                });
                let mut stats = self.stats.borrow_mut();
                stats.dropped_inspector += 1;
                if stats.inspector_reasons.len() >= 32 {
                    stats.inspector_reasons.pop_front();
                }
                stats.inspector_reasons.push_back(reason);
                return;
            }
        }

        // Port security accounting on the *source* address.
        if let Some(ps) = self.config.port_security {
            if eth.src().is_unicast() && !eth.src().is_zero() {
                let known = self.per_port_macs.entry(port).or_default();
                if !known.contains(&eth.src()) {
                    if known.len() >= ps.max_macs_per_port {
                        self.tracer.count("switch.drop.port_security", 1);
                        self.tracer.event(
                            ctx.now().as_nanos(),
                            "switch.port_security.violation",
                            || {
                                (
                                    self.name.clone(),
                                    format!(
                                        "port={} src={} action={:?}",
                                        port.0,
                                        eth.src(),
                                        ps.violation
                                    ),
                                )
                            },
                        );
                        let mut stats = self.stats.borrow_mut();
                        stats.security_violations += 1;
                        stats.dropped_security += 1;
                        if matches!(ps.violation, ViolationAction::ShutdownPort) {
                            stats.shutdown_ports.insert(port);
                        }
                        return;
                    }
                    known.insert(eth.src());
                }
            }
        }

        // Source learning, scoped to the classified VLAN.
        if eth.src().is_unicast() && !eth.src().is_zero() {
            let outcome = self.cam.borrow_mut().learn_vlan(ctx.now(), vid, eth.src(), port);
            match outcome {
                LearnOutcome::Learned => self.tracer.count("switch.learn.new", 1),
                LearnOutcome::Refreshed => self.tracer.count("switch.learn.refreshed", 1),
                LearnOutcome::Moved { from } => {
                    self.tracer.count("switch.learn.moved", 1);
                    self.tracer.event(ctx.now().as_nanos(), "switch.cam.moved", || {
                        (
                            self.name.clone(),
                            format!("src={} moved port {}->{}", eth.src(), from.0, port.0),
                        )
                    });
                }
                LearnOutcome::Full => {
                    self.tracer.count("switch.learn.full", 1);
                    self.tracer.event(ctx.now().as_nanos(), "switch.cam.full", || {
                        (
                            self.name.clone(),
                            format!(
                                "src={} port={} occupancy={} fail_mode={:?}",
                                eth.src(),
                                port.0,
                                self.cam.borrow().occupancy(),
                                self.config.fail_mode
                            ),
                        )
                    });
                }
            }
            if outcome == LearnOutcome::Full {
                self.stats.borrow_mut().cam_full_events += 1;
                if self.config.fail_mode == FailMode::DropNew {
                    return;
                }
            }
        }

        // Forwarding decision first, so the mirror copy can be skipped
        // when the frame's own egress *is* the mirror port (it would
        // otherwise arrive twice there).
        let _s = profile::span("switch.forward");
        let unicast_out = if eth.dst().is_unicast() {
            self.cam.borrow().lookup_vlan(vid, eth.dst())
        } else {
            None
        };

        // Every egress copy below — mirror, unicast forward, flood —
        // shares the ingress frame's buffer; only a tag/untag boundary
        // builds one fresh frame, reused for every port of that kind.
        let shared = ctx.incoming_frame().expect("on_frame always carries a frame");
        let mut forms = EgressForms { shared: &shared, vid, ingress_tagged, rebuilt: None };

        // Mirror a copy of every (accepted) ingress frame, exactly as it
        // arrived — SPAN shows wire reality, not the egress rewrite.
        if let Some(mirror) = self.config.mirror_to {
            if mirror != port && unicast_out != Some(mirror) {
                ctx.send(mirror, shared.clone());
            }
        }

        if eth.dst().is_unicast() {
            if let Some(out) = unicast_out {
                if out != port && !self.stats.borrow().shutdown_ports.contains(&out) {
                    if let Some(tagged) = self.egress_mode(out, vid) {
                        ctx.send(out, forms.for_tagged(tagged));
                        self.stats.borrow_mut().forwarded += 1;
                        self.tracer.count("switch.forwarded", 1);
                    }
                }
                return;
            }
        }
        self.stats.borrow_mut().flooded += 1;
        self.tracer.count("switch.flooded", 1);
        self.flood(ctx, port, &mut forms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::time::SimTime;
    use arpshield_packet::{EtherType, EthernetFrame};

    fn frame(src: MacAddr, dst: MacAddr) -> Vec<u8> {
        EthernetFrame::new(dst, src, EtherType::Other(0x1234), vec![0; 46]).encode()
    }

    /// Sends a list of (delay_ms, frame) pairs; records frames received.
    ///
    /// The plan holds shared [`Frame`]s, so replaying an injection on a
    /// timer fire clones a handle instead of copying the payload.
    struct Station {
        plan: Vec<(u64, Frame)>,
        received: Rc<RefCell<Vec<Vec<u8>>>>,
    }

    impl Station {
        fn new(plan: Vec<(u64, Vec<u8>)>) -> (Self, Rc<RefCell<Vec<Vec<u8>>>>) {
            let received = Rc::new(RefCell::new(Vec::new()));
            let plan = plan.into_iter().map(|(at, bytes)| (at, Frame::from(bytes))).collect();
            (Station { plan, received: Rc::clone(&received) }, received)
        }
    }

    impl Device for Station {
        fn name(&self) -> &str {
            "station"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            for (i, (delay, _)) in self.plan.iter().enumerate() {
                ctx.schedule_in(Duration::from_millis(*delay), i as u64);
            }
        }
        fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
            ctx.send(PortId(0), self.plan[token as usize].1.clone());
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, frame: &[u8]) {
            self.received.borrow_mut().push(frame.to_vec());
        }
    }

    fn wire(
        sim: &mut Simulator,
        station: Station,
        sw: crate::device::DeviceId,
        port: u16,
    ) -> crate::device::DeviceId {
        let id = sim.add_device(Box::new(station));
        sim.connect(id, PortId(0), sw, PortId(port), Duration::from_micros(2)).unwrap();
        id
    }

    #[test]
    fn learns_and_stops_flooding() {
        let mac_a = MacAddr::from_index(1);
        let mac_b = MacAddr::from_index(2);
        let mut sim = Simulator::new(1);
        let (sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(mac_a, mac_b)), (20, frame(mac_a, mac_b))]);
        let (b, b_rx) = Station::new(vec![(10, frame(mac_b, mac_a))]);
        let (c, c_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, c, sw, 2);
        sim.run_until(SimTime::from_secs(1));
        // First a->b frame floods (b unknown): b and c both see it.
        // After b talks, the second a->b frame is forwarded only to b.
        assert_eq!(b_rx.borrow().len(), 2);
        assert_eq!(c_rx.borrow().len(), 1);
        assert_eq!(handle.cam.borrow().occupancy(), 2);
        assert_eq!(handle.stats.borrow().forwarded, 2); // b->a and second a->b
        assert_eq!(handle.stats.borrow().flooded, 1);
    }

    #[test]
    fn broadcast_always_floods() {
        let mac_a = MacAddr::from_index(1);
        let mut sim = Simulator::new(1);
        let (sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(mac_a, MacAddr::BROADCAST))]);
        let (b, b_rx) = Station::new(vec![]);
        let (c, c_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, c, sw, 2);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 1);
        assert_eq!(c_rx.borrow().len(), 1);
        assert_eq!(handle.stats.borrow().flooded, 1);
    }

    #[test]
    fn cam_capacity_and_fail_open() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig { ports: 4, cam_capacity: 3, ..Default::default() };
        let (sw, handle) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        // Station on port 0 emits frames from 5 distinct sources.
        let plan: Vec<_> = (10..15u32)
            .enumerate()
            .map(|(i, n)| ((i as u64 + 1) * 10, frame(MacAddr::from_index(n), MacAddr::BROADCAST)))
            .collect();
        let (a, _) = Station::new(plan);
        let (b, _) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.cam.borrow().occupancy(), 3);
        assert!(handle.cam.borrow().is_full());
        assert_eq!(handle.stats.borrow().cam_full_events, 2);
    }

    #[test]
    fn drop_new_fail_mode_blocks_unknown_sources() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 4,
            cam_capacity: 1,
            fail_mode: FailMode::DropNew,
            ..Default::default()
        };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![
            (1, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
            (10, frame(MacAddr::from_index(2), MacAddr::BROADCAST)),
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        // Only the first source fits; the second is dropped entirely.
        assert_eq!(b_rx.borrow().len(), 1);
    }

    #[test]
    fn cam_aging_evicts_idle_entries() {
        let mut cam = CamTable::new(10, Duration::from_secs(60));
        cam.learn(SimTime::ZERO, MacAddr::from_index(1), PortId(0));
        cam.learn(SimTime::from_secs(30), MacAddr::from_index(2), PortId(1));
        assert_eq!(cam.sweep(SimTime::from_secs(59)), 0);
        assert_eq!(cam.sweep(SimTime::from_secs(61)), 1);
        assert_eq!(cam.occupancy(), 1);
        assert_eq!(cam.lookup(MacAddr::from_index(1)), None);
        assert_eq!(cam.lookup(MacAddr::from_index(2)), Some(PortId(1)));
    }

    #[test]
    fn full_table_of_stale_entries_does_not_lock_out_learning() {
        let mut cam = CamTable::new(2, Duration::from_secs(60));
        cam.learn(SimTime::ZERO, MacAddr::from_index(1), PortId(0));
        cam.learn(SimTime::from_secs(90), MacAddr::from_index(2), PortId(1));
        assert!(cam.is_full());
        // Between sweep ticks, a fresh source arriving after entry 1
        // aged out must evict it inline, not bounce off a stale Full.
        assert_eq!(
            cam.learn(SimTime::from_secs(100), MacAddr::from_index(3), PortId(2)),
            LearnOutcome::Learned
        );
        assert_eq!(cam.occupancy(), 2);
        assert_eq!(cam.lookup(MacAddr::from_index(1)), None, "stale entry evicted");
        assert_eq!(cam.lookup(MacAddr::from_index(2)), Some(PortId(1)), "fresh entry kept");
        // When every entry is genuinely fresh, Full still stands.
        assert_eq!(
            cam.learn(SimTime::from_secs(101), MacAddr::from_index(4), PortId(3)),
            LearnOutcome::Full
        );
    }

    #[test]
    fn unparseable_frames_are_counted_not_silent() {
        let mut sim = Simulator::new(1);
        let (sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        // A runt frame (shorter than an Ethernet header) and one valid frame.
        let (a, _) = Station::new(vec![
            (1, vec![0xde, 0xad, 0xbe]),
            (10, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.stats.borrow().dropped_unparseable, 1);
        assert_eq!(b_rx.borrow().len(), 1, "only the valid frame got through");
    }

    #[test]
    fn station_move_is_tracked() {
        let mut cam = CamTable::new(10, Duration::from_secs(60));
        let mac = MacAddr::from_index(5);
        assert_eq!(cam.learn(SimTime::ZERO, mac, PortId(0)), LearnOutcome::Learned);
        assert_eq!(cam.learn(SimTime::from_secs(1), mac, PortId(0)), LearnOutcome::Refreshed);
        assert_eq!(
            cam.learn(SimTime::from_secs(2), mac, PortId(3)),
            LearnOutcome::Moved { from: PortId(0) }
        );
        assert_eq!(cam.lookup(mac), Some(PortId(3)));
    }

    #[test]
    fn port_security_drop_frame() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 4,
            port_security: Some(PortSecurityConfig {
                max_macs_per_port: 1,
                violation: ViolationAction::DropFrame,
            }),
            ..Default::default()
        };
        let (sw, handle) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![
            (1, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
            (10, frame(MacAddr::from_index(2), MacAddr::BROADCAST)), // violation
            (20, frame(MacAddr::from_index(1), MacAddr::BROADCAST)), // still ok
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 2);
        assert_eq!(handle.stats.borrow().security_violations, 1);
        assert!(handle.stats.borrow().shutdown_ports.is_empty());
    }

    #[test]
    fn port_security_shutdown() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 4,
            port_security: Some(PortSecurityConfig {
                max_macs_per_port: 1,
                violation: ViolationAction::ShutdownPort,
            }),
            ..Default::default()
        };
        let (sw, handle) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![
            (1, frame(MacAddr::from_index(1), MacAddr::BROADCAST)),
            (10, frame(MacAddr::from_index(2), MacAddr::BROADCAST)), // violation -> shutdown
            (20, frame(MacAddr::from_index(1), MacAddr::BROADCAST)), // dropped: port down
        ]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 1);
        assert!(handle.stats.borrow().shutdown_ports.contains(&PortId(0)));
    }

    #[test]
    fn mirror_port_sees_everything() {
        let mac_a = MacAddr::from_index(1);
        let mac_b = MacAddr::from_index(2);
        let mut sim = Simulator::new(1);
        let config = SwitchConfig { ports: 4, mirror_to: Some(PortId(3)), ..Default::default() };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(mac_a, mac_b)), (20, frame(mac_a, mac_b))]);
        let (b, _) = Station::new(vec![(10, frame(mac_b, mac_a))]);
        let (mon, mon_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, mon, sw, 3);
        sim.run_until(SimTime::from_secs(1));
        // Every ingress frame is mirrored exactly once, including the
        // unicast a->b at t=20ms that the monitor would otherwise miss.
        assert_eq!(mon_rx.borrow().len(), 3);
    }

    #[test]
    fn inspector_can_drop_frames() {
        struct DenyAll;
        impl FrameInspector for DenyAll {
            fn inspect(
                &mut self,
                _: SimTime,
                _: PortId,
                _: VlanId,
                _: &EthernetView<'_>,
            ) -> InspectVerdict {
                InspectVerdict::Deny { reason: "test".into() }
            }
        }
        let mut sim = Simulator::new(1);
        let (mut sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        sw.set_inspector(Box::new(DenyAll));
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(MacAddr::from_index(1), MacAddr::BROADCAST))]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 0);
        assert_eq!(handle.stats.borrow().dropped_inspector, 1);
        assert_eq!(handle.stats.borrow().inspector_reasons, vec!["test".to_string()]);
    }

    #[test]
    fn inspector_reason_ring_keeps_newest_32() {
        struct DenySeq(u64);
        impl FrameInspector for DenySeq {
            fn inspect(
                &mut self,
                _: SimTime,
                _: PortId,
                _: VlanId,
                _: &EthernetView<'_>,
            ) -> InspectVerdict {
                self.0 += 1;
                InspectVerdict::Deny { reason: format!("r{}", self.0 - 1) }
            }
        }
        let mut sim = Simulator::new(1);
        let (mut sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
        sw.set_inspector(Box::new(DenySeq(0)));
        let sw = sim.add_device(Box::new(sw));
        let plan = (0..40u64)
            .map(|i| (i + 1, frame(MacAddr::from_index(1), MacAddr::BROADCAST)))
            .collect();
        let (a, _) = Station::new(plan);
        wire(&mut sim, a, sw, 0);
        sim.run_until(SimTime::from_secs(1));
        let stats = handle.stats.borrow();
        assert_eq!(stats.dropped_inspector, 40);
        assert_eq!(stats.inspector_reasons.len(), 32, "ring stays bounded");
        assert_eq!(stats.inspector_reasons.front().map(String::as_str), Some("r8"));
        assert_eq!(stats.inspector_reasons.back().map(String::as_str), Some("r39"));
    }

    fn access(pvid: VlanId) -> PortVlan {
        PortVlan::Access { pvid }
    }

    fn trunk(vids: &[VlanId]) -> PortVlan {
        PortVlan::Trunk { allowed: VlanSet::Only(vids.to_vec()) }
    }

    fn tagged_frame(src: MacAddr, dst: MacAddr, vid: VlanId) -> Vec<u8> {
        EthernetFrame::new(dst, src, EtherType::Other(0x1234), vec![0; 46]).with_vlan(vid).encode()
    }

    #[test]
    fn vlan_flood_domains_are_isolated() {
        // Ports 0-1 on VID 10, ports 2-3 on VID 20: a broadcast entering
        // VID 10 must reach its peer and nobody on VID 20.
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 4,
            vlans: Some(vec![access(10), access(10), access(20), access(20)]),
            ..Default::default()
        };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(MacAddr::from_index(1), MacAddr::BROADCAST))]);
        let (b, b_rx) = Station::new(vec![]);
        let (c, c_rx) = Station::new(vec![]);
        let (d, d_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, c, sw, 2);
        wire(&mut sim, d, sw, 3);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(b_rx.borrow().len(), 1, "same-VLAN peer sees the broadcast");
        assert_eq!(c_rx.borrow().len(), 0, "VID 20 port is outside the flood domain");
        assert_eq!(d_rx.borrow().len(), 0);
    }

    #[test]
    fn access_to_trunk_egress_tags_golden_bytes() {
        let src = MacAddr::from_index(1);
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 2,
            vlans: Some(vec![access(7), trunk(&[7])]),
            ..Default::default()
        };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(src, MacAddr::BROADCAST))]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        let got = b_rx.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], tagged_frame(src, MacAddr::BROADCAST, 7), "PVID tag pushed on egress");
    }

    #[test]
    fn trunk_to_access_egress_untags() {
        let src = MacAddr::from_index(1);
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 2,
            vlans: Some(vec![trunk(&[7]), access(7)]),
            ..Default::default()
        };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, tagged_frame(src, MacAddr::BROADCAST, 7))]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        let got = b_rx.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], frame(src, MacAddr::BROADCAST), "tag stripped, padding restored");
    }

    #[test]
    fn trunk_to_trunk_passes_qinq_stack_through_untouched() {
        // Hand-spliced QinQ frame: 802.1ad S-tag (VID 0xFFE) outermost,
        // 802.1Q C-tag (VID 2) inside — same fixture the wire writers pin.
        let mut qinq = Vec::new();
        qinq.extend_from_slice(MacAddr::BROADCAST.as_bytes());
        qinq.extend_from_slice(MacAddr::from_index(7).as_bytes());
        qinq.extend_from_slice(&[0x88, 0xa8, 0x0F, 0xFE]);
        qinq.extend_from_slice(&[0x81, 0x00, 0x00, 0x02]);
        qinq.extend_from_slice(&[0x08, 0x06]);
        qinq.extend_from_slice(&[0u8; 46]);

        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 2,
            vlans: Some(vec![trunk(&[0xFFE]), trunk(&[0xFFE])]),
            ..Default::default()
        };
        let (sw, _) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, qinq.clone())]);
        let (b, b_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        let got = b_rx.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], qinq, "trunk egress forwards the full tag stack byte-for-byte");
    }

    #[test]
    fn vlan_ingress_violations_are_dropped_and_counted() {
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 3,
            vlans: Some(vec![access(10), trunk(&[10]), access(10)]),
            ..Default::default()
        };
        let (sw, handle) = Switch::new("sw", config);
        let sw = sim.add_device(Box::new(sw));
        // Tagged frame on an access port, untagged on a trunk, and a
        // non-member VID on the trunk: all three must die at ingress.
        let (a, _) =
            Station::new(vec![(1, tagged_frame(MacAddr::from_index(1), MacAddr::BROADCAST, 10))]);
        let (b, _) = Station::new(vec![
            (2, frame(MacAddr::from_index(2), MacAddr::BROADCAST)),
            (3, tagged_frame(MacAddr::from_index(2), MacAddr::BROADCAST, 99)),
        ]);
        let (c, c_rx) = Station::new(vec![]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        wire(&mut sim, c, sw, 2);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.stats.borrow().dropped_vlan, 3);
        assert_eq!(c_rx.borrow().len(), 0);
    }

    #[test]
    fn same_mac_on_two_vlans_neither_flaps_nor_leaks() {
        let mac = MacAddr::from_index(5);
        let mut cam = CamTable::new(10, Duration::from_secs(60));
        assert_eq!(cam.learn_vlan(SimTime::ZERO, 10, mac, PortId(0)), LearnOutcome::Learned);
        assert_eq!(
            cam.learn_vlan(SimTime::from_secs(1), 20, mac, PortId(3)),
            LearnOutcome::Learned,
            "a second VLAN is a fresh binding, not a station move"
        );
        assert_eq!(cam.lookup_vlan(10, mac), Some(PortId(0)));
        assert_eq!(cam.lookup_vlan(20, mac), Some(PortId(3)));
        assert_eq!(cam.lookup_vlan(30, mac), None, "no leak into unrelated VLANs");
        assert_eq!(cam.occupancy(), 2);
    }

    #[test]
    fn inspector_sees_the_classified_vid() {
        struct RecordVids(Rc<RefCell<Vec<VlanId>>>);
        impl FrameInspector for RecordVids {
            fn inspect(
                &mut self,
                _: SimTime,
                _: PortId,
                vlan: VlanId,
                _: &EthernetView<'_>,
            ) -> InspectVerdict {
                self.0.borrow_mut().push(vlan);
                InspectVerdict::Permit
            }
        }
        let vids = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let config = SwitchConfig {
            ports: 2,
            vlans: Some(vec![access(42), trunk(&[42])]),
            ..Default::default()
        };
        let (mut sw, _) = Switch::new("sw", config);
        sw.set_inspector(Box::new(RecordVids(Rc::clone(&vids))));
        let sw = sim.add_device(Box::new(sw));
        let (a, _) = Station::new(vec![(1, frame(MacAddr::from_index(1), MacAddr::BROADCAST))]);
        let (b, _) =
            Station::new(vec![(2, tagged_frame(MacAddr::from_index(2), MacAddr::BROADCAST, 42))]);
        wire(&mut sim, a, sw, 0);
        wire(&mut sim, b, sw, 1);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            *vids.borrow(),
            vec![42, 42],
            "access PVID and trunk tag both classify to the VID"
        );
    }
}
