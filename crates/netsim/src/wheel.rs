//! A hierarchical timing wheel with a calendar-queue fallback.
//!
//! The simulator's event core: a min-priority queue over `(time, seq)`
//! where `seq` is the insertion sequence, so equal-timestamp entries pop
//! in the order they were pushed — the determinism invariant every
//! experiment CSV depends on. A binary heap gives that contract at
//! O(log n) per operation; the wheel gives it at amortised O(1) for the
//! near-future traffic that dominates a discrete-event run (frame
//! deliveries a few microseconds out, resolver retries a second out),
//! which is what lets one simulation scale to 10^5 hosts.
//!
//! # Shape
//!
//! Six levels of 64 slots at 1 ns resolution. Level `l` spans
//! `64^(l+1)` ns, so the wheel covers `64^6` ns ≈ 68.7 simulated
//! seconds ahead of `anchor` (the time of the most recently dispatched
//! entry). An entry's level is the highest 6-bit digit in which its
//! timestamp differs from `anchor` (the `timeout.c` trick): that digit
//! is the entry's slot, every higher digit matches `anchor`, so
//! occupied slots always sit *ahead* of the level's cursor within the
//! current epoch and a single `rotate_right` + `trailing_zeros` finds
//! the next one. Entries whose timestamps differ from `anchor` above
//! bit 35 — CAM aging sweeps, day-long ticket lifetimes — go to a
//! calendar fallback (a plain heap ordered by `(time, seq)`); `pop`
//! compares the two heads so far-future entries interleave exactly
//! where the contract puts them.
//!
//! # Advancing
//!
//! Time only moves at `pop`/`next_at`: the wheel finds the earliest
//! occupied slot across levels, advances `anchor` to its start, and
//! either drains it (level 0, where a slot holds exactly one
//! timestamp) into a seq-sorted ready batch or cascades its entries
//! down a level and repeats. `anchor` never overtakes the fallback's
//! head, so a later push at the popped timestamp still lands after
//! every pending equal-timestamp entry, never before.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// Timestamps differing from `anchor` at or above this bit overflow to
/// the calendar fallback.
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;

#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// Calendar-fallback entry; ordered by `(at, seq)` only, never by the
/// payload.
#[derive(Debug)]
struct Far<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Far<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<T> Eq for Far<T> {}
impl<T> PartialOrd for Far<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Far<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic timer queue: entries pop in `(time, insertion)` order.
///
/// Pushing a timestamp earlier than the last popped one is clamped to
/// it — the discrete-event contract schedules at `now + delay`, so the
/// clamp only defends against misuse, it never fires in the simulator.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Lower bound on every pending timestamp: the time of the most
    /// recently dispatched entry.
    anchor: u64,
    /// Next insertion sequence number.
    seq: u64,
    /// Entries resident in wheel slots (excludes `ready` and `far`).
    wheel_len: usize,
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level slot-occupancy bitmaps.
    occ: [u64; LEVELS],
    /// The due batch: every entry shares one timestamp, sorted by seq.
    ready: VecDeque<Entry<T>>,
    /// Calendar fallback for beyond-horizon entries.
    far: BinaryHeap<Reverse<Far<T>>>,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel anchored at time zero.
    pub fn new() -> Self {
        TimingWheel {
            anchor: 0,
            seq: 0,
            wheel_len: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            ready: VecDeque::new(),
            far: BinaryHeap::new(),
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.wheel_len + self.ready.len() + self.far.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `item` at `at`. Entries pushed with equal timestamps
    /// pop in push order.
    pub fn push(&mut self, at: SimTime, item: T) {
        let at = at.as_nanos().max(self.anchor);
        let seq = self.seq;
        self.seq += 1;
        self.insert(Entry { at, seq, item });
    }

    /// The timestamp of the next entry, without removing it.
    pub fn next_at(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() {
            self.pump();
        }
        let near = self.ready.front().map(|e| e.at);
        let far = self.far.peek().map(|Reverse(f)| f.at);
        match (near, far) {
            (Some(n), Some(f)) => Some(n.min(f)),
            (n, f) => n.or(f),
        }
        .map(SimTime::from_nanos)
    }

    /// Removes and returns the next entry in `(time, insertion)` order.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.ready.is_empty() {
            self.pump();
        }
        let take_far = match (self.ready.front(), self.far.peek()) {
            (Some(near), Some(Reverse(far))) => (far.at, far.seq) < (near.at, near.seq),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        if take_far {
            let Reverse(far) = self.far.pop().expect("peeked above");
            self.anchor = self.anchor.max(far.at);
            Some((SimTime::from_nanos(far.at), far.item))
        } else {
            let entry = self.ready.pop_front().expect("peeked above");
            Some((SimTime::from_nanos(entry.at), entry.item))
        }
    }

    /// Files an entry into the slot its timestamp hashes to, or the
    /// calendar fallback when it differs from `anchor` beyond the
    /// wheel's horizon.
    fn insert(&mut self, entry: Entry<T>) {
        debug_assert!(entry.at >= self.anchor);
        let diff = entry.at ^ self.anchor;
        if diff >> WHEEL_BITS != 0 {
            self.far.push(Reverse(Far { at: entry.at, seq: entry.seq, item: entry.item }));
            return;
        }
        let level = if diff == 0 { 0 } else { ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize };
        let shift = LEVEL_BITS * level as u32;
        let slot = ((entry.at >> shift) & (SLOTS as u64 - 1)) as usize;
        self.occ[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(entry);
        self.wheel_len += 1;
    }

    /// Advances `anchor` to the earliest occupied slot and fills
    /// `ready` with its (single-timestamp) batch, cascading multi-ns
    /// slots down a level on the way. Leaves `ready` empty when the
    /// wheel is empty or the calendar fallback holds the earliest
    /// entry — `anchor` must never overtake the fallback's head.
    fn pump(&mut self) {
        let far_head = self.far.peek().map(|Reverse(f)| f.at);
        while self.ready.is_empty() && self.wheel_len > 0 {
            let mut best_time = u64::MAX;
            let mut best_level = 0;
            for level in 0..LEVELS {
                if self.occ[level] == 0 {
                    continue;
                }
                let shift = LEVEL_BITS * level as u32;
                let cursor = ((self.anchor >> shift) & (SLOTS as u64 - 1)) as u32;
                let dist = self.occ[level].rotate_right(cursor).trailing_zeros() as u64;
                let start = ((self.anchor >> shift) + dist) << shift;
                if start < best_time {
                    best_time = start;
                    best_level = level;
                }
            }
            debug_assert!(best_time != u64::MAX, "wheel_len > 0 but no occupied slot");
            if far_head.is_some_and(|f| f < best_time) {
                return;
            }
            self.anchor = best_time;
            let shift = LEVEL_BITS * best_level as u32;
            let slot = ((best_time >> shift) & (SLOTS as u64 - 1)) as usize;
            self.occ[best_level] &= !(1u64 << slot);
            let index = best_level * SLOTS + slot;
            // Detach the bucket, drain it, and hand the (now empty)
            // vector back so its capacity is reused next epoch.
            let mut batch = std::mem::take(&mut self.slots[index]);
            self.wheel_len -= batch.len();
            if best_level == 0 {
                // A level-0 slot holds exactly one timestamp; only the
                // insertion order within it needs restoring (cascades
                // may have appended out of seq order).
                batch.sort_unstable_by_key(|e| e.seq);
                self.ready.extend(batch.drain(..));
            } else {
                for entry in batch.drain(..) {
                    self.insert(entry);
                }
            }
            self.slots[index] = batch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| wheel.pop()).map(|(at, item)| (at.as_nanos(), item)).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut wheel = TimingWheel::new();
        for (at, item) in [(500u64, 0u32), (3, 1), (70_000, 2), (64, 3), (4096, 4)] {
            wheel.push(SimTime::from_nanos(at), item);
        }
        assert_eq!(wheel.len(), 5);
        assert_eq!(drain(&mut wheel), vec![(3, 1), (64, 3), (500, 0), (4096, 4), (70_000, 2)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn equal_timestamps_pop_in_insertion_order() {
        let mut wheel = TimingWheel::new();
        for item in 0..100u32 {
            wheel.push(SimTime::from_nanos(1_000_000), item);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| wheel.pop()).map(|(_, i)| i).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_entries_interleave_with_near_ones() {
        let mut wheel = TimingWheel::new();
        // Day-scale timestamps overflow the ~68.7 s horizon.
        wheel.push(SimTime::from_secs(86_400), 0);
        wheel.push(SimTime::from_nanos(5), 1);
        wheel.push(SimTime::from_secs(86_400), 2);
        wheel.push(SimTime::from_secs(100), 3);
        assert_eq!(
            drain(&mut wheel),
            vec![(5, 1), (100_000_000_000, 3), (86_400_000_000_000, 0), (86_400_000_000_000, 2)]
        );
    }

    #[test]
    fn equal_timestamp_order_holds_across_wheel_and_fallback() {
        let mut wheel = TimingWheel::new();
        let t = SimTime::from_secs(86_400);
        wheel.push(t, 0); // beyond horizon: calendar fallback
        wheel.push(SimTime::from_secs(86_399), 1);
        // Pop the near entry; anchor now sits within the fallback
        // entry's epoch, so this push lands in the wheel.
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(86_399), 1)));
        wheel.push(t, 2);
        assert_eq!(drain(&mut wheel), vec![(t.as_nanos(), 0), (t.as_nanos(), 2)]);
    }

    #[test]
    fn push_during_drain_of_same_timestamp_pops_last() {
        let mut wheel = TimingWheel::new();
        let t = SimTime::from_nanos(4095);
        wheel.push(t, 0);
        wheel.push(t, 1);
        assert_eq!(wheel.pop(), Some((t, 0)));
        wheel.push(t, 2); // at == anchor while the batch is mid-drain
        assert_eq!(drain(&mut wheel), vec![(4095, 1), (4095, 2)]);
    }

    #[test]
    fn earlier_than_anchor_pushes_clamp_forward() {
        let mut wheel = TimingWheel::new();
        wheel.push(SimTime::from_nanos(1000), 0);
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(1000), 0)));
        wheel.push(SimTime::from_nanos(10), 1);
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(1000), 1)));
    }

    #[test]
    fn next_at_previews_without_disturbing_order() {
        let mut wheel = TimingWheel::new();
        assert_eq!(wheel.next_at(), None);
        wheel.push(SimTime::from_secs(300), 0); // fallback
        wheel.push(SimTime::from_nanos(77), 1);
        assert_eq!(wheel.next_at(), Some(SimTime::from_nanos(77)));
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(77), 1)));
        assert_eq!(wheel.next_at(), Some(SimTime::from_secs(300)));
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(300), 0)));
        assert_eq!(wheel.next_at(), None);
    }

    #[test]
    fn matches_binary_heap_reference_on_random_streams() {
        let mut state = 0x8BAD_F00D_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..50 {
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
            let mut clock = 0u64;
            let mut seq = 0u64;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for op in 0..400 {
                if op % 5 == 3 {
                    if let Some((at, item)) = wheel.pop() {
                        clock = at.as_nanos();
                        popped.push((at.as_nanos(), item));
                        let Reverse((hat, _, hitem)) = heap.pop().expect("same length");
                        expected.push((hat, hitem));
                    }
                } else {
                    // Mix of microsecond-scale and horizon-crossing delays.
                    let delay = if next() % 7 == 0 {
                        86_400_000_000_000 + next() % 1_000_000
                    } else {
                        next() % (1 << (10 + round % 20))
                    };
                    let at = clock + delay;
                    wheel.push(SimTime::from_nanos(at), op as u32);
                    heap.push(Reverse((at, seq, op as u32)));
                    seq += 1;
                }
            }
            while let Some((at, item)) = wheel.pop() {
                popped.push((at.as_nanos(), item));
                let Reverse((hat, _, hitem)) = heap.pop().expect("same length");
                expected.push((hat, hitem));
            }
            assert!(heap.is_empty());
            assert_eq!(popped, expected, "round {round}");
        }
    }
}
