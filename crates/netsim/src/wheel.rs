//! A hierarchical timing wheel with a calendar-queue fallback.
//!
//! The simulator's event core: a min-priority queue over `(time, seq)`
//! where `seq` is the insertion sequence, so equal-timestamp entries pop
//! in the order they were pushed — the determinism invariant every
//! experiment CSV depends on. A binary heap gives that contract at
//! O(log n) per operation; the wheel gives it at amortised O(1) for the
//! near-future traffic that dominates a discrete-event run (frame
//! deliveries a few microseconds out, resolver retries a second out),
//! which is what lets one simulation scale to 10^5 hosts.
//!
//! # Shape
//!
//! Six levels of 64 slots at 1 ns resolution. Level `l` spans
//! `64^(l+1)` ns, so the wheel covers `64^6` ns ≈ 68.7 simulated
//! seconds ahead of `anchor` (the time of the most recently dispatched
//! entry). An entry's level is the highest 6-bit digit in which its
//! timestamp differs from `anchor` (the `timeout.c` trick): that digit
//! is the entry's slot, every higher digit matches `anchor`, so
//! occupied slots always sit *ahead* of the level's cursor within the
//! current epoch and a single `rotate_right` + `trailing_zeros` finds
//! the next one. Entries whose timestamps differ from `anchor` above
//! bit 35 — CAM aging sweeps, day-long ticket lifetimes — go to a
//! calendar fallback (a plain heap ordered by `(time, seq)`); `pop`
//! compares the two heads so far-future entries interleave exactly
//! where the contract puts them.
//!
//! # Storage
//!
//! Entries live in one index-addressed node arena; each slot is a FIFO
//! chain threaded through `u32` links, and spent nodes go on a free
//! list inside the same arena. Pushing, cascading, and popping
//! therefore allocate nothing once the arena has grown to the run's
//! in-flight high-water mark — the counting-allocator benches hold the
//! whole simulator to a fraction of an allocation per frame.
//!
//! # Advancing
//!
//! Time only moves at `pop`/`next_at`: the wheel finds the earliest
//! occupied slot across levels, advances `anchor` to its start, and
//! either drains it (level 0, where a slot holds exactly one
//! timestamp) into a seq-sorted ready batch or cascades its chain down
//! a level and repeats. `anchor` never overtakes the fallback's head,
//! so a later push at the popped timestamp still lands after every
//! pending equal-timestamp entry, never before.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use arpshield_trace::profile;

use crate::time::SimTime;

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// Timestamps differing from `anchor` at or above this bit overflow to
/// the calendar fallback.
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;
/// Null link for slot chains and the node free list.
const NIL: u32 = u32::MAX;

/// An arena node: either a pending entry on a slot chain, or a spent
/// one on the free list (`item` taken).
#[derive(Debug)]
struct Node<T> {
    at: u64,
    seq: u64,
    next: u32,
    item: Option<T>,
}

/// Calendar-fallback entry; ordered by `(at, seq)` only, never by the
/// payload.
#[derive(Debug)]
struct Far<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Far<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<T> Eq for Far<T> {}
impl<T> PartialOrd for Far<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Far<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic timer queue: entries pop in `(time, insertion)` order.
///
/// Pushing a timestamp earlier than the last popped one is clamped to
/// it — the discrete-event contract schedules at `now + delay`, so the
/// clamp only defends against misuse, it never fires in the simulator.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Lower bound on every pending timestamp: the time of the most
    /// recently dispatched entry.
    anchor: u64,
    /// Next insertion sequence number.
    seq: u64,
    /// Entries resident in wheel slots (excludes `ready` and `far`).
    wheel_len: usize,
    /// Node arena; slot chains and the free list both live here.
    nodes: Vec<Node<T>>,
    /// Head of the spent-node free list.
    free: u32,
    /// Chain head per slot, level-major; [`NIL`] when empty.
    head: [u32; LEVELS * SLOTS],
    /// Chain tail per slot, for O(1) FIFO append.
    tail: [u32; LEVELS * SLOTS],
    /// Per-level slot-occupancy bitmaps.
    occ: [u64; LEVELS],
    /// The due batch: node indices sharing one timestamp, seq-sorted.
    ready: VecDeque<u32>,
    /// Scratch for seq-sorting a drained slot chain.
    batch: Vec<u32>,
    /// Calendar fallback for beyond-horizon entries.
    far: BinaryHeap<Reverse<Far<T>>>,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel anchored at time zero.
    pub fn new() -> Self {
        TimingWheel {
            anchor: 0,
            seq: 0,
            wheel_len: 0,
            nodes: Vec::new(),
            free: NIL,
            head: [NIL; LEVELS * SLOTS],
            tail: [NIL; LEVELS * SLOTS],
            occ: [0; LEVELS],
            ready: VecDeque::new(),
            batch: Vec::new(),
            far: BinaryHeap::new(),
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.wheel_len + self.ready.len() + self.far.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently parked in the calendar fallback — the
    /// beyond-horizon overflow whose depth the profiler samples as the
    /// `wheel.fallback_depth` gauge (a deep fallback means the workload
    /// is outrunning the wheel's O(1) near-future fast path).
    pub fn fallback_len(&self) -> usize {
        self.far.len()
    }

    /// Schedules `item` at `at`. Entries pushed with equal timestamps
    /// pop in push order.
    pub fn push(&mut self, at: SimTime, item: T) {
        let at = at.as_nanos().max(self.anchor);
        let seq = self.seq;
        self.seq += 1;
        if (at ^ self.anchor) >> WHEEL_BITS != 0 {
            self.far.push(Reverse(Far { at, seq, item }));
            return;
        }
        let node = match self.free {
            NIL => {
                self.nodes.push(Node { at, seq, next: NIL, item: Some(item) });
                (self.nodes.len() - 1) as u32
            }
            idx => {
                let node = &mut self.nodes[idx as usize];
                self.free = node.next;
                node.at = at;
                node.seq = seq;
                node.next = NIL;
                node.item = Some(item);
                idx
            }
        };
        self.link(node);
        self.wheel_len += 1;
    }

    /// The timestamp of the next entry, without removing it.
    pub fn next_at(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() {
            self.pump();
        }
        let near = self.ready.front().map(|&n| self.nodes[n as usize].at);
        let far = self.far.peek().map(|Reverse(f)| f.at);
        match (near, far) {
            (Some(n), Some(f)) => Some(n.min(f)),
            (n, f) => n.or(f),
        }
        .map(SimTime::from_nanos)
    }

    /// Removes and returns the next entry in `(time, insertion)` order.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let _s = profile::span("wheel.pop");
        if self.ready.is_empty() {
            self.pump();
        }
        let take_far = match (self.ready.front(), self.far.peek()) {
            (Some(&n), Some(Reverse(far))) => {
                let near = &self.nodes[n as usize];
                (far.at, far.seq) < (near.at, near.seq)
            }
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        if take_far {
            let Reverse(far) = self.far.pop().expect("peeked above");
            self.anchor = self.anchor.max(far.at);
            Some((SimTime::from_nanos(far.at), far.item))
        } else {
            let index = self.ready.pop_front().expect("peeked above");
            let node = &mut self.nodes[index as usize];
            let at = node.at;
            let item = node.item.take().expect("ready nodes hold their item");
            node.next = self.free;
            self.free = index;
            Some((SimTime::from_nanos(at), item))
        }
    }

    /// Appends an in-horizon node to the slot chain its timestamp and
    /// the current `anchor` hash to.
    fn link(&mut self, index: u32) {
        let at = self.nodes[index as usize].at;
        let diff = at ^ self.anchor;
        debug_assert!(diff >> WHEEL_BITS == 0 && at >= self.anchor);
        let level = if diff == 0 { 0 } else { ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize };
        let shift = LEVEL_BITS * level as u32;
        let slot = ((at >> shift) & (SLOTS as u64 - 1)) as usize;
        let chain = level * SLOTS + slot;
        match self.tail[chain] {
            NIL => self.head[chain] = index,
            tail => self.nodes[tail as usize].next = index,
        }
        self.tail[chain] = index;
        self.occ[level] |= 1 << slot;
    }

    /// Advances `anchor` to the earliest occupied slot and fills
    /// `ready` with its (single-timestamp) batch, cascading multi-ns
    /// slots down a level on the way. Leaves `ready` empty when the
    /// wheel is empty or the calendar fallback holds the earliest
    /// entry — `anchor` must never overtake the fallback's head.
    fn pump(&mut self) {
        let far_head = self.far.peek().map(|Reverse(f)| f.at);
        while self.ready.is_empty() && self.wheel_len > 0 {
            let mut best_time = u64::MAX;
            let mut best_level = 0;
            for level in 0..LEVELS {
                if self.occ[level] == 0 {
                    continue;
                }
                let shift = LEVEL_BITS * level as u32;
                let cursor = ((self.anchor >> shift) & (SLOTS as u64 - 1)) as u32;
                let dist = self.occ[level].rotate_right(cursor).trailing_zeros() as u64;
                let start = ((self.anchor >> shift) + dist) << shift;
                if start < best_time {
                    best_time = start;
                    best_level = level;
                }
            }
            debug_assert!(best_time != u64::MAX, "wheel_len > 0 but no occupied slot");
            if far_head.is_some_and(|f| f < best_time) {
                return;
            }
            self.anchor = best_time;
            let shift = LEVEL_BITS * best_level as u32;
            let slot = ((best_time >> shift) & (SLOTS as u64 - 1)) as usize;
            self.occ[best_level] &= !(1u64 << slot);
            let chain = best_level * SLOTS + slot;
            let mut node = self.head[chain];
            self.head[chain] = NIL;
            self.tail[chain] = NIL;
            if best_level == 0 {
                // A level-0 slot holds exactly one timestamp; only the
                // insertion order within it needs restoring (cascades
                // may have appended out of seq order).
                self.batch.clear();
                while node != NIL {
                    self.batch.push(node);
                    node = self.nodes[node as usize].next;
                }
                self.wheel_len -= self.batch.len();
                let nodes = &self.nodes;
                self.batch.sort_unstable_by_key(|&n| nodes[n as usize].seq);
                self.ready.extend(self.batch.iter().copied());
            } else {
                let _s = profile::span("wheel.cascade");
                while node != NIL {
                    let next = self.nodes[node as usize].next;
                    self.nodes[node as usize].next = NIL;
                    self.link(node);
                    node = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| wheel.pop()).map(|(at, item)| (at.as_nanos(), item)).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut wheel = TimingWheel::new();
        for (at, item) in [(500u64, 0u32), (3, 1), (70_000, 2), (64, 3), (4096, 4)] {
            wheel.push(SimTime::from_nanos(at), item);
        }
        assert_eq!(wheel.len(), 5);
        assert_eq!(drain(&mut wheel), vec![(3, 1), (64, 3), (500, 0), (4096, 4), (70_000, 2)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn equal_timestamps_pop_in_insertion_order() {
        let mut wheel = TimingWheel::new();
        for item in 0..100u32 {
            wheel.push(SimTime::from_nanos(1_000_000), item);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| wheel.pop()).map(|(_, i)| i).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_entries_interleave_with_near_ones() {
        let mut wheel = TimingWheel::new();
        // Day-scale timestamps overflow the ~68.7 s horizon.
        wheel.push(SimTime::from_secs(86_400), 0);
        wheel.push(SimTime::from_nanos(5), 1);
        wheel.push(SimTime::from_secs(86_400), 2);
        wheel.push(SimTime::from_secs(100), 3);
        assert_eq!(
            drain(&mut wheel),
            vec![(5, 1), (100_000_000_000, 3), (86_400_000_000_000, 0), (86_400_000_000_000, 2)]
        );
    }

    #[test]
    fn equal_timestamp_order_holds_across_wheel_and_fallback() {
        let mut wheel = TimingWheel::new();
        let t = SimTime::from_secs(86_400);
        wheel.push(t, 0); // beyond horizon: calendar fallback
        wheel.push(SimTime::from_secs(86_399), 1);
        // Pop the near entry; anchor now sits within the fallback
        // entry's epoch, so this push lands in the wheel.
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(86_399), 1)));
        wheel.push(t, 2);
        assert_eq!(drain(&mut wheel), vec![(t.as_nanos(), 0), (t.as_nanos(), 2)]);
    }

    #[test]
    fn push_during_drain_of_same_timestamp_pops_last() {
        let mut wheel = TimingWheel::new();
        let t = SimTime::from_nanos(4095);
        wheel.push(t, 0);
        wheel.push(t, 1);
        assert_eq!(wheel.pop(), Some((t, 0)));
        wheel.push(t, 2); // at == anchor while the batch is mid-drain
        assert_eq!(drain(&mut wheel), vec![(4095, 1), (4095, 2)]);
    }

    #[test]
    fn earlier_than_anchor_pushes_clamp_forward() {
        let mut wheel = TimingWheel::new();
        wheel.push(SimTime::from_nanos(1000), 0);
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(1000), 0)));
        wheel.push(SimTime::from_nanos(10), 1);
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(1000), 1)));
    }

    #[test]
    fn next_at_previews_without_disturbing_order() {
        let mut wheel = TimingWheel::new();
        assert_eq!(wheel.next_at(), None);
        wheel.push(SimTime::from_secs(300), 0); // fallback
        wheel.push(SimTime::from_nanos(77), 1);
        assert_eq!(wheel.next_at(), Some(SimTime::from_nanos(77)));
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(77), 1)));
        assert_eq!(wheel.next_at(), Some(SimTime::from_secs(300)));
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(300), 0)));
        assert_eq!(wheel.next_at(), None);
    }

    #[test]
    fn spent_nodes_are_reused_instead_of_growing_the_arena() {
        let mut wheel = TimingWheel::new();
        for round in 0..1000u64 {
            wheel.push(SimTime::from_nanos(round * 17 + 1), round as u32);
            wheel.pop();
        }
        assert!(wheel.nodes.len() <= 2, "arena grew to {} nodes", wheel.nodes.len());
    }

    #[test]
    fn matches_binary_heap_reference_on_random_streams() {
        let mut state = 0x8BAD_F00D_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..50 {
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
            let mut clock = 0u64;
            let mut seq = 0u64;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for op in 0..400 {
                if op % 5 == 3 {
                    if let Some((at, item)) = wheel.pop() {
                        clock = at.as_nanos();
                        popped.push((at.as_nanos(), item));
                        let Reverse((hat, _, hitem)) = heap.pop().expect("same length");
                        expected.push((hat, hitem));
                    }
                } else {
                    // Mix of microsecond-scale and horizon-crossing delays.
                    let delay = if next() % 7 == 0 {
                        86_400_000_000_000 + next() % 1_000_000
                    } else {
                        next() % (1 << (10 + round % 20))
                    };
                    let at = clock + delay;
                    wheel.push(SimTime::from_nanos(at), op as u32);
                    heap.push(Reverse((at, seq, op as u32)));
                    seq += 1;
                }
            }
            while let Some((at, item)) = wheel.pop() {
                popped.push((at.as_nanos(), item));
                let Reverse((hat, _, hitem)) = heap.pop().expect("same length");
                expected.push((hat, hitem));
            }
            assert!(heap.is_empty());
            assert_eq!(popped, expected, "round {round}");
        }
    }
}
