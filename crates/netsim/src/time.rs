//! Simulated wall-clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation clock, with nanosecond resolution.
///
/// `SimTime` is an absolute instant; deltas are expressed with the standard
/// [`std::time::Duration`], so `SimTime + Duration` and `SimTime - SimTime`
/// behave exactly like their `std::time::Instant` counterparts.
///
/// ```rust
/// use arpshield_netsim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant, usable as "run forever".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float, for plotting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`, zero when `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` past [`SimTime::MAX`] or when
    /// the duration overflows `u64` nanoseconds.
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        let nanos = u64::try_from(d.as_nanos()).ok()?;
        self.0.checked_add(nanos).map(SimTime)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.checked_add(rhs).expect("SimTime overflow")
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(250);
        assert_eq!(t.as_millis(), 1250);
        assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(250));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), Duration::from_secs(1));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn checked_add_saturates_at_max() {
        assert!(SimTime::MAX.checked_add(Duration::from_nanos(1)).is_none());
        assert!(SimTime::ZERO.checked_add(Duration::from_secs(1)).is_some());
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
