//! Driving a single [`Device`] without a simulation.
//!
//! The capture-ingest path feeds recorded frames straight into a scheme's
//! monitors: there is no event queue, no wire, no topology — just "this
//! frame arrived at this timestamp". [`StandaloneDriver`] supplies the
//! small slice of simulator the [`Device`] contract needs for that:
//! a [`DeviceCtx`] per callback, a timer queue with the simulator's
//! deterministic ordering (due time, then scheduling sequence), and a
//! buffer that collects whatever the device transmits.
//!
//! Steady state allocates nothing: the action scratch vector and the
//! send buffer are reused across frames, and timers live in the same
//! [`TimingWheel`] the simulator dispatches from, whose slot vectors
//! only grow to the high-water mark of concurrently pending timers.

use crate::device::{Action, Device, DeviceCtx, DeviceId, PortId};
use crate::frame::Frame;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::wheel::TimingWheel;

/// Drives one device's callbacks from an external frame source.
#[derive(Debug)]
pub struct StandaloneDriver {
    now: SimTime,
    rng: SimRng,
    /// Pending timer tokens, `(due, scheduling sequence)` min-ordered —
    /// the exact scheduler the simulator dispatches from, so the
    /// tie-break (earlier scheduling wins at equal due times) is shared
    /// rather than reimplemented.
    timers: TimingWheel<u64>,
    actions: Vec<Action>,
    sends: Vec<(PortId, Frame)>,
    /// Timers fired so far.
    pub timers_fired: u64,
}

impl StandaloneDriver {
    /// Creates a driver with deterministic randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        StandaloneDriver {
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            timers: TimingWheel::new(),
            actions: Vec::new(),
            sends: Vec::new(),
            timers_fired: 0,
        }
    }

    /// The driver's current time: the latest timestamp seen.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of timers scheduled but not yet fired.
    pub fn pending_timers(&self) -> usize {
        self.timers.len()
    }

    /// Invokes [`Device::on_start`] at the current time.
    pub fn start(&mut self, device: &mut dyn Device) {
        let mut ctx = DeviceCtx::new(self.now, DeviceId(0), &mut self.actions, &mut self.rng, None);
        device.on_start(&mut ctx);
        self.apply_actions();
    }

    /// Advances time to `to` (never backwards), firing every timer due on
    /// the way in (due, sequence) order — including timers those firings
    /// schedule, as long as they are due by `to`.
    pub fn advance_to(&mut self, device: &mut dyn Device, to: SimTime) {
        while let Some(due) = self.timers.next_at() {
            if due > to {
                break;
            }
            let (due, token) = self.timers.pop().expect("peeked");
            self.now = self.now.max(due);
            self.timers_fired += 1;
            let mut ctx =
                DeviceCtx::new(self.now, DeviceId(0), &mut self.actions, &mut self.rng, None);
            device.on_timer(&mut ctx, token);
            self.apply_actions();
        }
        self.now = self.now.max(to);
    }

    /// Delivers `bytes` to `port` at time `at`, firing due timers first.
    /// Timestamps may regress (captures are not always sorted); delivery
    /// then happens at the driver's monotonic clock instead.
    pub fn deliver(&mut self, device: &mut dyn Device, at: SimTime, port: PortId, bytes: &[u8]) {
        self.advance_to(device, at);
        let mut ctx = DeviceCtx::new(self.now, DeviceId(0), &mut self.actions, &mut self.rng, None);
        device.on_frame(&mut ctx, port, bytes);
        self.apply_actions();
    }

    /// Frames the device transmitted since the last call, oldest first.
    /// They went nowhere — the caller decides whether to count, inspect,
    /// or drop them.
    pub fn drain_sends(&mut self) -> std::vec::Drain<'_, (PortId, Frame)> {
        self.sends.drain(..)
    }

    fn apply_actions(&mut self) {
        for action in self.actions.drain(..) {
            match action {
                Action::Send { port, bytes } => self.sends.push((port, bytes)),
                Action::Schedule { delay, token } => {
                    let due = self.now.checked_add(delay).unwrap_or(SimTime::from_nanos(u64::MAX));
                    self.timers.push(due, token);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Records every callback; schedules a chain of timers on start.
    struct Probe {
        events: Vec<String>,
    }

    impl Device for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            self.events.push("start".into());
            ctx.schedule_in(Duration::from_millis(10), 1);
            ctx.schedule_in(Duration::from_millis(10), 2); // same due: seq breaks the tie
            ctx.schedule_in(Duration::from_millis(30), 3);
        }
        fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]) {
            self.events.push(format!(
                "frame@{} port{} len{}",
                ctx.now().as_nanos(),
                port.0,
                frame.len()
            ));
            ctx.send(PortId(0), frame.to_vec());
        }
        fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
            self.events.push(format!("timer{token}@{}", ctx.now().as_nanos()));
            if token == 1 {
                // A timer scheduling another timer inside the advance window.
                ctx.schedule_in(Duration::from_millis(5), 4);
            }
        }
    }

    #[test]
    fn timers_fire_in_due_then_sequence_order() {
        let mut dev = Probe { events: Vec::new() };
        let mut driver = StandaloneDriver::new(7);
        driver.start(&mut dev);
        assert_eq!(driver.pending_timers(), 3);
        driver.advance_to(&mut dev, SimTime::from_millis(20));
        assert_eq!(
            dev.events,
            vec!["start", "timer1@10000000", "timer2@10000000", "timer4@15000000"],
            "due order, sequence tie-break, and nested scheduling"
        );
        assert_eq!(driver.pending_timers(), 1, "the 30 ms timer is still pending");
        driver.advance_to(&mut dev, SimTime::from_millis(40));
        assert_eq!(driver.timers_fired, 4);
        assert_eq!(driver.now(), SimTime::from_millis(40));
    }

    #[test]
    fn deliver_fires_due_timers_first_and_collects_sends() {
        let mut dev = Probe { events: Vec::new() };
        let mut driver = StandaloneDriver::new(7);
        driver.start(&mut dev);
        driver.deliver(&mut dev, SimTime::from_millis(12), PortId(0), &[0xAB; 60]);
        assert_eq!(
            dev.events,
            vec!["start", "timer1@10000000", "timer2@10000000", "frame@12000000 port0 len60"]
        );
        let sends: Vec<_> = driver.drain_sends().collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].1.as_slice(), &[0xAB; 60]);
        assert!(driver.drain_sends().next().is_none(), "drain empties the buffer");
    }

    #[test]
    fn time_never_regresses_on_unsorted_input() {
        let mut dev = Probe { events: Vec::new() };
        let mut driver = StandaloneDriver::new(7);
        driver.deliver(&mut dev, SimTime::from_secs(5), PortId(0), &[0; 14]);
        driver.deliver(&mut dev, SimTime::from_secs(1), PortId(0), &[0; 14]);
        assert_eq!(driver.now(), SimTime::from_secs(5));
        assert_eq!(
            dev.events,
            vec!["frame@5000000000 port0 len14", "frame@5000000000 port0 len14"],
            "the regressed frame is delivered at the monotonic clock"
        );
    }
}
