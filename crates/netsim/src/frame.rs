//! Shared, immutable frame buffers.

use std::ops::Deref;
use std::rc::Rc;

/// An immutable, reference-counted frame payload.
///
/// The simulator's hot path is fan-out: a hub repeats every ingress
/// frame to all other ports, a switch floods broadcasts and copies
/// mirror spans, and the trace records every delivery. With `Vec<u8>`
/// payloads each of those copies re-allocated and re-copied the same
/// bytes; a `Frame` makes every copy an `Rc` pointer bump sharing one
/// allocation. `Deref<Target = [u8]>` keeps all parsing code unchanged.
///
/// Frames are immutable by construction — mutating a delivered payload
/// would retroactively rewrite trace records and in-flight copies — so
/// devices that transform a frame build a fresh one.
#[derive(Clone)]
pub struct Frame(Rc<[u8]>);

impl Frame {
    /// The payload length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for zero-length payloads.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload as a byte slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Number of live handles sharing this buffer (diagnostics only).
    pub fn handle_count(&self) -> usize {
        Rc::strong_count(&self.0)
    }
}

impl Deref for Frame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Frame {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Frame {
    fn from(bytes: Vec<u8>) -> Frame {
        Frame(Rc::from(bytes))
    }
}

impl From<&[u8]> for Frame {
    fn from(bytes: &[u8]) -> Frame {
        Frame(Rc::from(bytes))
    }
}

impl<const N: usize> From<[u8; N]> for Frame {
    fn from(bytes: [u8; N]) -> Frame {
        Frame(Rc::from(bytes.as_slice()))
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        self.0 == other.0
    }
}

impl Eq for Frame {}

impl PartialEq<[u8]> for Frame {
    fn eq(&self, other: &[u8]) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<Vec<u8>> for Frame {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == other[..]
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_buffer() {
        let a = Frame::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.handle_count(), 2);
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()));
    }

    #[test]
    fn derefs_like_a_slice() {
        let f = Frame::from(vec![9u8; 60]);
        assert_eq!(f.len(), 60);
        assert!(!f.is_empty());
        assert_eq!(f[0], 9);
        assert_eq!(&f[..3], &[9, 9, 9]);
        assert_eq!(f, vec![9u8; 60]);
        assert_eq!(f, *[9u8; 60].as_slice());
    }

    #[test]
    fn conversions_cover_common_sources() {
        let from_vec = Frame::from(vec![1, 2]);
        let from_slice = Frame::from([1u8, 2].as_slice());
        let from_array = Frame::from([1u8, 2]);
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_vec, from_array);
        assert_eq!(format!("{from_vec:?}"), "Frame(2 bytes)");
    }
}
